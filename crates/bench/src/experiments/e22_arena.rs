//! **E22 — Zero-copy hot path** (CSR/arena model layout): throughput and
//! load-latency wins from the flat-memory refactor, with byte-identity
//! pinned at every step.
//!
//! Three measurements on the same community:
//!
//! * **Appleseed throughput** — the spreading-activation loop over the
//!   adjacency-list [`TrustGraph`](semrec_trust::TrustGraph) vs the flat
//!   [`CsrGraph`](semrec_trust::CsrGraph) the engine now caches. Same
//!   float-op order, so ranks are compared bit for bit.
//! * **Similarity throughput** — profile-pair scoring through
//!   [`ProfileView`](semrec_profiles::ProfileView) slices over the
//!   contiguous [`ProfileSlab`](semrec_profiles::ProfileSlab).
//! * **Snapshot load** — the v1 per-record decode+restore path vs the v2
//!   arena cast-on-load path ([`decode_v2`]). v2 writes the model's arenas
//!   verbatim, so recovery is a handful of bulk copies instead of
//!   re-deriving the community through `CommunityBuilder`.
//!
//! Resident model bytes (the `model.bytes` gauge family) are reported so
//! the arena layout's footprint is visible next to its speed.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use semrec_core::{AgentId, ProductId, Recommender, RecommenderConfig};
use semrec_datagen::community::generate_community;
use semrec_eval::table::Table;
use semrec_profiles::similarity;
use semrec_store::{decode_v2, encode_v2, sniff_version, Checkpoint, SNAPSHOT_V2};
use semrec_trust::appleseed::{appleseed, appleseed_csr, AppleseedParams};
use semrec_web::crawler::{crawl, CommunityBuilder, CrawlConfig};
use semrec_web::publish::publish_community;
use semrec_web::store::DocumentWeb;

use crate::Scale;

/// Measured outcomes for shape assertions.
pub struct Outcome {
    /// Community size.
    pub agents: usize,
    /// Appleseed wall time over the adjacency-list graph, ms total.
    pub appleseed_graph_ms: f64,
    /// Appleseed wall time over the CSR arenas, ms total.
    pub appleseed_csr_ms: f64,
    /// CSR ranks ≡ adjacency-list ranks, bit for bit, on every source.
    pub appleseed_identical: bool,
    /// Similarity pairs scored per second through slab-backed views.
    pub similarity_pairs_per_s: f64,
    /// v1 snapshot size, bytes.
    pub v1_bytes: usize,
    /// v2 snapshot size, bytes.
    pub v2_bytes: usize,
    /// v1 decode + restore latency, ms (best of the timed repetitions).
    pub v1_load_ms: f64,
    /// v2 arena load latency, ms (best of the timed repetitions).
    pub v2_load_ms: f64,
    /// v1 restore ≡ v2 restore ≡ live model, bit for bit (panel scores).
    pub load_identical: bool,
    /// Resident model bytes (trust CSR + profile slab + origin stamps).
    pub resident_bytes: usize,
}

/// Bit-exact fingerprint of a panel's recommendations.
fn fingerprint(engine: &Recommender, panel: &[AgentId]) -> Vec<(AgentId, ProductId, u64)> {
    let mut out = Vec::new();
    for &agent in panel {
        for rec in engine.recommend(agent, 5).expect("recommendation succeeds") {
            out.push((agent, rec.product, rec.score.to_bits()));
        }
    }
    out
}

/// Best-of-N wall time for `f`, ms. Best-of (not mean) because load
/// latency is the quantity of interest and the first iteration pays page
/// faults both paths share.
fn best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        std::hint::black_box(f());
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Runs E22.
pub fn run(scale: Scale) -> Outcome {
    super::header("E22", "Zero-copy hot path — CSR/arena layout vs pointer-chasing");
    let (sources, pairs, load_reps) = match scale {
        Scale::Small => (16, 20_000, 3),
        Scale::Medium => (32, 100_000, 5),
        Scale::Paper => (32, 200_000, 5),
    };

    // The same world E18 uses: generate, publish, crawl, build — so the
    // snapshot measurements cover a model with a real standing view.
    let source = generate_community(&scale.community(2222)).community;
    let seeds: Vec<String> =
        source.agents().map(|a| source.agent(a).unwrap().uri.clone()).collect();
    let web = DocumentWeb::new();
    publish_community(&source, &web);
    let crawled = crawl(&web, &seeds, &CrawlConfig::default());
    let builder = CommunityBuilder::new(&crawled.agents);
    let (community, _) = builder.build(source.taxonomy.clone(), source.catalog.clone());
    let engine = Recommender::new(community, RecommenderConfig::default());
    let shared = engine.shared();
    let agents = shared.community().agent_count();
    let panel: Vec<AgentId> = engine.community().agents().take(32).collect();
    let resident_bytes = shared.resident_bytes();
    println!(
        "{agents} agents, {} trust statements; resident model arenas: {resident_bytes} bytes\n",
        shared.community().trust.edge_count(),
    );

    // (a) Appleseed: adjacency-list graph vs the engine's cached CSR.
    let params = AppleseedParams::default();
    let graph = &shared.community().trust;
    let csr = shared.trust_csr();
    let mut rng = StdRng::seed_from_u64(2222);
    let picks: Vec<AgentId> =
        (0..sources).map(|_| AgentId::from_index(rng.random_range(0..agents))).collect();

    let started = Instant::now();
    let graph_ranks: Vec<_> =
        picks.iter().map(|&s| appleseed(graph, s, &params).expect("converges")).collect();
    let appleseed_graph_ms = started.elapsed().as_secs_f64() * 1e3;

    let started = Instant::now();
    let csr_ranks: Vec<_> =
        picks.iter().map(|&s| appleseed_csr(csr, s, &params).expect("converges")).collect();
    let appleseed_csr_ms = started.elapsed().as_secs_f64() * 1e3;

    let appleseed_identical = graph_ranks.iter().zip(&csr_ranks).all(|(g, c)| {
        g.iterations == c.iterations
            && g.ranks.len() == c.ranks.len()
            && g.ranks
                .iter()
                .zip(&c.ranks)
                .all(|(&(ga, gr), &(ca, cr))| ga == ca && gr.to_bits() == cr.to_bits())
    });

    // (b) Similarity throughput over slab-backed profile views.
    let profiles = shared.profiles();
    let started = Instant::now();
    let mut acc = 0.0f64;
    for _ in 0..pairs {
        let a = AgentId::from_index(rng.random_range(0..agents));
        let b = AgentId::from_index(rng.random_range(0..agents));
        acc += similarity::cosine_view(profiles.profile(a), profiles.profile(b)).unwrap_or(0.0);
    }
    let sim_s = started.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    let similarity_pairs_per_s = pairs as f64 / sim_s;

    // (c) Snapshot load: v1 per-record decode+restore vs v2 arena load.
    let view = builder.agents();
    let v1 = Checkpoint::capture(&engine, view, 1).encode();
    let v2 = encode_v2(&engine, view, 1);
    assert_eq!(sniff_version(&v2), Some(SNAPSHOT_V2));
    let v1_load_ms = best_ms(load_reps, || {
        Checkpoint::decode(&v1).expect("v1 intact").restore().expect("v1 restores")
    });
    let v2_load_ms = best_ms(load_reps, || decode_v2(&v2).expect("v2 intact"));

    let live = fingerprint(&engine, &panel);
    let from_v1 = Checkpoint::decode(&v1).unwrap().restore().unwrap();
    let from_v2 = decode_v2(&v2).unwrap();
    let load_identical = from_v1.view == view
        && from_v2.view == view
        && fingerprint(&from_v1.engine, &panel) == live
        && fingerprint(&from_v2.engine, &panel) == live;

    let mut table = Table::new(["measurement", "baseline", "arena", "speedup"]);
    table.row([
        format!("appleseed × {sources} sources (ms)"),
        format!("{appleseed_graph_ms:.2}"),
        format!("{appleseed_csr_ms:.2}"),
        format!("{:.2}×", appleseed_graph_ms / appleseed_csr_ms),
    ]);
    table.row([
        format!("similarity ({pairs} pairs)"),
        "—".into(),
        format!("{:.0}/s", similarity_pairs_per_s),
        "—".into(),
    ]);
    table.row([
        "snapshot bytes".into(),
        v1.len().to_string(),
        v2.len().to_string(),
        format!("{:.2}×", v1.len() as f64 / v2.len() as f64),
    ]);
    table.row([
        format!("snapshot load (ms, best of {load_reps})"),
        format!("{v1_load_ms:.2}"),
        format!("{v2_load_ms:.2}"),
        format!("{:.2}×", v1_load_ms / v2_load_ms),
    ]);
    println!("{}", table.render());
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "byte-identity: appleseed {} · recover-then-serve {} · host CPUs: {cpus} ({} decode)",
        if appleseed_identical { "yes" } else { "NO" },
        if load_identical { "yes" } else { "NO" },
        if cpus > 1 { "overlapped" } else { "serial" },
    );
    println!("\nThe CSR walk touches two contiguous arrays where the adjacency list chases");
    println!("per-agent allocations; the v2 snapshot stores those same arenas verbatim, so");
    println!("loading is bulk copies plus validation — CommunityBuilder, per-record framing,");
    println!("and every per-edge hash insert drop out of the restart path entirely.");

    Outcome {
        agents,
        appleseed_graph_ms,
        appleseed_csr_ms,
        appleseed_identical,
        similarity_pairs_per_s,
        v1_bytes: v1.len(),
        v2_bytes: v2.len(),
        v1_load_ms,
        v2_load_ms,
        load_identical,
        resident_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arenas_are_byte_identical_and_v2_loads_faster() {
        let o = run(Scale::Small);
        assert!(o.appleseed_identical, "CSR Appleseed must be bit-identical");
        assert!(o.load_identical, "v1 and v2 restores must match the live model");
        assert!(o.resident_bytes > 0);
        assert!(o.similarity_pairs_per_s > 0.0);
        // Debug builds distort decode/compute ratios; hold the speedup
        // claims where they're meant to hold — the release harness CI
        // runs. The headline ≥5× needs the checksum/catalog/view overlap,
        // which a single-CPU host cannot express (decode_v2 falls back to
        // a strictly serial pass there, measured ≈2.7× on one core), so
        // the bar is keyed to the parallelism the host actually exposes.
        if !cfg!(debug_assertions) {
            let multi_cpu = std::thread::available_parallelism().is_ok_and(|n| n.get() > 1);
            let floor = if multi_cpu { 5.0 } else { 2.0 };
            assert!(
                o.v2_load_ms * floor <= o.v1_load_ms,
                "v2 arena load must be ≥{floor}× faster than the v1 per-record parse: \
                 v1 {:.2}ms vs v2 {:.2}ms",
                o.v1_load_ms,
                o.v2_load_ms,
            );
        }
    }
}
