//! **E18 — Persistence & recovery** (cold rebuild vs snapshot load vs
//! snapshot + WAL replay): the restart path costed end to end.
//!
//! A peer in §2's decentralized web that restarts from nothing must
//! re-derive the whole model — taxonomy assembly, trust graph, and every
//! Eq. 3 profile — before it can answer a single query. `semrec-store`
//! replaces that with a checkpointed warm start: load the newest snapshot
//! (no float is recomputed; profiles install from their persisted bits)
//! and replay the delta WAL through the live refresh path. This experiment
//! measures all three restart strategies after every appended refresh
//! round, demonstrates the compaction crossover (fold the WAL into a new
//! snapshot → recovery cost drops back to a pure load), and runs a
//! corruption sub-run (bit-flip the newest snapshot → typed fallback to
//! the previous generation, still byte-identical to the live model).
//!
//! The headline property checked on every row: **recover-then-serve is
//! byte-identical to never having restarted** — the recovered standing
//! view equals the live builder's view exactly, and a panel of agents
//! gets bit-for-bit identical recommendations.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use semrec_core::{AgentId, ProductId, Recommender, RecommenderConfig};
use semrec_datagen::community::generate_community;
use semrec_eval::table::Table;
use semrec_store::{decode_v2, CompactionPolicy, Store};
use semrec_web::crawler::{crawl, refresh, CommunityBuilder, CrawlConfig};
use semrec_web::publish::{homepage_turtle, homepage_uri, publish_community};
use semrec_web::store::DocumentWeb;

use crate::Scale;

/// One restart comparison after `wal_records` appended refreshes.
#[derive(Clone, Debug)]
pub struct Row {
    /// Refresh round (1-based) — equals the WAL length at measurement time.
    pub round: usize,
    /// Agents this round's delta touched.
    pub touched: usize,
    /// WAL records on disk when the restart was measured.
    pub wal_records: usize,
    /// WAL bytes on disk (excluding the header).
    pub wal_bytes: u64,
    /// Cold restart: re-crawl the web, re-parse every homepage, rebuild
    /// the community, recompute every profile, ms.
    pub cold_ms: f64,
    /// Snapshot-only load (decode + restore, no replay), ms.
    pub load_ms: f64,
    /// Full recovery (newest snapshot + WAL replay), ms.
    pub recover_ms: f64,
    /// Recovered model ≡ live model, bit for bit (view + panel scores).
    pub identical: bool,
}

/// Measured outcomes for shape assertions.
pub struct Outcome {
    /// Community size.
    pub agents: usize,
    /// Bytes of the first full snapshot.
    pub snapshot_bytes: u64,
    /// One row per refresh round.
    pub rows: Vec<Row>,
    /// Snapshot generation the compaction wrote.
    pub compacted_seq: u64,
    /// WAL records replayed by a recovery after compaction (must be 0).
    pub post_compaction_replayed: usize,
    /// Recovery time after compaction, ms.
    pub post_compaction_recover_ms: f64,
    /// Corrupt generations skipped in the corruption sub-run.
    pub fallback_skipped: usize,
    /// The fallback recovery still matched the live model bit for bit.
    pub fallback_identical: bool,
}

/// A unique scratch directory for one E18 run (no external tempfile crate).
fn scratch() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("semrec-e18-{}-{n}", std::process::id()))
}

/// Bit-exact fingerprint of a panel's recommendations.
fn fingerprint(engine: &Recommender, panel: &[AgentId]) -> Vec<(AgentId, ProductId, u64)> {
    let mut out = Vec::new();
    for &agent in panel {
        for rec in engine.recommend(agent, 5).expect("recommendation succeeds") {
            out.push((agent, rec.product, rec.score.to_bits()));
        }
    }
    out
}

const CHURN: f64 = 0.05;

/// Runs E18.
pub fn run(scale: Scale) -> Outcome {
    super::header("E18", "Persistence: cold rebuild vs snapshot load vs snapshot+WAL replay");
    let rounds = match scale {
        Scale::Small => 3,
        Scale::Medium => 5,
        Scale::Paper => 6,
    };

    let gen_config = scale.community(1818);
    let mut source = generate_community(&gen_config).community;
    let agents = source.agent_count();
    let products: Vec<_> = source.catalog.iter().collect();
    let seeds: Vec<String> =
        source.agents().map(|a| source.agent(a).unwrap().uri.clone()).collect();

    let web = DocumentWeb::new();
    publish_community(&source, &web);
    let crawl_config = CrawlConfig::default();
    let mut previous = crawl(&web, &seeds, &crawl_config);
    let mut builder = CommunityBuilder::new(&previous.agents);
    let (community, _) = builder.build(source.taxonomy.clone(), source.catalog.clone());
    let engine_config = RecommenderConfig::default();
    let mut engine = Recommender::new(community, engine_config);
    let panel: Vec<AgentId> = engine.community().agents().take(32).collect();

    let store = Store::open(scratch()).expect("scratch store opens");
    let report = store.checkpoint(&engine, builder.agents(), 1).expect("checkpoint succeeds");
    let snapshot_bytes = report.snapshot_bytes;
    println!(
        "{agents} agents, churn {CHURN:.2} × {rounds} rounds; snapshot 1 = {snapshot_bytes} bytes\n\
         (restart measured after every appended refresh; panel of {} agents checked bit-for-bit)\n",
        panel.len(),
    );

    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(1818);
    for round in 1..=rounds {
        // Churn: a fraction of agents re-rate one product and republish.
        let republishers = ((agents as f64 * CHURN) as usize).max(1);
        for _ in 0..republishers {
            let agent = AgentId::from_index(rng.random_range(0..agents));
            let product = products[rng.random_range(0..products.len())];
            let rating = -1.0 + 2.0 * rng.random::<f64>();
            source.set_rating(agent, product, rating).expect("valid synthetic rating");
            let uri = &source.agent(agent).unwrap().uri;
            web.publish(homepage_uri(uri), homepage_turtle(&source, agent), "text/turtle");
        }

        // Refresh → append the delta to the WAL → advance the live model.
        let result = refresh(&web, &seeds, &crawl_config, &previous);
        let delta = result.delta.clone().expect("refresh always diffs");
        let health = result.health();
        store.append_delta(&delta, &health).expect("append succeeds");
        builder.apply_delta(&delta);
        let (next, _) = builder.build(source.taxonomy.clone(), source.catalog.clone());
        let (advanced, _) = engine.advance(next, &delta.model_delta(), health);
        engine = advanced;
        previous = result;

        // Restart strategy 1: cold rebuild. A process with no checkpoint
        // has no standing view either — it must re-crawl the document web,
        // re-parse every homepage, and recompute every profile.
        let started = Instant::now();
        let cold_crawl = crawl(&web, &seeds, &crawl_config);
        let cold_builder = CommunityBuilder::new(&cold_crawl.agents);
        let (cold_community, _) =
            cold_builder.build(source.taxonomy.clone(), source.catalog.clone());
        std::hint::black_box(Recommender::new(cold_community, engine_config));
        let cold_ms = started.elapsed().as_secs_f64() * 1e3;

        // Restart strategy 2: snapshot-only load (what recovery would cost
        // with an empty WAL) — no float is recomputed. The store writes v2
        // arena snapshots, so this is the cast-on-load path.
        let snapshot_path = store.snapshot_path(1);
        let started = Instant::now();
        let bytes = std::fs::read(&snapshot_path).expect("snapshot readable");
        let restored = decode_v2(&bytes).expect("v2 snapshot intact");
        std::hint::black_box(&restored.engine);
        let load_ms = started.elapsed().as_secs_f64() * 1e3;

        // Restart strategy 3: full recovery — snapshot + WAL replay.
        let started = Instant::now();
        let recovery = store.recover().expect("recovery succeeds");
        let recover_ms = started.elapsed().as_secs_f64() * 1e3;

        let identical = recovery.view == builder.agents()
            && fingerprint(&recovery.engine, &panel) == fingerprint(&engine, &panel);

        rows.push(Row {
            round,
            touched: delta.touched(),
            wal_records: recovery.replayed,
            wal_bytes: store.wal_bytes().expect("wal stat")
                - semrec_store::wal_header().len() as u64,
            cold_ms,
            load_ms,
            recover_ms,
            identical,
        });
    }

    let mut table = Table::new([
        "round", "touched", "wal recs", "wal bytes", "cold ms", "load ms", "recover ms",
        "identical",
    ]);
    for row in &rows {
        table.row([
            row.round.to_string(),
            row.touched.to_string(),
            row.wal_records.to_string(),
            row.wal_bytes.to_string(),
            format!("{:.2}", row.cold_ms),
            format!("{:.2}", row.load_ms),
            format!("{:.2}", row.recover_ms),
            if row.identical { "yes".into() } else { "NO".to_string() },
        ]);
    }
    println!("{}", table.render());

    // Compaction crossover: fold the WAL into snapshot 2; recovery cost
    // drops back to a pure load because nothing is left to replay.
    let strict = CompactionPolicy { max_wal_bytes: 1, max_wal_ratio: 0.0 };
    let compacted = store
        .compact_if_needed(&engine, builder.agents(), 1 + rounds as u64, &strict)
        .expect("compaction succeeds")
        .expect("an over-budget WAL compacts");
    let started = Instant::now();
    let post = store.recover().expect("post-compaction recovery succeeds");
    let post_compaction_recover_ms = started.elapsed().as_secs_f64() * 1e3;
    let post_compaction_replayed = post.replayed;
    println!(
        "compaction: WAL folded into snapshot {} ({} bytes); recovery now replays {} records\n\
         in {post_compaction_recover_ms:.2} ms",
        compacted.seq, compacted.snapshot_bytes, post_compaction_replayed,
    );

    // Corruption sub-run: bit-flip the newest snapshot. Recovery must fall
    // back to generation 1 + its full WAL — and still match the live model.
    let newest = store.snapshot_path(compacted.seq);
    let mut bytes = std::fs::read(&newest).expect("snapshot readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&newest, bytes).expect("snapshot writable");
    let fallback = store.recover().expect("fallback recovery succeeds");
    let fallback_skipped = fallback.skipped.len();
    let fallback_identical = fallback.view == builder.agents()
        && fingerprint(&fallback.engine, &panel) == fingerprint(&engine, &panel);
    println!(
        "corruption sub-run: snapshot {} bit-flipped → skipped {} generation(s), fell back to\n\
         snapshot {} + {} WAL record(s); recovered ≡ live: {}",
        compacted.seq,
        fallback_skipped,
        fallback.snapshot_seq,
        fallback.replayed,
        if fallback_identical { "yes" } else { "NO" },
    );

    println!("\nSnapshot load skips the crawl, every parse, and every profile computation —");
    println!("and the in-memory document web already flatters the cold path, which over a");
    println!("network pays per-homepage latency on top. Replay adds cost proportional to the");
    println!("appended deltas, not the world, and compaction resets it to zero. Corruption of");
    println!("the newest generation degrades to the previous snapshot + WAL — still");
    println!("bit-for-bit the live model.");

    std::fs::remove_dir_all(store.dir()).ok();
    Outcome {
        agents,
        snapshot_bytes,
        rows,
        compacted_seq: compacted.seq,
        post_compaction_replayed,
        post_compaction_recover_ms,
        fallback_skipped,
        fallback_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_is_byte_identical_and_replay_scales_with_the_wal() {
        let o = run(Scale::Small);
        assert_eq!(o.rows.len(), 3);
        assert!(o.snapshot_bytes > 0);

        for row in &o.rows {
            assert!(row.identical, "recovery must be byte-identical: {row:?}");
            assert_eq!(row.wal_records, row.round, "one record per refresh: {row:?}");
            // Unoptimized builds distort the decode/compute ratio at this
            // tiny scale, so only hold the timing claim where it's meant
            // to hold — the release harness CI actually runs.
            if !cfg!(debug_assertions) {
                assert!(
                    row.load_ms < row.cold_ms,
                    "snapshot load must beat the cold rebuild: {row:?}"
                );
            }
        }
        // WAL grows monotonically with appended refreshes.
        for pair in o.rows.windows(2) {
            assert!(pair[1].wal_bytes > pair[0].wal_bytes, "{pair:?}");
        }

        // Compaction folds everything into generation 2 — nothing replays.
        assert_eq!(o.compacted_seq, 2);
        assert_eq!(o.post_compaction_replayed, 0);

        // The corruption sub-run skipped exactly the flipped generation and
        // still recovered the live model bit for bit.
        assert_eq!(o.fallback_skipped, 1);
        assert!(o.fallback_identical);
    }
}
