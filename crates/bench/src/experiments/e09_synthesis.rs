//! **E9 — Rank synthesization alternatives** (§3.4's declared open
//! problem): "matching these approaches against each other within an
//! experimental framework allowing for some quantitative analysis."
//!
//! Sweeps the ξ blend between trust rank and similarity rank, plus the
//! Borda merge and pure trust-filter strategies, all on the same split.

use semrec_core::{Recommender, RecommenderConfig, SynthesisStrategy};
use semrec_datagen::community::generate_community;
use semrec_eval::table::{fmt, Table};
use semrec_eval::{evaluate, leave_n_out, SplitConfig};

use crate::Scale;

/// Measured rows for shape assertions.
pub struct Outcome {
    /// `(strategy label, recall@10, coverage)`.
    pub rows: Vec<(String, f64, f64)>,
}

/// Runs E9.
pub fn run(scale: Scale) -> Outcome {
    super::header("E9", "Rank synthesization strategies (§3.4 — left open by the paper)");
    let max_users = match scale {
        Scale::Small => 60,
        Scale::Medium => 150,
        Scale::Paper => 300,
    };
    let community = generate_community(&scale.community(909)).community;
    let split = leave_n_out(
        &community,
        &SplitConfig { hold_out: 3, min_remaining: 3, max_users, seed: 9 },
    );
    println!("Evaluating {} users\n", split.held_out.len());

    let mut strategies: Vec<(String, SynthesisStrategy)> = [0.0, 0.25, 0.5, 0.75, 1.0]
        .into_iter()
        .map(|xi| (format!("linear blend ξ = {xi}"), SynthesisStrategy::LinearBlend { xi }))
        .collect();
    strategies.push(("Borda rank merge".into(), SynthesisStrategy::BordaMerge));
    strategies.push(("trust filter, similarity order".into(), SynthesisStrategy::TrustFilter));

    let mut table = Table::new(["strategy", "recall@10", "precision@10", "coverage"]);
    let mut rows = Vec::new();
    for (label, strategy) in strategies {
        let config = RecommenderConfig { synthesis: strategy, ..Default::default() };
        let engine = Recommender::new(split.train.clone(), config);
        let m = evaluate(&split, |_, agent| {
            engine
                .recommend(agent, 10)
                .map(|r| r.into_iter().map(|x| x.product).collect())
                .unwrap_or_default()
        });
        table.row([label.clone(), fmt(m.recall), fmt(m.precision), fmt(m.coverage)]);
        rows.push((label, m.recall, m.coverage));
    }
    println!("{}", table.render());
    println!("ξ = 0 ranks peers by similarity alone, ξ = 1 by trust alone; the blend and");
    println!("the Borda merge use both signals — the quantitative comparison §6 calls for.");

    Outcome { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_strategies_produce_usable_recommendations() {
        let o = run(Scale::Small);
        assert_eq!(o.rows.len(), 7);
        for (label, recall, coverage) in &o.rows {
            assert!(*coverage > 0.5, "{label}: coverage {coverage}");
            assert!(*recall >= 0.0);
        }
        // The blends must produce at least one strategy beating trust-only
        // similarity-free ranking is not the best alternative.
        let best = o.rows.iter().map(|r| r.1).fold(0.0f64, f64::max);
        assert!(best > 0.0, "someone must recover hidden items");
    }
}
