//! **E5 — Low profile overlap** (§2 research issue): as the catalog grows,
//! raw product-vector profiles stop overlapping ("the probability that two
//! persons have read several same books becomes considerably low") while
//! taxonomy-based profiles keep similarity defined for (almost) every pair.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use semrec_core::ProfileStore;
use semrec_datagen::community::generate_community;
use semrec_eval::table::{fmt, Table};
use semrec_profiles::generation::ProfileParams;
use semrec_profiles::ProductVector;
use semrec_trust::AgentId;

use crate::Scale;

/// Measured rows for shape assertions.
pub struct Outcome {
    /// `(catalog size, co-rating fraction, pearson-defined fraction,
    ///   taxonomy-overlap fraction)` over sampled pairs.
    pub rows: Vec<(usize, f64, f64, f64)>,
}

/// Runs E5.
pub fn run(scale: Scale) -> Outcome {
    super::header("E5", "Profile overlap vs catalog size (§2 — low profile overlap)");
    let sizes: &[usize] = match scale {
        Scale::Small => &[200, 500, 1000, 2000],
        Scale::Medium => &[500, 2000, 5000, 10_000],
        Scale::Paper => &[1000, 2500, 5000, 9953, 20_000],
    };
    let pairs = 2000usize;

    let mut table = Table::new([
        "catalog |B|",
        "pairs with co-rated product",
        "pairs with CF Pearson defined",
        "pairs with taxonomy overlap",
    ]);
    let mut rows = Vec::new();

    for &m in sizes {
        let mut config = scale.community(505);
        config.catalog.products = m;
        // Hold ratings-per-user fixed so only the catalog grows.
        config.mean_ratings = 10.0;
        let community = generate_community(&config).community;
        let profiles = ProfileStore::build(&community, &ProfileParams::default());
        let product_vectors: Vec<ProductVector> = community
            .agents()
            .map(|a| ProductVector::from_ratings(community.ratings_of(a)))
            .collect();

        let n = community.agent_count();
        let mut rng = StdRng::seed_from_u64(m as u64);
        let (mut co, mut pearson_defined, mut tax_overlap) = (0usize, 0usize, 0usize);
        for _ in 0..pairs {
            let a = rng.random_range(0..n);
            let mut b = rng.random_range(0..n);
            while b == a {
                b = rng.random_range(0..n);
            }
            if !product_vectors[a].co_rated(&product_vectors[b]).is_empty() {
                co += 1;
            }
            if product_vectors[a].pearson(&product_vectors[b]).is_some() {
                pearson_defined += 1;
            }
            let pa = profiles.profile(AgentId::from_index(a));
            let pb = profiles.profile(AgentId::from_index(b));
            if pa.overlap(pb) > 0 {
                tax_overlap += 1;
            }
        }
        let frac = |x: usize| x as f64 / pairs as f64;
        table.row([
            m.to_string(),
            fmt(frac(co)),
            fmt(frac(pearson_defined)),
            fmt(frac(tax_overlap)),
        ]);
        rows.push((m, frac(co), frac(pearson_defined), frac(tax_overlap)));
    }
    println!("{}", table.render());
    println!("Classic CF's similarity becomes ⊥ for most pairs as |B| grows; Eq. 3");
    println!("profiles always overlap through shared super-topics (at worst ⊤).");

    Outcome { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_overlap_survives_catalog_growth() {
        let o = run(Scale::Small);
        let first = o.rows.first().unwrap();
        let last = o.rows.last().unwrap();
        // Co-rating collapses with catalog size …
        assert!(last.1 < first.1, "co-rating must fall: {:?}", o.rows);
        // … Pearson definedness falls at least as fast …
        assert!(last.2 <= last.1 + 1e-9);
        // … while taxonomy overlap stays (essentially) complete — the only
        // misses are agents whose sole ratings are dislikes (empty profile).
        assert!(last.3 > 0.95, "taxonomy overlap must persist: {}", last.3);
        assert!(last.3 > first.3 - 0.03, "taxonomy overlap must stay flat");
        for row in &o.rows {
            assert!(row.3 >= row.1, "taxonomy overlap dominates co-rating");
        }
    }
}
