//! **E6 — Scalability** (§2 research issue): "computing similarity measures
//! for all these individuals becomes infeasible. Consequently, scalability
//! can only be ensured when restricting latter computations to sufficiently
//! narrow neighborhoods."
//!
//! As the community grows we track, per recommendation query, (a) how many
//! candidate peers each method *touches* — the deterministic measure of
//! locality — and (b) wall-clock latency. The trust-bounded pipeline's
//! exploration plateaus at its configured cap while every centralized CF
//! variant scans all `n − 1` candidates; wall time follows once `n`
//! outgrows Appleseed's constant factor (visible at medium/paper scale).

use std::time::Instant;

use semrec_core::{ProfileStore, Recommender, RecommenderConfig};
use semrec_datagen::community::generate_community;
use semrec_eval::baselines::{knn_product_cf, knn_taxonomy_cf};
use semrec_eval::table::Table;

use crate::Scale;

/// Measured rows for shape assertions.
pub struct Outcome {
    /// `(n agents, hybrid mean nodes explored, global candidates scanned,
    ///   hybrid µs, product-CF µs, taxonomy-CF µs)`.
    pub rows: Vec<(usize, f64, usize, f64, f64, f64)>,
    /// The exploration cap configured in the neighborhood parameters.
    pub exploration_cap: usize,
}

/// Runs E6.
pub fn run(scale: Scale) -> Outcome {
    super::header("E6", "Scalability — local trust-bounded pipeline vs global CF scan (§2)");
    let sizes: &[usize] = match scale {
        Scale::Small => &[100, 200, 400, 800, 1600],
        Scale::Medium => &[500, 1000, 2000, 4000, 8000],
        Scale::Paper => &[1000, 2000, 4000, 9100],
    };
    let probes = 30usize;
    let config = RecommenderConfig::default();
    let exploration_cap = config.neighborhood.appleseed.max_nodes.unwrap_or(usize::MAX);

    let mut table = Table::new([
        "n agents",
        "hybrid: nodes touched",
        "global: candidates",
        "hybrid µs/rec",
        "product-CF µs/rec",
        "taxonomy-CF µs/rec",
    ]);
    let mut rows = Vec::new();

    for &n in sizes {
        let mut gen_config = scale.community(606);
        gen_config.agents = n;
        let community = generate_community(&gen_config).community;
        let engine = Recommender::new(community.clone(), config);
        let profiles = ProfileStore::build(
            &community,
            &semrec_profiles::generation::ProfileParams::default(),
        );
        let targets: Vec<_> = community.agents().take(probes).collect();

        let mut explored_sum = 0usize;
        let hybrid_us = time_per(|| {
            for &t in &targets {
                let (_, trace) = engine.recommend_traced(t, 10).unwrap();
                explored_sum += trace.nodes_explored;
            }
        }) / probes as f64;
        let explored = explored_sum as f64 / probes as f64;
        let product_us = time_per(|| {
            for &t in &targets {
                std::hint::black_box(knn_product_cf(&community, t, 20, 10));
            }
        }) / probes as f64;
        let taxonomy_us = time_per(|| {
            for &t in &targets {
                std::hint::black_box(knn_taxonomy_cf(&community, &profiles, t, 20, 10));
            }
        }) / probes as f64;

        table.row([
            n.to_string(),
            format!("{explored:.0}"),
            (n - 1).to_string(),
            format!("{hybrid_us:.0}"),
            format!("{product_us:.0}"),
            format!("{taxonomy_us:.0}"),
        ]);
        rows.push((n, explored, n - 1, hybrid_us, product_us, taxonomy_us));
    }
    println!("{}", table.render());
    println!("The hybrid's exploration plateaus at the configured cap ({exploration_cap}");
    println!("nodes) — the \"intelligent prefiltering\" of §2 — while every centralized CF");
    println!("variant must score all n − 1 candidates per query.");

    Outcome { rows, exploration_cap }
}

fn time_per<F: FnOnce()>(f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exploration_is_capped_while_global_scan_grows() {
        let o = run(Scale::Small);
        let first = o.rows.first().unwrap();
        let last = o.rows.last().unwrap();
        // Community grew 16×; global candidate count grows with it …
        assert!(last.2 >= 15 * first.2);
        // … while the hybrid's exploration respects the cap and plateaus.
        for row in &o.rows {
            assert!(
                row.1 <= o.exploration_cap as f64 + 1.0,
                "exploration {} exceeds cap {}",
                row.1,
                o.exploration_cap
            );
        }
        let exploration_growth = last.1 / first.1.max(1.0);
        let candidate_growth = last.2 as f64 / first.2 as f64;
        assert!(
            exploration_growth < candidate_growth / 2.0,
            "exploration (×{exploration_growth:.1}) must grow far slower than the \
             global scan (×{candidate_growth:.1})"
        );
    }
}
