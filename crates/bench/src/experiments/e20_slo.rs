//! **E20 — SLO-aware serving under open-loop traffic** (semrec-serve):
//! drive the lockstep server with open-loop arrival processes — Poisson,
//! a diurnal ramp, and a flash crowd concentrated on a hot agent set —
//! and measure **goodput-under-SLO by priority class**: requests answered
//! within their class's deadline budget, as a fraction of offered load.
//!
//! The headline comparison runs the *identical* flash-crowd trace twice:
//! once with SLO enforcement off (nothing shed at dequeue, requests are
//! simply served late) and once with it on (deadline-aware shedding plus
//! the pressure controller). High-priority goodput must be strictly
//! higher with the SLO on — that is the whole point of spending drain
//! capacity on live requests instead of dead ones.
//!
//! Two robustness sub-runs repeat the flash crowd with the machinery
//! under extra stress:
//!
//! * **mid-burst publish** — a new snapshot generation is installed at the
//!   middle of the spike window; every admitted request must still
//!   resolve (zero loss) and the epoch must have advanced;
//! * **degraded-source epoch** — the engine carries a [`SourceHealth`]
//!   record from a partially-failed crawl; every admitted request is
//!   answered and responses are marked degraded.
//!
//! Because the server runs in lockstep mode, every run here is a pure
//! function of `(config, seed)` — the experiment re-runs the enforcing
//! trace at 2 and 8 compute threads and asserts report equality.

use semrec_core::{Recommender, RecommenderConfig, SourceHealth};
use semrec_datagen::community::generate_community;
use semrec_eval::table::{fmt, Table};
use semrec_serve::{
    run_open_loop, run_open_loop_with, ArrivalProcess, OpenLoopConfig, OpenLoopReport,
    Priority, ScalerConfig, ServeConfig, Server,
};

use crate::Scale;

/// One measured trace: an arrival process under an enforcement mode.
#[derive(Clone, Debug)]
pub struct Row {
    /// Human label for the arrival process.
    pub process: &'static str,
    /// Whether SLO enforcement was on.
    pub slo: bool,
    /// The measured outcome.
    pub report: OpenLoopReport,
}

/// Measured outcomes for shape assertions.
pub struct Outcome {
    /// Arrival-process sweep (all SLO-on) plus the baseline/enforced pair.
    pub rows: Vec<Row>,
    /// Flash crowd with enforcement off — the no-SLO baseline.
    pub baseline: OpenLoopReport,
    /// The same trace with enforcement on.
    pub enforced: OpenLoopReport,
    /// Mid-burst snapshot-publish sub-run.
    pub publish: OpenLoopReport,
    /// Epoch installed by the mid-burst publish.
    pub epoch_after: u64,
    /// Degraded-source-epoch sub-run.
    pub degraded: OpenLoopReport,
    /// Whether a probe response from the degraded epoch was marked so.
    pub degraded_marked: bool,
    /// Whether the enforcing trace is identical at 1, 2, and 8 threads.
    pub identical_across_threads: bool,
}

/// Runs E20.
pub fn run(scale: Scale) -> Outcome {
    super::header("E20", "SLO-aware serving: goodput by class under open-loop traffic");
    let (ticks, spike) = match scale {
        Scale::Small => (80u64, 32.0),
        Scale::Medium => (120, 32.0),
        Scale::Paper => (200, 40.0),
    };
    let spike_start = ticks / 4;
    let spike_len = ticks * 3 / 8;

    let community = generate_community(&scale.community(2020)).community;
    let panel: Vec<_> = community.agents().take(64).collect();
    let engine = Recommender::new(community, RecommenderConfig::default());

    let flash = ArrivalProcess::FlashCrowd {
        base: 2.0,
        spike,
        start: spike_start,
        len: spike_len,
        hot_agents: 6,
        hot_fraction: 0.7,
    };
    // A deep queue and a capped pool: the spike outruns the drain so waits
    // climb past the deadline budgets and the SLO machinery has to act.
    let lockstep = ServeConfig { workers: 0, queue_capacity: 256, ..ServeConfig::default() };
    // The mix is deliberately top-heavy: at the spike rate, high-class
    // arrivals alone exceed high's weighted-fair share of the drain, so
    // even the protected class queues past its budget — the regime where
    // deadline shedding (dropping dead requests instead of serving them
    // late) is the only thing that can rescue goodput.
    let config = |process: ArrivalProcess| OpenLoopConfig {
        ticks,
        process,
        seed: 2020,
        class_mix: [0.4, 0.4, 0.2],
        scaler: ScalerConfig { max_workers: 4, ..ScalerConfig::default() },
        ..OpenLoopConfig::default()
    };
    let drive = |cfg: &OpenLoopConfig| -> OpenLoopReport {
        let server = Server::start(engine.clone(), lockstep);
        let report = run_open_loop(&server, &panel, cfg);
        server.shutdown();
        report
    };

    println!(
        "{} agents, 64-agent panel; {} ticks, spike ×{:.0} over [{}, {});\n\
         budgets H/N/L = 8/16/32 ticks, p99 target 16; queue 256, workers 1–4\n",
        engine.community().agent_count(),
        ticks,
        spike,
        spike_start,
        spike_start + spike_len,
    );

    // --- arrival-process sweep (SLO on) + the baseline/enforced pair -----
    let mut rows = vec![
        Row {
            process: "poisson(6)",
            slo: true,
            report: drive(&config(ArrivalProcess::Poisson { rate: 6.0 })),
        },
        Row {
            process: "diurnal(2→20)",
            slo: true,
            report: drive(&config(ArrivalProcess::Diurnal { base: 2.0, peak: 20.0 })),
        },
    ];
    let baseline = drive(&OpenLoopConfig { enforce_slo: false, ..config(flash) });
    let enforced = drive(&config(flash));
    rows.push(Row { process: "flash crowd", slo: false, report: baseline });
    rows.push(Row { process: "flash crowd", slo: true, report: enforced });

    let mut table = Table::new([
        "process", "slo", "class", "offered", "served", "goodput", "good %", "shed adm",
        "displ", "shed dl", "p50", "p99",
    ]);
    for row in &rows {
        for class in Priority::ALL {
            let c = row.report.class.get(class);
            table.row([
                row.process.to_string(),
                if row.slo { "on".into() } else { "off".to_string() },
                class.label().to_string(),
                c.offered.to_string(),
                c.served.to_string(),
                c.goodput.to_string(),
                fmt(c.goodput_rate()),
                c.shed_admission.to_string(),
                c.displaced.to_string(),
                c.shed_deadline.to_string(),
                c.wait_p50.to_string(),
                c.wait_p99.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    let (b, e) = (baseline.class.high, enforced.class.high);
    println!(
        "Same trace, SLO off → on: high-class goodput {} → {} ({} → {}); the\n\
         controller spends drain capacity on live requests instead of dead ones,\n\
         and sheds low before normal before high as pressure climbs.\n",
        b.goodput,
        e.goodput,
        fmt(b.goodput_rate()),
        fmt(e.goodput_rate()),
    );

    // --- sub-run: snapshot publish at mid-spike ---------------------------
    let publish_at = spike_start + spike_len / 2;
    let server = Server::start(engine.clone(), lockstep);
    let mut epoch_after = 0;
    let publish = run_open_loop_with(&server, &panel, &config(flash), |tick, server| {
        if tick == publish_at {
            epoch_after = server.publish(engine.clone());
        }
    });
    server.shutdown();
    println!(
        "Mid-burst publish at tick {}: epoch {} installed under flash-crowd load;\n\
         {} offered, {} served, {} lost — every admitted request resolved.\n",
        publish_at,
        epoch_after,
        publish.offered(),
        publish.served(),
        publish.lost,
    );

    // --- sub-run: degraded-source epoch under the same flash crowd --------
    let health = SourceHealth {
        attempted: 24,
        fetched: 20,
        unreachable: 3,
        gave_up: 1,
        corrupted: 0,
        parse_errors: 2,
    };
    let server = Server::start(engine.clone().with_source_health(health), lockstep);
    let degraded = run_open_loop(&server, &panel, &config(flash));
    let probe = server
        .submit_classed(panel[0], 10, Priority::High, None)
        .expect("drained queue admits a probe");
    server.drain_step(1, 1, None);
    let degraded_marked = probe
        .try_wait()
        .expect("lockstep drain resolves the probe")
        .expect("healthy engine serves the probe")
        .degraded;
    server.shutdown();
    println!(
        "Degraded-source epoch ({} of {} sources fetched) under the same burst:\n\
         {} served of {} offered, {} lost; responses marked degraded: {}.\n",
        health.fetched,
        health.attempted,
        degraded.served(),
        degraded.offered(),
        degraded.lost,
        degraded_marked,
    );

    // --- determinism: the enforcing trace at 1, 2, and 8 threads ----------
    let identical_across_threads = [2usize, 8]
        .iter()
        .all(|&threads| drive(&OpenLoopConfig { threads, ..config(flash) }) == enforced);
    println!(
        "Thread-count invariance: enforcing flash-crowd run at 2 and 8 compute\n\
         threads {} the single-threaded report byte for byte.",
        if identical_across_threads { "matches" } else { "DIVERGES FROM" },
    );

    Outcome {
        rows,
        baseline,
        enforced,
        publish,
        epoch_after,
        degraded,
        degraded_marked,
        identical_across_threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_enforcement_shapes_hold_at_small_scale() {
        let o = run(Scale::Small);

        // Accounting closes on every trace: all admitted requests resolve.
        for row in &o.rows {
            let r = &row.report;
            assert_eq!(r.lost, 0, "no admitted request may vanish: {row:?}");
            for class in Priority::ALL {
                let c = r.class.get(class);
                assert_eq!(
                    c.admitted,
                    c.resolved(),
                    "class {class} accounting must close: {row:?}"
                );
                assert_eq!(c.offered, c.admitted + c.shed_admission);
            }
        }

        // The flash crowd actually stresses the enforcing run: every class
        // sees traffic, the pool scales, and deadline shedding fires.
        let e = &o.enforced;
        for class in Priority::ALL {
            assert!(e.class.get(class).served > 0, "class {class} must be served");
        }
        assert!(e.scale_events > 0, "the spike must trigger worker scaling");
        assert!(e.peak_workers > 1);
        let dl: u64 = Priority::ALL.iter().map(|&c| e.class.get(c).shed_deadline).sum();
        assert!(dl > 0, "the spike must drive deadline shedding");

        // The baseline never sheds at dequeue — it only serves late.
        let b = &o.baseline;
        for class in Priority::ALL {
            assert_eq!(b.class.get(class).shed_deadline, 0, "no-SLO run sheds only at admission");
        }

        // Headline: on the identical trace, enforcement strictly improves
        // high-priority goodput, and high degrades last (its goodput rate
        // stays above the lower classes').
        assert!(
            e.class.high.goodput > b.class.high.goodput,
            "SLO-on high goodput {} must exceed baseline {}",
            e.class.high.goodput,
            b.class.high.goodput
        );
        assert!(e.class.high.goodput_rate() >= e.class.normal.goodput_rate());
        assert!(e.class.high.goodput_rate() >= e.class.low.goodput_rate());

        // Mid-burst publish: epoch advanced, nothing lost.
        assert_eq!(o.epoch_after, 2, "publish must install the second generation");
        assert_eq!(o.publish.lost, 0, "a mid-burst publish must not lose requests");

        // Degraded epoch: everything admitted is answered, and marked.
        assert_eq!(o.degraded.lost, 0);
        assert!(o.degraded.served() > 0);
        assert!(o.degraded_marked, "degraded provenance must reach responses");

        // Lockstep determinism across compute-thread counts.
        assert!(o.identical_across_threads);
    }
}
