//! **E4 — Trust ↔ similarity correlation** (ref \[5\]): "trust and interest
//! profiles tend to correlate, justifying trust as an appropriate
//! supplement or surrogate for collaborative filtering."
//!
//! For each homophily level we compare the mean taxonomy-profile similarity
//! of *trusted pairs* (directed positive trust edges) against *random
//! pairs*. The paper's crawled communities behave like the homophilous
//! settings; the h = 0 ablation shows the correlation is a property of the
//! community, not an artifact of the pipeline.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use semrec_core::{ProfileStore, SimilarityMeasure};
use semrec_datagen::community::generate_community;
use semrec_eval::stats::{summarize, welch_t};
use semrec_eval::table::{fmt, Table};
use semrec_profiles::generation::ProfileParams;
use semrec_trust::AgentId;

use crate::Scale;

/// Measured rows for shape assertions.
pub struct Outcome {
    /// `(homophily, trusted-pair mean sim, random-pair mean sim, Welch t)`.
    pub rows: Vec<(f64, f64, f64, f64)>,
}

/// Runs E4.
pub fn run(scale: Scale) -> Outcome {
    super::header("E4", "Trust ↔ similarity correlation (ref [5])");
    let mut table =
        Table::new(["homophily h", "trusted pairs", "random pairs", "ratio", "Welch t"]);
    let mut rows = Vec::new();

    for h in [0.0, 0.5, 0.9] {
        let config = semrec_datagen::community::CommunityGenConfig {
            homophily: h,
            ..scale.community(404)
        };
        let community = generate_community(&config).community;
        let profiles = ProfileStore::build(&community, &ProfileParams::default());

        // Trusted pairs: every positive trust edge.
        let mut trusted = Vec::new();
        for a in community.agents() {
            for (b, w) in community.trust.positive_out_edges(a) {
                if w > 0.0 {
                    if let Some(s) = profiles.similarity(SimilarityMeasure::Cosine, a, b) {
                        trusted.push(s);
                    }
                }
            }
        }
        // Random pairs, same count.
        let n = community.agent_count();
        let mut rng = StdRng::seed_from_u64(4040);
        let mut random = Vec::new();
        while random.len() < trusted.len() {
            let a = AgentId::from_index(rng.random_range(0..n));
            let b = AgentId::from_index(rng.random_range(0..n));
            if a == b {
                continue;
            }
            if let Some(s) = profiles.similarity(SimilarityMeasure::Cosine, a, b) {
                random.push(s);
            }
        }

        let st = summarize(&trusted);
        let sr = summarize(&random);
        let t = welch_t(&trusted, &random);
        table.row([
            format!("{h}"),
            format!("{} ± {}", fmt(st.mean), fmt(st.ci95)),
            format!("{} ± {}", fmt(sr.mean), fmt(sr.ci95)),
            fmt(st.mean / sr.mean.max(f64::EPSILON)),
            fmt(t),
        ]);
        rows.push((h, st.mean, sr.mean, t));
    }
    println!("{}", table.render());
    println!("With homophilous trust (the empirical regime of ref [5]) trusted peers are");
    println!("significantly more similar than random pairs; with h = 0 the effect vanishes.");

    Outcome { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_appears_exactly_when_homophily_is_on() {
        // Thresholds are calibrated against the workspace's deterministic
        // vendored RNG: the claim is *significance*, so it is pinned on the
        // Welch t statistic (mean ratios at Small scale are too noisy for a
        // fixed multiplicative bound across RNG streams).
        let o = run(Scale::Small);
        let at = |h: f64| o.rows.iter().find(|r| r.0 == h).unwrap();
        let (_, t9_trusted, t9_random, t9) = *at(0.9);
        assert!(t9_trusted > t9_random, "h=0.9: {t9_trusted} vs {t9_random}");
        assert!(t9 > 2.0, "h=0.9 must be significant, t={t9}");
        let (_, t0_trusted, t0_random, t0) = *at(0.0);
        assert!(
            t0_trusted < 1.3 * t0_random,
            "h=0 ablation must kill the effect: {t0_trusted} vs {t0_random}"
        );
        assert!(t0 < 2.0, "h=0 must not be significant, t={t0}");
        assert!(t9 > t0 + 2.0, "homophily must move the statistic: {t9} vs {t0}");
    }
}
