//! **E2 — Figure 1**: the Amazon book taxonomy fragment.
//!
//! Renders the fixture tree and verifies the §3.1 structural invariants:
//! single top element ⊤ with zero indegree, acyclicity, and the sibling
//! counts Example 1's arithmetic implies.

use semrec_taxonomy::fixtures::figure1;
use semrec_taxonomy::{stats, TopicId};

/// Structural summary for shape assertions.
pub struct Outcome {
    /// Rendered tree.
    pub rendering: String,
    /// Number of topics.
    pub topics: usize,
    /// Depth of the Algebra leaf.
    pub algebra_depth: u32,
}

/// Runs E2.
pub fn run() -> Outcome {
    super::header("E2", "Figure 1 — fragment of the Amazon book taxonomy");
    let f = figure1();
    let rendering = stats::render_tree(&f.taxonomy, 64);
    println!("{rendering}");

    let s = stats::stats(&f.taxonomy);
    println!(
        "{} topics, {} leaves, max depth {}, mean branching {:.2}",
        s.topics, s.leaves, s.max_depth, s.mean_branching
    );
    println!("\nSibling counts implied by Example 1 (sib + 1 divisors: 2, 3, 4, 4):");
    for (child, parent) in [
        (f.algebra, f.pure),
        (f.pure, f.mathematics),
        (f.mathematics, f.science),
        (f.science, TopicId::TOP),
    ] {
        println!(
            "  sib({}) under {} = {}",
            f.taxonomy.label(child),
            f.taxonomy.label(parent),
            f.taxonomy.siblings_under(child, parent)
        );
    }

    Outcome { rendering, topics: s.topics, algebra_depth: f.taxonomy.depth(f.algebra) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_structure_holds() {
        let outcome = run();
        assert_eq!(outcome.algebra_depth, 4);
        assert!(outcome.topics >= 19);
        for label in ["Books", "Science", "Mathematics", "Pure", "Algebra"] {
            assert!(outcome.rendering.contains(label));
        }
    }
}
