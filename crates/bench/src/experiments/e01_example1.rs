//! **E1 — Example 1**: topic score assignment.
//!
//! The paper's only fully worked computation: 4 books, s = 1000, *Matrix
//! Analysis* with 5 descriptors → Algebra descriptor allotted 50, spread
//! along the Figure 1 path as 29.087 / 14.543 / 4.848 / 1.212 / 0.303.

use semrec_eval::table::{fmt, Table};
use semrec_profiles::generation::{descriptor_scores, generate_profile, ProfileParams};
use semrec_taxonomy::fixtures::example1;

/// The reproduced vs paper values, for shape assertions.
pub struct Outcome {
    /// `(topic label, reproduced score, paper score)` along the path.
    pub rows: Vec<(String, f64, f64)>,
    /// Total profile mass of the full Example 1 profile.
    pub profile_total: f64,
}

const PAPER: [(&str, f64); 5] = [
    ("Algebra", 29.087),
    ("Pure", 14.543),
    ("Mathematics", 4.848),
    ("Science", 1.212),
    ("Books", 0.303),
];

/// Runs E1.
pub fn run() -> Outcome {
    super::header("E1", "Example 1 — topic score assignment (s = 1000, 4 books, 5 descriptors)");
    let e = example1();

    let ratings: Vec<_> = e.catalog.iter().map(|p| (p, 1.0)).collect();
    let params = ProfileParams::default();
    let n_desc = e.catalog.descriptors(e.matrix_analysis).len();
    let allotment = params.total_score / (ratings.len() as f64 * n_desc as f64);
    println!(
        "Allotment for descriptor `Algebra`: s/(|R|·|f(b)|) = 1000/({}·{}) = {}",
        ratings.len(),
        n_desc,
        allotment
    );

    let scores = descriptor_scores(&e.fig.taxonomy, e.fig.algebra, allotment);
    let mut table = Table::new(["topic", "reproduced", "paper", "Δ"]);
    let mut rows = Vec::new();
    for (&(topic, got), (label, paper)) in scores.iter().zip(PAPER) {
        assert_eq!(e.fig.taxonomy.label(topic), label);
        table.row([label.to_string(), fmt(got), fmt(paper), format!("{:+.3}", got - paper)]);
        rows.push((label.to_owned(), got, paper));
    }
    println!("{}", table.render());
    println!("(The paper's printed values round κ slightly differently; the path total");
    println!(" is exactly 50 in both.)");

    let profile = generate_profile(&e.fig.taxonomy, &e.catalog, &ratings, &params);
    println!("\nFull Example 1 profile: {} topics scored, total mass {:.3} (= s)",
        profile.support(), profile.total());

    Outcome { rows, profile_total: profile.total() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_numbers() {
        let outcome = run();
        assert_eq!(outcome.rows.len(), 5);
        for (label, got, paper) in &outcome.rows {
            assert!((got - paper).abs() < 0.01, "{label}: {got} vs {paper}");
        }
        let total: f64 = outcome.rows.iter().map(|&(_, g, _)| g).sum();
        assert!((total - 50.0).abs() < 1e-9);
        assert!((outcome.profile_total - 1000.0).abs() < 1e-6);
    }
}
