//! **E1 — Example 1**: topic score assignment.
//!
//! The paper's only fully worked computation: 4 books, s = 1000, *Matrix
//! Analysis* with 5 descriptors → Algebra descriptor allotted 50, spread
//! along the Figure 1 path as 29.087 / 14.543 / 4.848 / 1.212 / 0.303.
//!
//! E1 then feeds the Example 1 catalog into the full pipeline: a four-agent
//! community (alice trusts bob and dave; eve sits outside the neighborhood)
//! is evaluated through [`recommend_batch`], exercising every stage —
//! Appleseed, profile similarity, synthesis, voting — so the `--metrics`
//! dump after E1 shows the whole pipeline's counters and stage timings.

use semrec_core::{recommend_batch, Community, Recommender, RecommenderConfig};
use semrec_eval::table::{fmt, Table};
use semrec_profiles::generation::{descriptor_scores, generate_profile, ProfileParams};
use semrec_taxonomy::fixtures::example1;

/// The reproduced vs paper values, for shape assertions.
pub struct Outcome {
    /// `(topic label, reproduced score, paper score)` along the path.
    pub rows: Vec<(String, f64, f64)>,
    /// Total profile mass of the full Example 1 profile.
    pub profile_total: f64,
    /// Number of recommendations each of the four pipeline agents received.
    pub recommendation_counts: Vec<usize>,
}

const PAPER: [(&str, f64); 5] = [
    ("Algebra", 29.087),
    ("Pure", 14.543),
    ("Mathematics", 4.848),
    ("Science", 1.212),
    ("Books", 0.303),
];

/// Runs E1.
pub fn run() -> Outcome {
    super::header("E1", "Example 1 — topic score assignment (s = 1000, 4 books, 5 descriptors)");
    let e = example1();

    let ratings: Vec<_> = e.catalog.iter().map(|p| (p, 1.0)).collect();
    let params = ProfileParams::default();
    let n_desc = e.catalog.descriptors(e.matrix_analysis).len();
    let allotment = params.total_score / (ratings.len() as f64 * n_desc as f64);
    println!(
        "Allotment for descriptor `Algebra`: s/(|R|·|f(b)|) = 1000/({}·{}) = {}",
        ratings.len(),
        n_desc,
        allotment
    );

    let scores = descriptor_scores(&e.fig.taxonomy, e.fig.algebra, allotment);
    let mut table = Table::new(["topic", "reproduced", "paper", "Δ"]);
    let mut rows = Vec::new();
    for (&(topic, got), (label, paper)) in scores.iter().zip(PAPER) {
        assert_eq!(e.fig.taxonomy.label(topic), label);
        table.row([label.to_string(), fmt(got), fmt(paper), format!("{:+.3}", got - paper)]);
        rows.push((label.to_owned(), got, paper));
    }
    println!("{}", table.render());
    println!("(The paper's printed values round κ slightly differently; the path total");
    println!(" is exactly 50 in both.)");

    let profile = generate_profile(&e.fig.taxonomy, &e.catalog, &ratings, &params);
    println!("\nFull Example 1 profile: {} topics scored, total mass {:.3} (= s)",
        profile.support(), profile.total());

    // Full-pipeline pass over the Example 1 community: every stage of the
    // engine runs, so observability counters and spans are populated.
    let e = example1();
    let products: Vec<_> = e.catalog.iter().collect();
    let mut community = Community::new(e.fig.taxonomy, e.catalog);
    let alice = community.add_agent("http://ex.org/alice").expect("fresh URI");
    let bob = community.add_agent("http://ex.org/bob").expect("fresh URI");
    let dave = community.add_agent("http://ex.org/dave").expect("fresh URI");
    let eve = community.add_agent("http://ex.org/eve").expect("fresh URI");
    community.trust.set_trust(alice, bob, 0.9).expect("valid edge");
    community.trust.set_trust(alice, dave, 0.8).expect("valid edge");
    community.trust.set_trust(bob, alice, 0.7).expect("valid edge");
    community.trust.set_trust(dave, eve, 0.6).expect("valid edge");
    community.set_rating(alice, products[1], 1.0).expect("valid rating");
    community.set_rating(bob, products[0], 1.0).expect("valid rating");
    community.set_rating(dave, products[2], 1.0).expect("valid rating");
    community.set_rating(dave, products[3], 0.9).expect("valid rating");
    community.set_rating(eve, products[3], 1.0).expect("valid rating");

    let agents = vec![alice, bob, dave, eve];
    let recommender = Recommender::new(community, RecommenderConfig::default());
    let batch = recommend_batch(&recommender, &agents, 3, 2);
    let recommendation_counts: Vec<usize> =
        batch.iter().map(|r| r.as_ref().map_or(0, |recs| recs.len())).collect();
    println!(
        "\nPipeline pass over the 4-agent Example 1 community: {:?} recommendations",
        recommendation_counts
    );

    Outcome { rows, profile_total: profile.total(), recommendation_counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_numbers() {
        let outcome = run();
        assert_eq!(outcome.rows.len(), 5);
        for (label, got, paper) in &outcome.rows {
            assert!((got - paper).abs() < 0.01, "{label}: {got} vs {paper}");
        }
        let total: f64 = outcome.rows.iter().map(|&(_, g, _)| g).sum();
        assert!((total - 50.0).abs() < 1e-9);
        assert!((outcome.profile_total - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn pipeline_pass_populates_the_acceptance_metrics() {
        let outcome = run();
        // Alice's trusted, taste-aligned peers produce recommendations.
        assert_eq!(outcome.recommendation_counts.len(), 4);
        assert!(outcome.recommendation_counts[0] >= 1, "alice must get recommendations");
        // The metrics the `--metrics` dump is contractually expected to show.
        let snapshot = semrec_obs::global().snapshot();
        assert!(snapshot.counters["appleseed.iterations"] >= 1);
        assert!(snapshot.counters["batch.tasks"] >= 4);
        assert!(snapshot.histograms["engine.stage.synthesis"].count >= 1);
    }
}
