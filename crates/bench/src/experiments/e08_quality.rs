//! **E8 — End-to-end recommendation quality**: the evaluation the paper's
//! framework is built towards (and ref \[5\]'s setup): leave-n-out recovery
//! of hidden books, hybrid vs every ablation and baseline.

use semrec_core::{ProfileStore, Recommender, RecommenderConfig};
use semrec_datagen::community::generate_community;
use semrec_eval::baselines::{
    build_flat_profiles, knn_flat_cf, knn_product_cf, knn_taxonomy_cf, random_recommender,
    trust_only,
};
use semrec_eval::table::{fmt, Table};
use semrec_eval::{evaluate, leave_n_out, AggregateMetrics, SplitConfig};
use semrec_profiles::generation::ProfileParams;
use semrec_trust::neighborhood::NeighborhoodParams;

use crate::Scale;

/// Measured metrics per method, for shape assertions.
pub struct Outcome {
    /// `(method name, metrics)`.
    pub methods: Vec<(&'static str, AggregateMetrics)>,
}

impl Outcome {
    /// Metrics for one method.
    pub fn get(&self, name: &str) -> &AggregateMetrics {
        &self.methods.iter().find(|(n, _)| *n == name).unwrap().1
    }
}

/// Runs E8.
pub fn run(scale: Scale) -> Outcome {
    super::header("E8", "Recommendation quality — hybrid vs ablations and baselines");
    let (max_users, k, n) = match scale {
        Scale::Small => (60, 20, 10),
        Scale::Medium => (150, 20, 10),
        Scale::Paper => (300, 30, 10),
    };
    let community = generate_community(&scale.community(808)).community;
    let split = leave_n_out(
        &community,
        &SplitConfig { hold_out: 3, min_remaining: 3, max_users, seed: 8 },
    );
    println!(
        "Community: {} agents, {} books; evaluating {} users, 3 hidden books each, top-{n} lists\n",
        community.agent_count(),
        community.catalog.len(),
        split.held_out.len()
    );

    let engine = Recommender::new(split.train.clone(), RecommenderConfig::default());
    let borda_engine = Recommender::new(
        split.train.clone(),
        RecommenderConfig {
            synthesis: semrec_core::SynthesisStrategy::BordaMerge,
            ..Default::default()
        },
    );
    let profiles = ProfileStore::build(&split.train, &ProfileParams::default());
    let flat = build_flat_profiles(&split.train, &ProfileParams::default());

    let methods: Vec<(&'static str, AggregateMetrics)> = vec![
        (
            "hybrid (trust + taxonomy CF)",
            evaluate(&split, |_, agent| {
                engine
                    .recommend(agent, n)
                    .map(|r| r.into_iter().map(|x| x.product).collect())
                    .unwrap_or_default()
            }),
        ),
        (
            "hybrid, Borda synthesis",
            evaluate(&split, |_, agent| {
                borda_engine
                    .recommend(agent, n)
                    .map(|r| r.into_iter().map(|x| x.product).collect())
                    .unwrap_or_default()
            }),
        ),
        (
            "taxonomy CF (no trust)",
            evaluate(&split, |train, agent| knn_taxonomy_cf(train, &profiles, agent, k, n)),
        ),
        (
            "flat category CF (ref [14])",
            evaluate(&split, |train, agent| knn_flat_cf(train, &flat, agent, k, n)),
        ),
        (
            "plain product CF (§2)",
            evaluate(&split, |train, agent| knn_product_cf(train, agent, k, n)),
        ),
        ("item-based CF (industrial)", {
            let model = semrec_eval::itemcf::ItemItemModel::build(&split.train, 30);
            evaluate(&split, |train, agent| model.recommend(train, agent, n))
        }),
        ("content-based (§5)", {
            let product_profiles = semrec_eval::content::ProductProfiles::build(&split.train);
            evaluate(&split, |train, agent| {
                semrec_eval::content::content_based(train, &product_profiles, &profiles, agent, n)
            })
        }),
        (
            "trust-only (no similarity)",
            evaluate(&split, |train, agent| {
                trust_only(train, agent, &NeighborhoodParams::default(), n)
            }),
        ),
        (
            "random floor",
            evaluate(&split, |train, agent| random_recommender(train, agent, n, 8)),
        ),
    ];

    let mut table =
        Table::new(["method", "precision@10", "recall@10", "F1", "Breese", "coverage"]);
    for (name, m) in &methods {
        table.row([
            name.to_string(),
            fmt(m.precision),
            fmt(m.recall),
            fmt(m.f1),
            fmt(m.breese),
            fmt(m.coverage),
        ]);
    }
    println!("{}", table.render());

    // Paired bootstrap: is the Borda hybrid's recall difference vs the
    // global taxonomy scan significant on this split?
    let per_user_recall = |recommend: &dyn Fn(semrec_trust::AgentId) -> Vec<semrec_taxonomy::ProductId>| -> Vec<f64> {
        split
            .held_out
            .iter()
            .map(|(agent, hidden)| {
                semrec_eval::precision_recall(&recommend(*agent), hidden).recall
            })
            .collect()
    };
    let borda_recalls = per_user_recall(&|agent| {
        borda_engine
            .recommend(agent, n)
            .map(|r| r.into_iter().map(|x| x.product).collect())
            .unwrap_or_default()
    });
    let taxonomy_recalls =
        per_user_recall(&|agent| knn_taxonomy_cf(&split.train, &profiles, agent, k, n));
    let cmp = semrec_eval::paired_bootstrap(&borda_recalls, &taxonomy_recalls, 2000, 8);
    println!(
        "Paired bootstrap (Borda hybrid − taxonomy CF recall@10): Δ = {}, 95% CI [{}, {}], P(hybrid better) = {}{}",
        fmt(cmp.mean_difference),
        fmt(cmp.ci_low),
        fmt(cmp.ci_high),
        fmt(cmp.probability_a_better),
        if cmp.significant() { " — significant" } else { " — not significant" },
    );

    Outcome { methods }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_ordering_matches_the_papers_claims() {
        let o = run(Scale::Small);
        let hybrid = o.get("hybrid (trust + taxonomy CF)");
        let taxonomy = o.get("taxonomy CF (no trust)");
        let plain = o.get("plain product CF (§2)");
        let random = o.get("random floor");

        // Every informed method clears the random floor.
        assert!(hybrid.recall > 3.0 * random.recall.max(1e-9));
        assert!(taxonomy.recall > 3.0 * random.recall.max(1e-9));
        // Taxonomy profiles beat raw product vectors in the sparse regime.
        assert!(
            taxonomy.recall >= plain.recall,
            "taxonomy {} vs plain {}",
            taxonomy.recall,
            plain.recall
        );
        // The hybrid is competitive with its best single signal (its win is
        // robustness + locality, E6/E7, not raw clean-data accuracy).
        assert!(hybrid.recall >= 0.5 * taxonomy.recall);
    }
}
