//! **E17 — Incremental refresh** (delta-driven crawl → community →
//! profiles → snapshot): the republish loop costed end to end.
//!
//! The steady state of §2's asynchronous environment is *small deltas
//! against a large standing model*: a churn fraction of agents republish,
//! the crawler refreshes, and the model must follow. This experiment
//! sweeps churn rate × refresh rounds and, each round, advances the model
//! both ways — incrementally (`CommunityBuilder::apply_delta` +
//! `Recommender::advance`, recomputing only dirty profiles) and by a full
//! from-scratch rebuild — then publishes the new generation into a running
//! server with a [`SwapPlan`]-guided cache carry and measures the
//! post-swap hit rate over a fixed request panel.
//!
//! The trust graph is kept sparse and the neighborhood horizon tight so
//! the reverse-trust closure of a small delta stays a small fraction of
//! the community — the regime the paper's web-scale deployment lives in,
//! where a republish cannot plausibly reach most of the graph within the
//! horizon. At high churn the dirty fraction crosses the plan's threshold
//! and the swap degrades to wholesale invalidation, which the last sweep
//! rows demonstrate.

use std::hint::black_box;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use semrec_core::{AgentId, Recommender, RecommenderConfig, SharedModel, SwapPlan};
use semrec_datagen::community::generate_community;
use semrec_eval::table::{fmt, Table};
use semrec_serve::{ServeConfig, Server};
use semrec_trust::neighborhood::NeighborhoodParams;
use semrec_web::crawler::{crawl, refresh, CommunityBuilder, CrawlConfig};
use semrec_web::publish::{homepage_turtle, homepage_uri, publish_community};
use semrec_web::store::DocumentWeb;

use crate::Scale;

/// One refresh round under one churn rate.
#[derive(Clone, Debug)]
pub struct Row {
    /// Fraction of agents that republished before this round.
    pub churn: f64,
    /// Round number (1-based) within this churn rate's run.
    pub round: usize,
    /// Agents the crawl delta touched (added + changed + removed).
    pub touched: usize,
    /// Profiles reused by `Arc` clone during the incremental advance.
    pub reused: usize,
    /// Profiles recomputed during the incremental advance.
    pub recomputed: usize,
    /// Virtual ticks the refresh crawl consumed.
    pub refresh_ticks: u64,
    /// Wall time of the incremental path (apply delta + rebuild community
    /// + advance profiles), in milliseconds.
    pub incremental_ms: f64,
    /// Wall time of the from-scratch model rebuild, in milliseconds.
    pub full_ms: f64,
    /// Agents the swap plan marked dirty.
    pub dirty: usize,
    /// Whether the plan fell back to wholesale cache invalidation.
    pub wholesale: bool,
    /// Cache entries carried across the swap.
    pub carried: usize,
    /// Panel requests answered from the cache after the swap.
    pub post_swap_hits: u64,
    /// Panel requests replayed after the swap.
    pub post_swap_requests: u64,
}

impl Row {
    /// Post-swap cache hit rate over the replayed panel.
    pub fn post_swap_hit_rate(&self) -> f64 {
        if self.post_swap_requests == 0 {
            return 0.0;
        }
        self.post_swap_hits as f64 / self.post_swap_requests as f64
    }
}

/// Measured outcomes for shape assertions.
pub struct Outcome {
    /// Community size.
    pub agents: usize,
    /// One row per (churn, round).
    pub rows: Vec<Row>,
}

const CHURNS: [f64; 3] = [0.01, 0.05, 0.25];

/// Runs E17.
pub fn run(scale: Scale) -> Outcome {
    super::header("E17", "Incremental refresh: churn × rounds, delta vs full rebuild");
    let rounds = match scale {
        Scale::Small => 3,
        Scale::Medium => 4,
        Scale::Paper => 5,
    };

    // Sparse trust graph + tight horizon: the regime where a delta's
    // reverse-trust closure is a small fraction of the community (see the
    // module docs). The engine config must match the plan's horizon — the
    // dirty set is only sound for the neighborhood bound it was computed
    // against.
    let mut gen_config = scale.community(1717);
    gen_config.mean_trust_edges = 2.5;
    let engine_config = RecommenderConfig {
        neighborhood: NeighborhoodParams {
            appleseed: semrec_trust::appleseed::AppleseedParams {
                max_range: Some(2),
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    };
    let horizon = engine_config.neighborhood.appleseed.max_range;

    let source = generate_community(&gen_config).community;
    let agents = source.agent_count();
    let products: Vec<_> = source.catalog.iter().collect();
    let seeds: Vec<String> =
        source.agents().map(|a| source.agent(a).unwrap().uri.clone()).collect();
    println!(
        "{agents} agents (mean {:.1} trust edges), horizon {} hops, {} rounds/churn;\n\
         panel of 64 agents replayed after every swap\n",
        gen_config.mean_trust_edges,
        horizon.unwrap_or(0),
        rounds,
    );

    let mut table = Table::new([
        "churn", "round", "touched", "reused", "recomp", "ticks", "inc ms", "full ms", "dirty",
        "swap", "carried", "hit rate",
    ]);
    let mut rows = Vec::new();

    for churn in CHURNS {
        let mut source = source.clone();
        let web = DocumentWeb::new();
        publish_community(&source, &web);
        let crawl_config = CrawlConfig::default();
        let mut previous = crawl(&web, &seeds, &crawl_config);
        let mut builder = CommunityBuilder::new(&previous.agents);
        let (community, _) =
            builder.build(source.taxonomy.clone(), source.catalog.clone());
        let mut engine = Recommender::new(community, engine_config);
        let panel: Vec<AgentId> = engine.community().agents().take(64).collect();

        let server = Server::start(engine.clone(), ServeConfig { workers: 2, ..Default::default() });
        for &agent in &panel {
            let _ = server.submit(agent, 10).expect("warm-up admission").wait();
        }

        let mut rng = StdRng::seed_from_u64(17 + (churn * 1000.0) as u64);
        for round in 1..=rounds {
            // Churn: a fraction of agents re-rate one product and republish.
            let republishers = ((agents as f64 * churn) as usize).max(1);
            for _ in 0..republishers {
                let agent = AgentId::from_index(rng.random_range(0..agents));
                let product = products[rng.random_range(0..products.len())];
                let rating = -1.0 + 2.0 * rng.random::<f64>();
                source.set_rating(agent, product, rating).expect("valid synthetic rating");
                let uri = &source.agent(agent).unwrap().uri;
                web.publish(
                    homepage_uri(uri),
                    homepage_turtle(&source, agent),
                    "text/turtle",
                );
            }

            // Refresh crawl → typed delta.
            let result = refresh(&web, &seeds, &crawl_config, &previous);
            let delta = result.delta.clone().expect("refresh always diffs");
            let model_delta = delta.model_delta();
            let touched = delta.touched();
            let refresh_ticks = result.ticks;
            let health = result.health();

            // Incremental path: fold the delta into the standing view,
            // re-assemble (byte-identical by construction), advance only
            // the dirty profiles.
            let started = Instant::now();
            builder.apply_delta(&delta);
            let (next_community, _) =
                builder.build(source.taxonomy.clone(), source.catalog.clone());
            let (next_engine, stats) =
                engine.advance(next_community, &model_delta, health);
            let incremental_ms = started.elapsed().as_secs_f64() * 1e3;

            // Full rebuild of the same generation, for comparison.
            let started = Instant::now();
            black_box(SharedModel::new(next_engine.community().clone(), engine_config));
            let full_ms = started.elapsed().as_secs_f64() * 1e3;

            // Plan the swap and publish with cache carry-over.
            let plan = SwapPlan::compute(
                engine.community(),
                next_engine.community(),
                &model_delta,
                horizon,
                SwapPlan::DEFAULT_MAX_DIRTY_FRACTION,
            );
            let report = server.publish_delta(next_engine.clone(), &plan);

            // Replay the panel against the new generation.
            let mut hits = 0u64;
            for &agent in &panel {
                let response =
                    server.submit(agent, 10).expect("replay admission").wait().expect("served");
                if response.cache_hit {
                    hits += 1;
                }
            }

            rows.push(Row {
                churn,
                round,
                touched,
                reused: stats.reused,
                recomputed: stats.recomputed,
                refresh_ticks,
                incremental_ms,
                full_ms,
                dirty: plan.dirty_count(),
                wholesale: report.wholesale,
                carried: report.carried,
                post_swap_hits: hits,
                post_swap_requests: panel.len() as u64,
            });

            engine = next_engine;
            previous = result;
        }
        server.shutdown();
    }

    for row in &rows {
        table.row([
            fmt(row.churn),
            row.round.to_string(),
            row.touched.to_string(),
            row.reused.to_string(),
            row.recomputed.to_string(),
            row.refresh_ticks.to_string(),
            format!("{:.2}", row.incremental_ms),
            format!("{:.2}", row.full_ms),
            row.dirty.to_string(),
            if row.wholesale { "whole".into() } else { "carry".to_string() },
            row.carried.to_string(),
            fmt(row.post_swap_hit_rate()),
        ]);
    }
    println!("{}", table.render());
    println!("At low churn the incremental path recomputes profiles proportional to the");
    println!("delta and carries most of the cache across the swap; past the dirty-fraction");
    println!("threshold the plan degrades to a wholesale swap — exactly the old publish()");
    println!("behaviour, never worse. Full rebuild cost is flat in the churn rate.");

    Outcome { agents, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_refresh_is_proportional_to_the_delta() {
        let o = run(Scale::Small);
        assert_eq!(o.rows.len(), 9, "3 churn rates × 3 rounds");

        for row in &o.rows {
            // Profile work ∝ delta: every touched agent recomputes, and
            // everything else is reused by pointer.
            assert_eq!(row.recomputed, row.touched, "recompute exactly the delta: {row:?}");
            assert_eq!(row.reused + row.recomputed, o.agents, "accounting closes: {row:?}");
            assert!(row.touched > 0, "churn must touch someone: {row:?}");
            // The dirty set contains at least the touched agents.
            assert!(row.dirty >= row.touched, "dirty set must cover the delta: {row:?}");
        }

        // Low churn: most profiles reused, the swap carries cache entries,
        // and the panel hits the carried cache after the swap.
        let low: Vec<_> = o.rows.iter().filter(|r| r.churn < 0.02).collect();
        assert!(!low.is_empty());
        for row in &low {
            assert!(
                row.reused * 10 >= o.agents * 9,
                "1% churn must reuse ≥ 90% of profiles: {row:?}"
            );
            assert!(!row.wholesale, "1% churn must not go wholesale: {row:?}");
            assert!(row.carried > 0, "clean entries must carry: {row:?}");
            assert!(row.post_swap_hits > 0, "carried entries must answer: {row:?}");
        }

        // High churn: the dirty fraction crosses the threshold and the
        // plan degrades to wholesale invalidation.
        let high: Vec<_> = o.rows.iter().filter(|r| r.churn > 0.2).collect();
        assert!(!high.is_empty());
        for row in &high {
            assert!(row.wholesale, "25% churn must fall back to wholesale: {row:?}");
            assert_eq!(row.carried, 0);
        }
    }
}
