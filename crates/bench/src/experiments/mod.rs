//! The reproduced experiments E1–E23 (DESIGN.md §3).
//!
//! Every experiment is a function of the chosen [`crate::Scale`] that prints
//! its table(s) to stdout — the same rows recorded in EXPERIMENTS.md — and
//! returns a small summary struct so tests can pin the expected *shape*
//! (who wins, where crossovers fall) without fixing absolute numbers.

pub mod e01_example1;
pub mod e02_figure1;
pub mod e03_appleseed;
pub mod e04_trust_similarity;
pub mod e05_overlap;
pub mod e06_scalability;
pub mod e07_attack;
pub mod e08_quality;
pub mod e09_synthesis;
pub mod e10_taxonomy_shape;
pub mod e11_advogato;
pub mod e12_crawl;
pub mod e13_stereotypes;
pub mod e14_freshness;
pub mod e15_resilience;
pub mod e16_serving;
pub mod e17_incremental;
pub mod e18_store;
pub mod e19_ranking;
pub mod e20_slo;
pub mod e21_sharding;
pub mod e22_arena;
pub mod e23_p2p;

use crate::Scale;

/// Runs one experiment by id (`"e1"` … `"e23"`); `true` if the id is known.
pub fn run(id: &str, scale: Scale) -> bool {
    match id {
        "e1" => {
            e01_example1::run();
        }
        "e2" => {
            e02_figure1::run();
        }
        "e3" => {
            e03_appleseed::run(scale);
        }
        "e4" => {
            e04_trust_similarity::run(scale);
        }
        "e5" => {
            e05_overlap::run(scale);
        }
        "e6" => {
            e06_scalability::run(scale);
        }
        "e7" => {
            e07_attack::run(scale);
        }
        "e8" => {
            e08_quality::run(scale);
        }
        "e9" => {
            e09_synthesis::run(scale);
        }
        "e10" => {
            e10_taxonomy_shape::run(scale);
        }
        "e11" => {
            e11_advogato::run(scale);
        }
        "e12" => {
            e12_crawl::run(scale);
        }
        "e13" => {
            e13_stereotypes::run(scale);
        }
        "e14" => {
            e14_freshness::run(scale);
        }
        "e15" => {
            e15_resilience::run(scale);
        }
        "e16" => {
            e16_serving::run(scale);
        }
        "e17" => {
            e17_incremental::run(scale);
        }
        "e18" => {
            e18_store::run(scale);
        }
        "e19" => {
            e19_ranking::run(scale);
        }
        "e20" => {
            e20_slo::run(scale);
        }
        "e21" => {
            e21_sharding::run(scale);
        }
        "e22" => {
            e22_arena::run(scale);
        }
        "e23" => {
            e23_p2p::run(scale);
        }
        _ => return false,
    }
    true
}

/// All experiment ids in order.
pub const ALL: [&str; 23] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14",
    "e15", "e16", "e17", "e18", "e19", "e20", "e21", "e22", "e23",
];

/// Prints a section header.
pub(crate) fn header(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}
