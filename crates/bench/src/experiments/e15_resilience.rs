//! **E15 — Resilience under fault injection** (§2, robustness of the
//! data-centric environment): sweep the transient-fault rate of the
//! decentralized web and measure how gracefully the pipeline degrades.
//!
//! The same community is published once; each row crawls it through a
//! [`FaultyWeb`] at a different fault rate (fixed seed), assembles whatever
//! subset was reachable, and runs recommendations for a fixed panel of
//! users. Quality is measured as the fraction of panel users who still get
//! a non-empty list and as the top-10 overlap against the zero-fault
//! baseline — the claim is smooth degradation, never a cliff.

use std::collections::BTreeSet;

use semrec_core::{Recommender, RecommenderConfig};
use semrec_datagen::community::generate_community;
use semrec_eval::table::{fmt, Table};
use semrec_web::crawler::{assemble_community, crawl_resilient, CrawlConfig};
use semrec_web::fault::{FaultPlan, FaultyWeb};
use semrec_web::policy::FetchPolicy;
use semrec_web::publish::publish_community;
use semrec_web::store::DocumentWeb;

use crate::Scale;

/// One fault-rate row of the sweep.
#[derive(Clone, Debug)]
pub struct Row {
    /// Transient fault rate injected per fetch attempt.
    pub fault_rate: f64,
    /// Agents the crawl still discovered.
    pub agents: usize,
    /// Fraction of attempted documents that arrived intact.
    pub coverage: f64,
    /// Retry attempts spent.
    pub retries: u64,
    /// URIs abandoned after exhausting their budget.
    pub gave_up: usize,
    /// Times a circuit breaker opened.
    pub breaker_opens: u64,
    /// Fraction of panel users with a non-empty recommendation list.
    pub served: f64,
    /// Mean top-10 Jaccard overlap with the zero-fault baseline (users
    /// served in both runs).
    pub overlap: f64,
    /// Whether the run was flagged degraded.
    pub degraded: bool,
}

/// Measured rows for shape assertions.
pub struct Outcome {
    /// One row per swept fault rate, in sweep order.
    pub rows: Vec<Row>,
}

const RATES: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.5, 0.7];

/// Runs E15.
pub fn run(scale: Scale) -> Outcome {
    super::header("E15", "Graceful degradation under fault injection (§2 — robustness)");
    let community = generate_community(&scale.community(1515)).community;
    let web = DocumentWeb::new();
    publish_community(&community, &web);

    // Fixed user panel and single seed agent, shared by every rate.
    let mut uris: Vec<String> =
        community.agents().map(|a| community.agent(a).unwrap().uri.clone()).collect();
    uris.sort();
    let crawl_seed = vec![uris[0].clone()];
    let panel: Vec<&String> = uris.iter().take(20).collect();
    println!(
        "{} agents published once; each row crawls from one seed through a FaultyWeb\n\
         (retry policy: {} attempts, exponential backoff) and recommends for a fixed\n\
         panel of {} users\n",
        community.agent_count(),
        FetchPolicy::default().max_attempts,
        panel.len()
    );

    let mut table = Table::new([
        "fault rate",
        "agents",
        "coverage",
        "retries",
        "gave up",
        "breakers",
        "users served",
        "overlap vs 0%",
        "degraded",
    ]);
    let mut rows: Vec<Row> = Vec::new();
    let mut baseline: Vec<Option<BTreeSet<String>>> = Vec::new();
    for rate in RATES {
        let faulty = FaultyWeb::new(&web, FaultPlan::transient(rate, 15));
        let (result, breaker) =
            crawl_resilient(&faulty, &crawl_seed, &CrawlConfig::default(), &FetchPolicy::default());
        let health = result.health();
        let (rebuilt, _) = assemble_community(
            &result.agents,
            community.taxonomy.clone(),
            community.catalog.clone(),
        );
        let engine = Recommender::new(rebuilt, RecommenderConfig::default())
            .with_source_health(health);

        // Top-10 per panel user (identifier sets; ids are not stable across
        // differently-assembled communities, identifiers are).
        let recs: Vec<Option<BTreeSet<String>>> = panel
            .iter()
            .map(|uri| {
                let target = engine.community().agent_by_uri(uri)?;
                let list = engine.recommend(target, 10).ok()?;
                if list.is_empty() {
                    return None;
                }
                Some(
                    list.iter()
                        .map(|r| {
                            engine.community().catalog.product(r.product).identifier.clone()
                        })
                        .collect(),
                )
            })
            .collect();
        if baseline.is_empty() {
            baseline = recs.clone();
        }
        let served = recs.iter().filter(|r| r.is_some()).count() as f64 / panel.len() as f64;
        let overlaps: Vec<f64> = recs
            .iter()
            .zip(&baseline)
            .filter_map(|(now, base)| Some(jaccard(now.as_ref()?, base.as_ref()?)))
            .collect();
        let overlap = if overlaps.is_empty() {
            0.0
        } else {
            overlaps.iter().sum::<f64>() / overlaps.len() as f64
        };

        let row = Row {
            fault_rate: rate,
            agents: result.agents.len(),
            coverage: health.coverage(),
            retries: result.retries,
            gave_up: result.gave_up,
            breaker_opens: breaker.times_opened(),
            served,
            overlap,
            degraded: health.is_degraded(),
        };
        table.row([
            format!("{:.0}%", rate * 100.0),
            row.agents.to_string(),
            fmt(row.coverage),
            row.retries.to_string(),
            row.gave_up.to_string(),
            row.breaker_opens.to_string(),
            fmt(row.served),
            fmt(row.overlap),
            if row.degraded { "yes".into() } else { "no".into() },
        ]);
        rows.push(row);
    }
    println!("{}", table.render());
    println!("Coverage and overlap shrink smoothly as the web gets flakier; retries absorb");
    println!("moderate fault rates almost entirely, and even past 50% the engine keeps");
    println!("serving the users it can still see — flagged degraded, never failing.");

    Outcome { rows }
}

fn jaccard(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    a.intersection(b).count() as f64 / a.union(b).count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_is_smooth_and_honestly_flagged() {
        let o = run(Scale::Small);
        let zero = &o.rows[0];
        // The zero-fault row is the healthy baseline: full coverage, perfect
        // self-overlap, no resilience machinery engaged.
        assert!(!zero.degraded);
        assert_eq!(zero.coverage, 1.0);
        assert_eq!(zero.retries, 0);
        assert_eq!(zero.gave_up, 0);
        assert!((zero.overlap - 1.0).abs() < 1e-12);
        assert!(zero.served > 0.0);

        // Moderate fault rates are absorbed by retries: still degraded-free
        // or nearly so, with visible retry work.
        let moderate = o.rows.iter().find(|r| r.fault_rate == 0.3).unwrap();
        assert!(moderate.retries > 0, "a 30% fault rate must cost retries");
        assert!(moderate.served > 0.0, "the pipeline must keep serving users");

        // Heavy fault rates lose coverage but never crash: every row
        // produced an answer, and losses are flagged.
        let heavy = o.rows.last().unwrap();
        assert!(heavy.coverage <= zero.coverage);
        for row in &o.rows[1..] {
            assert!(
                row.degraded || (row.gave_up == 0 && row.coverage == 1.0),
                "losses must be flagged: {row:?}"
            );
        }
    }
}
