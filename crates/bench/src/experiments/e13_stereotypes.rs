//! **E13 — Automated stereotype generation** (§6 future work): cluster the
//! community's taxonomy profiles into stereotypes, report their separation,
//! and use them for cold-start recommendation — a new user with a single
//! visible rating is assigned a stereotype and receives the products popular
//! *within* it, compared against global popularity.

use semrec_core::{Community, ProfileStore};
use semrec_datagen::community::generate_community;
use semrec_eval::table::{fmt, Table};
use semrec_eval::{leave_n_out, precision_recall, SplitConfig};
use semrec_profiles::generation::{generate_profile, ProfileParams};
use semrec_profiles::stereotypes::{cluster, separation, StereotypeModel};
use semrec_profiles::ProfileVector;
use semrec_taxonomy::ProductId;
use semrec_trust::AgentId;

use crate::Scale;

/// Measured values for shape assertions.
pub struct Outcome {
    /// `(k, intra-cluster sim, inter-cluster sim)` rows.
    pub separation: Vec<(usize, f64, f64)>,
    /// `(visible ratings, stereotype recall, blended recall, global recall)`.
    pub cold_start: Vec<(usize, f64, f64, f64)>,
}

/// Runs E13.
pub fn run(scale: Scale) -> Outcome {
    super::header("E13", "Stereotype generation and cold-start behavior modelling (§6)");
    let (max_users, ks, cold_k) = match scale {
        Scale::Small => (60, [4usize, 8, 16], 16),
        Scale::Medium => (150, [8, 16, 32], 32),
        Scale::Paper => (300, [16, 32, 64], 64),
    };
    let community = generate_community(&scale.community(1313)).community;
    let store = ProfileStore::build(&community, &ProfileParams::default());
    // Shallow topics (⊤ and depth ≤ 1) carry mass in *every* profile — the
    // stop-words of the topic space. Stripping them before clustering makes
    // the stereotypes reflect actual interest areas.
    let strip = |v: semrec_profiles::ProfileView<'_>| -> ProfileVector {
        v.iter()
            .filter(|&(t, _)| community.taxonomy.depth(t) >= 2)
            .collect()
    };
    let profiles: Vec<ProfileVector> =
        community.agents().map(|a| strip(store.profile(a))).collect();

    // (a) clustering quality vs k.
    println!("(a) Stereotype separation (spherical k-means over taxonomy profiles):");
    let mut table = Table::new(["k", "iterations", "intra-cluster sim", "inter-cluster sim", "ratio"]);
    let mut sep_rows = Vec::new();
    let mut best: Option<StereotypeModel> = None;
    // The separation diagnostic is O(n²) pairwise; a strided sample keeps it
    // tractable at paper scale without biasing the estimate.
    let stride = (profiles.len() / 1500).max(1);
    let sample: Vec<ProfileVector> = profiles.iter().step_by(stride).cloned().collect();
    for k in ks {
        let model = cluster(&profiles, k, 50);
        let sample_model = semrec_profiles::stereotypes::StereotypeModel {
            centroids: model.centroids.clone(),
            assignment: model.assignment.iter().copied().step_by(stride).collect(),
            iterations: model.iterations,
        };
        let (intra, inter) = separation(&sample, &sample_model);
        table.row([
            k.to_string(),
            model.iterations.to_string(),
            fmt(intra),
            fmt(inter),
            fmt(intra / inter.max(f64::EPSILON)),
        ]);
        sep_rows.push((k, intra, inter));
        if k == cold_k {
            best = Some(model);
        }
    }
    println!("{}", table.render());
    let model = best.expect("cold-start model fitted");

    // (b) cold start: users reduced to 1 visible rating.
    let split = leave_n_out(
        &community,
        &SplitConfig { hold_out: 3, min_remaining: 1, max_users, seed: 13 },
    );
    // Popularity tables computed on the training split only, so evaluated
    // users' hidden items never leak into either strategy.
    let global_pop = popularity(&split.train, split.train.agents());
    let mut per_cluster: Vec<Vec<(ProductId, f64)>> = Vec::new();
    for c in 0..model.len() {
        let members: Vec<AgentId> =
            model.members(c).into_iter().map(AgentId::from_index).collect();
        per_cluster.push(popularity(&split.train, members.into_iter()));
    }

    let mut table = Table::new([
        "visible ratings",
        "users",
        "stereotype popularity",
        "blended (stereotype + global)",
        "global popularity",
    ]);
    let mut cold_start = Vec::new();
    for visible_count in [1usize, 3, 5] {
        let (mut st, mut bl, mut gl, mut evaluated) = (0.0, 0.0, 0.0, 0usize);
        for (agent, hidden) in &split.held_out {
            let visible: Vec<_> = split
                .train
                .ratings_of(*agent)
                .iter()
                .copied()
                .take(visible_count)
                .collect();
            if visible.is_empty() {
                continue;
            }
            let cold_profile = strip(
                generate_profile(
                    &community.taxonomy,
                    &community.catalog,
                    &visible,
                    &ProfileParams::default(),
                )
                .as_view(),
            );
            let rated: Vec<ProductId> = visible.iter().map(|&(p, _)| p).collect();
            let top = |pop: &[(ProductId, f64)]| -> Vec<ProductId> {
                pop.iter().map(|&(p, _)| p).filter(|p| !rated.contains(p)).take(10).collect()
            };
            // Blended: cluster popularity rescored with a global prior —
            // the backoff a production cold-start system would use.
            let blend = |cluster_pop: &[(ProductId, f64)]| -> Vec<(ProductId, f64)> {
                let global_rank: std::collections::HashMap<ProductId, usize> =
                    global_pop.iter().enumerate().map(|(i, &(p, _))| (p, i)).collect();
                let mut scored: Vec<(ProductId, f64)> = cluster_pop
                    .iter()
                    .map(|&(p, s)| {
                        let prior = global_rank
                            .get(&p)
                            .map_or(0.0, |&r| 1.0 / (1.0 + r as f64).sqrt());
                        (p, s * prior)
                    })
                    .collect();
                scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
                scored
            };
            let (stereotype_list, blended_list) = match model.assign(&cold_profile) {
                Some(c) if !per_cluster[c].is_empty() => {
                    (top(&per_cluster[c]), top(&blend(&per_cluster[c])))
                }
                _ => (top(&global_pop), top(&global_pop)),
            };
            let global_list = top(&global_pop);
            st += precision_recall(&stereotype_list, hidden).recall;
            bl += precision_recall(&blended_list, hidden).recall;
            gl += precision_recall(&global_list, hidden).recall;
            evaluated += 1;
        }
        let n = evaluated.max(1) as f64;
        table.row([
            visible_count.to_string(),
            evaluated.to_string(),
            fmt(st / n),
            fmt(bl / n),
            fmt(gl / n),
        ]);
        cold_start.push((visible_count, st / n, bl / n, gl / n));
    }
    println!("(b) Cold start (k = {cold_k} stereotypes, 3 hidden items per user):");
    println!("{}", table.render());
    println!("Finding: under Zipf-heavy demand, global popularity is a strong cold-start");
    println!("baseline; stereotype targeting closes the gap monotonically as visible");
    println!("evidence grows (the global-prior blend helps most when only one rating is");
    println!("visible and the assignment is noisiest). The stereotypes themselves");
    println!("separate cleanly — part (a) — which is the behavior-compression property");
    println!("§6 is after.");

    Outcome { separation: sep_rows, cold_start }
}

/// Products ranked by positive-rating popularity among the given agents.
fn popularity(
    community: &Community,
    agents: impl Iterator<Item = AgentId>,
) -> Vec<(ProductId, f64)> {
    let mut scores: std::collections::HashMap<ProductId, f64> = std::collections::HashMap::new();
    for agent in agents {
        for &(p, r) in community.ratings_of(agent) {
            if r > 0.0 {
                *scores.entry(p).or_insert(0.0) += r;
            }
        }
    }
    let mut ranked: Vec<(ProductId, f64)> = scores.into_iter().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stereotypes_separate_and_help_cold_start() {
        let o = run(Scale::Small);
        for &(k, intra, inter) in &o.separation {
            assert!(intra > inter, "k={k}: intra {intra} must exceed inter {inter}");
        }
        // Stereotype recall improves monotonically with visible evidence …
        for w in o.cold_start.windows(2) {
            assert!(w[1].1 >= w[0].1 - 0.01,
                "stereotype recall must not degrade with evidence: {:?}", o.cold_start);
        }
        // … and ends up within striking distance of the popularity baseline.
        let last = o.cold_start.last().unwrap();
        assert!(last.1 > 0.5 * last.3,
            "stereotype ({}) must be comparable to global ({})", last.1, last.3);
        // The blend helps exactly where it should: at one visible rating.
        let first = o.cold_start.first().unwrap();
        assert!(first.2 >= first.1 - 0.01,
            "blend must not hurt the noisiest case: {:?}", first);
    }
}
