//! **E23 — Peer-to-peer gossip neighborhood formation** (§2, the
//! decentralized deployment ROADMAP item 4 asks for): every agent runs its
//! own node — a bounded local crawl plus deterministic push/pull gossip —
//! and we measure how fast the swarm's neighborhoods converge on what a
//! centralized crawl of the same world would compute.
//!
//! Three sub-runs over one published community:
//!
//! 1. **Fault-free convergence** — overlap@10 and Spearman ρ against the
//!    centralized baseline after every gossip round, plus message and
//!    bandwidth counters. The claim: overlap rises monotonically with
//!    rounds and crosses 0.9 well within the round budget.
//! 2. **30% fault plan** — the same swarm under 30% transient
//!    unavailability with 10% of peers permanently dead: convergence slows
//!    and plateaus below the fault-free curve (dead peers take knowledge
//!    with them), but degrades smoothly — no collapse — while circuit
//!    breakers quarantine the dead.
//! 3. **Fan-out sweep** — the bandwidth/latency trade: more partners per
//!    round buys faster convergence for proportionally more messages.

use semrec_datagen::community::generate_community;
use semrec_eval::table::{fmt, Table};
use semrec_p2p::{centralized_baseline, Baseline, GossipConfig, P2pSimulation};
use semrec_web::fault::FaultPlan;
use semrec_web::policy::FetchPolicy;
use semrec_web::publish::publish_community;
use semrec_web::store::DocumentWeb;

use crate::Scale;

/// One measured gossip round.
#[derive(Clone, Debug)]
pub struct Row {
    /// Rounds executed so far (0 = right after the bootstrap crawls).
    pub round: u32,
    /// Mean overlap@10 with the centralized neighborhoods.
    pub overlap: f64,
    /// Mean Spearman rank correlation with the centralized neighborhoods.
    pub rho: f64,
    /// Mean agent records known per measured peer.
    pub known: f64,
    /// Cumulative messages dispatched.
    pub messages: u64,
    /// Cumulative payload kilobytes delivered.
    pub kbytes: u64,
}

/// One fan-out sweep row.
#[derive(Clone, Debug)]
pub struct FanoutRow {
    /// Partners contacted per peer per round.
    pub fanout: usize,
    /// Mean overlap@10 after the (shorter) round budget.
    pub overlap: f64,
    /// Messages dispatched in total.
    pub messages: u64,
}

/// Measured rows for shape assertions.
pub struct Outcome {
    /// Per-round convergence on the fault-free world.
    pub fault_free: Vec<Row>,
    /// Per-round convergence under the 30% fault plan.
    pub faulty: Vec<Row>,
    /// Final overlap per swept fan-out (fault-free, fixed rounds).
    pub fanout: Vec<FanoutRow>,
    /// Gossip-phase breaker opens in the faulty sub-run.
    pub breaker_opens_faulty: u64,
    /// Permanently dead peers in the faulty sub-run.
    pub dead_peers: usize,
}

const ROUNDS: u32 = 12;
const SWEEP_ROUNDS: u32 = 6;
const K: usize = 10;

/// Runs E23.
pub fn run(scale: Scale) -> Outcome {
    super::header("E23", "P2P gossip neighborhood formation (§2 — decentralized deployment)");
    let community = generate_community(&scale.community(2323)).community;
    let web = DocumentWeb::new();
    publish_community(&community, &web);

    let mut uris: Vec<String> =
        community.agents().map(|a| community.agent(a).unwrap().uri.clone()).collect();
    uris.sort();
    let step = (uris.len() / 48).max(1);
    let panel: Vec<String> = uris.iter().step_by(step).cloned().collect();

    // Tighten the breaker relative to the library default: with the
    // threshold at the crawl's attempt budget, a dead trustee's failed
    // bootstrap crawl opens its breaker right away, and the shorter
    // cooldown lets gossip-phase half-open probes fail (and re-open it)
    // well inside the round budget.
    let policy =
        FetchPolicy { breaker_threshold: 4, breaker_cooldown: 64, ..FetchPolicy::default() };
    let config = GossipConfig { seed: 23, policy, ..GossipConfig::default() };
    let baseline = centralized_baseline(&community, &config.neighborhood, &panel, K);
    println!(
        "{} peers (one node per agent), bounded local crawl range {}, fan-out {},\n\
         message cap {} records, measured panel of {} peers against the centralized\n\
         top-{} neighborhoods\n",
        uris.len(),
        config.crawl_range,
        config.fanout,
        config.max_records,
        panel.len(),
        K,
    );

    // Sub-run 1: fault-free convergence.
    println!("--- fault-free world ---");
    let (fault_free, _) = converge(&web, &uris, FaultPlan::none(), config, &baseline, ROUNDS);

    // Sub-run 2: the 30% fault plan (plus 10% dead peers).
    println!("--- 30% transient faults, 10% dead peers ---");
    let plan = FaultPlan { transient_rate: 0.3, dead_rate: 0.1, seed: 2323, ..FaultPlan::none() };
    let (faulty, faulty_sim) = converge(&web, &uris, plan, config, &baseline, ROUNDS);
    let breaker_opens_faulty = faulty_sim.stats().breaker_opens;
    let dead_peers = faulty_sim.peers().iter().filter(|p| p.is_dead()).count();
    println!(
        "{} dead peers; {} exchanges failed, {} suppressed by open breakers, {} gossip-phase breaker opens\n",
        dead_peers,
        faulty_sim.stats().messages_failed,
        faulty_sim.stats().messages_suppressed,
        breaker_opens_faulty,
    );

    // Sub-run 3: fan-out sweep on the fault-free world.
    println!("--- fan-out sweep (fault-free, {SWEEP_ROUNDS} rounds) ---");
    let mut sweep_table = Table::new(["fan-out", "overlap@10", "messages", "kB sent"]);
    let mut fanout_rows = Vec::new();
    for fanout in [1usize, 2, 4, 6] {
        let mut sim = P2pSimulation::bootstrap(
            &web,
            &uris,
            FaultPlan::none(),
            GossipConfig { fanout, ..config },
        );
        sim.run(SWEEP_ROUNDS);
        let c = sim.convergence(&baseline);
        let stats = sim.stats();
        sweep_table.row([
            fanout.to_string(),
            fmt(c.mean_overlap),
            stats.messages_sent.to_string(),
            (stats.bytes_sent / 1024).to_string(),
        ]);
        fanout_rows.push(FanoutRow {
            fanout,
            overlap: c.mean_overlap,
            messages: stats.messages_sent,
        });
    }
    println!("{}", sweep_table.render());

    println!("Gossip floods knowledge along trust edges, so the records that matter for a");
    println!("peer's own neighborhood arrive first: overlap@10 climbs monotonically and");
    println!("crosses 0.9 within a few rounds at fan-out 3. Under the 30% fault plan the");
    println!("same curve flattens — dead peers never answer and breakers quarantine them —");
    println!("but it degrades smoothly instead of collapsing. Fan-out trades bandwidth for");
    println!("convergence speed almost linearly.");

    Outcome { fault_free, faulty, fanout: fanout_rows, breaker_opens_faulty, dead_peers }
}

/// Boots a swarm, gossips `rounds` rounds, and measures after each.
fn converge(
    web: &DocumentWeb,
    uris: &[String],
    plan: FaultPlan,
    config: GossipConfig,
    baseline: &Baseline,
    rounds: u32,
) -> (Vec<Row>, P2pSimulation) {
    let mut sim = P2pSimulation::bootstrap(web, uris, plan, config);
    let mut table =
        Table::new(["round", "overlap@10", "rank corr", "known/peer", "messages", "kB sent"]);
    let mut rows = Vec::new();
    for round in 0..=rounds {
        if round > 0 {
            sim.step();
        }
        let c = sim.convergence(baseline);
        let stats = sim.stats();
        let row = Row {
            round,
            overlap: c.mean_overlap,
            rho: c.mean_rho,
            known: c.mean_known,
            messages: stats.messages_sent,
            kbytes: stats.bytes_sent / 1024,
        };
        table.row([
            row.round.to_string(),
            fmt(row.overlap),
            fmt(row.rho),
            format!("{:.1}", row.known),
            row.messages.to_string(),
            row.kbytes.to_string(),
        ]);
        rows.push(row);
    }
    println!("{}", table.render());
    (rows, sim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gossip_converges_monotonically_and_degrades_smoothly() {
        let o = run(Scale::Small);

        // Fault-free: overlap@10 rises monotonically with rounds, improves
        // on the bootstrap crawl alone, and crosses 0.9 in the budget.
        let ff = &o.fault_free;
        assert_eq!(ff.len(), ROUNDS as usize + 1);
        for pair in ff.windows(2) {
            assert!(
                pair[1].overlap >= pair[0].overlap - 1e-12,
                "overlap regressed between rounds {} and {}: {} -> {}",
                pair[0].round,
                pair[1].round,
                pair[0].overlap,
                pair[1].overlap
            );
            assert!(pair[1].messages > pair[0].messages, "every round must send messages");
        }
        assert!(ff.last().unwrap().overlap >= 0.9, "fault-free swarm must reach 0.9");
        assert!(ff.last().unwrap().overlap > ff[0].overlap, "gossip must beat crawl-only");
        assert!(ff.last().unwrap().rho > ff[0].rho, "rank correlation must improve too");

        // Faulty: degraded relative to fault-free but nowhere near collapse,
        // with breakers actually engaging against the dead peers.
        let faulty_final = o.faulty.last().unwrap();
        let ff_final = ff.last().unwrap();
        assert!(o.dead_peers > 0, "a 10% dead rate must kill someone");
        assert!(faulty_final.overlap <= ff_final.overlap + 1e-12);
        assert!(
            faulty_final.overlap >= 0.5,
            "a 30% fault plan must degrade smoothly, not collapse: {}",
            faulty_final.overlap
        );
        assert!(faulty_final.overlap > o.faulty[0].overlap, "gossip still helps under faults");
        assert!(o.breaker_opens_faulty > 0, "breakers must open against dead peers");

        // Fan-out: more partners, more messages, at least as much coverage.
        let first = o.fanout.first().unwrap();
        let last = o.fanout.last().unwrap();
        assert!(last.messages > first.messages);
        assert!(last.overlap >= first.overlap - 1e-12);
    }
}
