//! **E19 — Spreading-activation rank synthesization** (§5's future-work
//! gap): how does blending accumulated activation and structural centrality
//! into the final rank change *what* gets recommended?
//!
//! Sweeps [`BlendWeights`] from similarity-only to activation-only and
//! centrality-only, measuring for each blend the top-10 overlap with the
//! [`semrec_core::SimilarityRanker`] baseline (how much the ranking actually
//! moved) and
//! catalog coverage (how much of the product space the recommendations
//! reach).

use std::collections::BTreeSet;
use std::sync::Arc;

use semrec_core::{
    BlendWeights, Recommender, RecommenderConfig, SpreadingActivationRanker, SpreadingParams,
};
use semrec_datagen::community::generate_community;
use semrec_eval::table::{fmt, Table};

use crate::Scale;

/// The swept blends: `(label, weights)`.
fn blends() -> Vec<(&'static str, BlendWeights)> {
    vec![
        ("similarity only (1/0/0)", BlendWeights::SIMILARITY_ONLY),
        ("sim-heavy (0.7/0.2/0.1)", BlendWeights { similarity: 0.7, activation: 0.2, centrality: 0.1 }),
        ("default (0.5/0.3/0.2)", BlendWeights::default()),
        ("activation-heavy (0.3/0.5/0.2)", BlendWeights { similarity: 0.3, activation: 0.5, centrality: 0.2 }),
        ("activation only (0/1/0)", BlendWeights { similarity: 0.0, activation: 1.0, centrality: 0.0 }),
        ("centrality only (0/0/1)", BlendWeights { similarity: 0.0, activation: 0.0, centrality: 1.0 }),
    ]
}

/// Measured rows for shape assertions.
pub struct Outcome {
    /// `(blend label, mean top-10 overlap vs similarity baseline, coverage)`.
    pub rows: Vec<(String, f64, f64)>,
}

/// Runs E19.
pub fn run(scale: Scale) -> Outcome {
    super::header("E19", "Spreading-activation ranking: blend-weight sweep (§5 future work)");
    let panel_size = match scale {
        Scale::Small => 40,
        Scale::Medium => 120,
        Scale::Paper => 250,
    };
    let community = generate_community(&scale.community(1919)).community;
    let catalog_size = community.catalog.iter().count();

    // The fixed reference ranking every blend is compared against.
    let baseline = Recommender::new(community.clone(), RecommenderConfig::default());
    let panel: Vec<_> = baseline.community().agents().take(panel_size).collect();
    let reference: Vec<BTreeSet<_>> = panel
        .iter()
        .map(|&a| {
            baseline
                .recommend(a, 10)
                .map(|r| r.into_iter().map(|x| x.product).collect())
                .unwrap_or_default()
        })
        .collect();
    println!("Panel of {} users over a {catalog_size}-product catalog\n", panel.len());

    let mut table = Table::new(["blend (sim/act/cent)", "overlap@10", "coverage", "recs"]);
    let mut rows = Vec::new();
    for (label, blend) in blends() {
        let ranker = SpreadingActivationRanker::new(SpreadingParams {
            blend,
            ..SpreadingParams::default()
        });
        let engine = Recommender::with_ranker(
            community.clone(),
            RecommenderConfig::default(),
            Arc::new(ranker),
        );
        let mut overlap_sum = 0.0;
        let mut compared = 0usize;
        let mut produced = 0usize;
        let mut reached: BTreeSet<_> = BTreeSet::new();
        for (i, &agent) in panel.iter().enumerate() {
            let recs = engine.recommend(agent, 10).unwrap_or_default();
            produced += recs.len();
            let set: BTreeSet<_> = recs.iter().map(|r| r.product).collect();
            reached.extend(set.iter().copied());
            let reference = &reference[i];
            if !reference.is_empty() {
                overlap_sum +=
                    set.intersection(reference).count() as f64 / reference.len() as f64;
                compared += 1;
            }
        }
        let overlap = if compared > 0 { overlap_sum / compared as f64 } else { 0.0 };
        let coverage = reached.len() as f64 / catalog_size as f64;
        table.row([label.to_owned(), fmt(overlap), fmt(coverage), produced.to_string()]);
        rows.push((label.to_owned(), overlap, coverage));
    }
    println!("{}", table.render());
    println!("Overlap@10 = fraction of the SimilarityRanker top 10 the blend retains; the");
    println!("similarity-only row is the golden equivalence check (overlap 1). Activation");
    println!("and centrality shift votes toward well-connected peers, trading overlap for");
    println!("a different slice of the catalog.");

    Outcome { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_the_expected_shape() {
        let o = run(Scale::Small);
        assert_eq!(o.rows.len(), 6);
        let (label, overlap, coverage) = &o.rows[0];
        assert!(label.starts_with("similarity only"));
        assert!(
            (*overlap - 1.0).abs() < 1e-12,
            "similarity-only blend must reproduce the baseline exactly, got {overlap}"
        );
        for (label, overlap, coverage) in &o.rows {
            assert!((0.0..=1.0).contains(overlap), "{label}: overlap {overlap}");
            assert!(*coverage > 0.0, "{label}: coverage {coverage}");
        }
        assert!(*coverage > 0.0);
        // Blending in activation/centrality must actually move the ranking
        // somewhere in the sweep.
        assert!(
            o.rows.iter().any(|(_, overlap, _)| *overlap < 1.0),
            "some blend must diverge from the baseline"
        );
    }
}
