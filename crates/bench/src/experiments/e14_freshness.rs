//! **E14 — Asynchronous message exchange** (§2, interaction facilities):
//! the cost of data-centric communication, quantified.
//!
//! Agents republish homepages as their state drifts; a crawler refreshes on
//! a schedule. Sweeping the refresh interval exposes the freshness ↔ work
//! tradeoff of the environment model the paper commits to: staleness grows
//! with the interval while total parse work stays bounded by the number of
//! actual changes (version-based reuse).

use semrec_datagen::community::generate_community;
use semrec_eval::table::{fmt, Table};
use semrec_web::simulation::{simulate, SimulationConfig};
use semrec_web::store::DocumentWeb;

use crate::Scale;

/// Measured rows for shape assertions.
pub struct Outcome {
    /// `(refresh interval, mean staleness, refreshes, docs re-parsed,
    ///   republications)`.
    pub rows: Vec<(usize, f64, usize, usize, usize)>,
}

/// Runs E14.
pub fn run(scale: Scale) -> Outcome {
    super::header("E14", "Freshness vs crawl frequency (§2 — asynchronous message exchange)");
    let agents = match scale {
        Scale::Small => 100,
        Scale::Medium => 400,
        Scale::Paper => 1000,
    };
    let ticks = 60;
    println!(
        "{agents} agents drifting for {ticks} ticks (5% republish/tick); crawler refreshes \
         every k ticks\n"
    );

    let mut table = Table::new([
        "refresh every k ticks",
        "mean staleness",
        "refreshes",
        "docs re-parsed",
        "republications",
    ]);
    let mut rows = Vec::new();
    for interval in [1usize, 2, 5, 10, 20] {
        let mut config = scale.community(1414);
        config.agents = agents;
        let mut community = generate_community(&config).community;
        let web = DocumentWeb::new();
        let report = simulate(
            &mut community,
            &web,
            &SimulationConfig {
                ticks,
                update_probability: 0.05,
                refresh_interval: interval,
                seed: 14,
                ..Default::default()
            },
        );
        table.row([
            interval.to_string(),
            fmt(report.mean_staleness),
            report.refreshes.to_string(),
            report.documents_reparsed.to_string(),
            report.republications.to_string(),
        ]);
        rows.push((
            interval,
            report.mean_staleness,
            report.refreshes,
            report.documents_reparsed,
            report.republications,
        ));
    }
    println!("{}", table.render());
    println!("Staleness rises with the refresh interval while total parse work stays");
    println!("pinned to the number of actual changes — version-based reuse makes eager");
    println!("refreshing cheap, so the asynchronous environment model costs latency,");
    println!("not throughput.");

    Outcome { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staleness_grows_with_interval_while_parse_work_stays_bounded() {
        let o = run(Scale::Small);
        // Monotone staleness in the interval (allowing tiny noise).
        for w in o.rows.windows(2) {
            assert!(
                w[1].1 >= w[0].1 - 0.01,
                "staleness must not fall with laziness: {:?}",
                o.rows
            );
        }
        let eager = &o.rows[0];
        let lazy = o.rows.last().unwrap();
        assert!(eager.1 < 1e-9, "every-tick refresh keeps staleness at 0");
        assert!(lazy.1 > 0.05, "lazy refresh must be visibly stale");
        // Parse work ≈ number of changes for every policy (reuse works).
        for row in &o.rows {
            assert!(row.3 <= row.4, "re-parses {} must not exceed republications {}", row.3, row.4);
        }
    }
}
