//! **E21 — Sharded universe scaling** (`semrec-shard`): partition a large
//! synthetic community into N shards and measure how rebuild, incremental
//! refresh, and cross-shard serving scale with the shard count.
//!
//! A single machine runs the sweep, so "speed-up" is reported as
//! **critical-path efficiency**: per-shard work is timed individually and
//! the distributed wall-clock is modeled as the slowest shard — what a
//! one-node-per-shard fleet would observe, since shard builds and
//! refreshes are independent between exchange barriers. Efficiency at N
//! shards is `T(1) / (N · max_i T_i(N))`; 1.0 is perfectly linear.
//!
//! Three sweeps per shard count:
//!
//! 1. **Rebuild** — full partition + per-shard model build.
//! 2. **Refresh** — a small rating churn spread across the whole universe;
//!    every shard is dirtied, each rebuilds only itself.
//! 3. **Serve** — a fixed query panel through the cross-shard Appleseed
//!    protocol, counting exchange rounds actually crossed.
//!
//! A final **localized-delta** run at the largest shard count dirties only
//! shard 0 and asserts the partitioning contract of the incremental path:
//! untouched shards recompute **zero** profiles (their `shard.<i>.
//! profiles.recomputed` counters do not move).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use semrec_core::{Community, ModelDelta, RecommenderConfig};
use semrec_datagen::catalog_gen::CatalogGenConfig;
use semrec_datagen::community::{generate_community, CommunityGenConfig};
use semrec_datagen::taxonomy_gen::TaxonomyGenConfig;
use semrec_eval::table::{fmt, Table};
use semrec_shard::{cut_edges, CommunityShardFn, GlobalId, HashShardFn, ShardFn, ShardedModel};

use crate::Scale;

/// Shape summary pinned by tests and asserted by the CI smoke job.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Universe size.
    pub agents: usize,
    /// Critical-path rebuild efficiency at the largest shard count.
    pub rebuild_efficiency: f64,
    /// Critical-path refresh efficiency at the largest shard count.
    pub refresh_efficiency: f64,
    /// Profiles recomputed on untouched shards during the localized-delta
    /// run — the incremental contract demands exactly zero.
    pub untouched_recomputed: u64,
    /// Cross-shard exchange rounds counted during the serve sweep at the
    /// largest shard count (zero would mean the protocol never ran).
    pub exchange_rounds: u64,
}

/// Runs E21 at the given scale.
pub fn run(scale: Scale) -> Summary {
    let agents = match scale {
        Scale::Small => 20_000,
        Scale::Medium => 200_000,
        Scale::Paper => 1_000_000,
    };
    run_with(agents, 200, 13)
}

fn counters() -> BTreeMap<String, u64> {
    semrec_obs::global().snapshot().counters
}

fn counter_delta(before: &BTreeMap<String, u64>, after: &BTreeMap<String, u64>, name: &str) -> u64 {
    after.get(name).copied().unwrap_or(0) - before.get(name).copied().unwrap_or(0)
}

/// A deliberately lightened generator configuration: the point is agent
/// *count*, not rating density — a million sparse agents, not twenty
/// thousand dense ones.
fn gen_config(agents: usize, seed: u64) -> CommunityGenConfig {
    CommunityGenConfig {
        agents,
        taxonomy: TaxonomyGenConfig::book_like(400, seed ^ 0xA1),
        catalog: CatalogGenConfig { products: 800, seed: seed ^ 0xB2, ..Default::default() },
        max_interests: 2,
        mean_ratings: 3.0,
        mean_trust_edges: 4.0,
        ..CommunityGenConfig::small(seed)
    }
}

/// Applies a rating flip to every agent in `targets`, returning the next
/// community and the model delta describing it.
fn churn(community: &Community, targets: &[GlobalId]) -> (Community, ModelDelta) {
    let mut next = community.clone();
    let mut uris = Vec::with_capacity(targets.len());
    for &g in targets {
        let agent = semrec_core::AgentId::from_index(g.index());
        let (product, old) = next
            .ratings_of(agent)
            .first()
            .copied()
            .unwrap_or((semrec_taxonomy::ProductId::from_index(0), 0.0));
        let fresh = if old > 0.0 { -0.4 } else { 0.6 };
        next.set_rating(agent, product, fresh).expect("valid churn rating");
        uris.push(next.agent(agent).expect("dense").uri.clone());
    }
    (next, ModelDelta { ratings_changed: uris, trust_changed: Vec::new() })
}

/// The experiment body, parameterized for tests.
pub fn run_with(agents: usize, queries: usize, seed: u64) -> Summary {
    super::header("E21", "sharded universe: partition, cross-shard Appleseed, per-shard refresh");
    println!("generating {agents} agents (lightened density)…");
    let started = Instant::now();
    let generated = generate_community(&gen_config(agents, seed));
    let community = generated.community;
    println!(
        "generated in {:.1}s: {} agents",
        started.elapsed().as_secs_f64(),
        community.agent_count()
    );

    let config = RecommenderConfig::default();
    let shard_counts = [1usize, 2, 4, 8];
    let max_shards = *shard_counts.last().expect("non-empty sweep");

    // Partition-quality aside: boundary fraction, hash vs community-aware.
    let hash_cut = cut_edges(&community, &HashShardFn.partition(&community, max_shards));
    let community_cut = cut_edges(
        &community,
        &CommunityShardFn::default().partition(&community, max_shards),
    );
    println!(
        "cut fraction at {max_shards} shards: hash {:.3}, community-aware {:.3}",
        hash_cut.0 as f64 / hash_cut.1.max(1) as f64,
        community_cut.0 as f64 / community_cut.1.max(1) as f64,
    );

    let mut table = Table::new([
        "shards",
        "rebuild_total_s",
        "rebuild_cp_s",
        "rebuild_eff",
        "refresh_cp_ms",
        "refresh_eff",
        "recomputed",
        "reused",
        "serve_ms_q",
        "xch_rounds_q",
    ]);

    // Churn panel: 0.2% of agents, strided across the whole universe so
    // every shard is dirtied at every shard count.
    let churn_size = (agents / 500).max(8);
    let spread: Vec<GlobalId> = (0..churn_size)
        .map(|i| GlobalId((i * (agents / churn_size)) as u32))
        .collect();
    let panel: Vec<GlobalId> =
        (0..queries.min(agents)).map(|i| GlobalId((i * (agents / queries.min(agents))) as u32)).collect();

    let mut base_rebuild_cp = 0.0f64;
    let mut base_refresh_cp = 0.0f64;
    let mut rebuild_eff_at_max = 0.0f64;
    let mut refresh_eff_at_max = 0.0f64;
    let mut exchange_at_max = 0u64;

    for &n in &shard_counts {
        let (model, build) =
            ShardedModel::partition(&community, config, Arc::new(HashShardFn), n, 1);
        let rebuild_cp = build.critical_path().as_secs_f64();
        if n == 1 {
            base_rebuild_cp = rebuild_cp;
        }
        let rebuild_eff = base_rebuild_cp / (n as f64 * rebuild_cp).max(f64::MIN_POSITIVE);

        let (next, delta) = churn(&community, &spread);
        let (_, refresh) = model.advance(&next, &delta);
        let refresh_cp = refresh.critical_path().as_secs_f64();
        if n == 1 {
            base_refresh_cp = refresh_cp;
        }
        let refresh_eff = base_refresh_cp / (n as f64 * refresh_cp).max(f64::MIN_POSITIVE);

        let before = counters();
        let serve_started = Instant::now();
        for &target in &panel {
            model.recommend(target, 10).expect("panel target exists");
        }
        let serve_s = serve_started.elapsed().as_secs_f64();
        let after = counters();
        let rounds = counter_delta(&before, &after, "shard.exchange.rounds");
        let runs = counter_delta(&before, &after, "shard.appleseed.runs").max(1);
        if n == max_shards {
            rebuild_eff_at_max = rebuild_eff;
            refresh_eff_at_max = refresh_eff;
            exchange_at_max = rounds;
        }

        table.row([
            n.to_string(),
            fmt(build.total.as_secs_f64()),
            fmt(rebuild_cp),
            fmt(rebuild_eff),
            fmt(refresh_cp * 1e3),
            fmt(refresh_eff),
            refresh.profiles_recomputed.to_string(),
            refresh.profiles_reused.to_string(),
            fmt(serve_s * 1e3 / panel.len() as f64),
            fmt(rounds as f64 / runs as f64),
        ]);
    }
    println!("{}", table.render());

    // Localized delta: dirty only agents hash-routed to shard 0 and prove
    // every other shard's profile work is exactly zero.
    let (model, _) =
        ShardedModel::partition(&community, config, Arc::new(HashShardFn), max_shards, 1);
    let local: Vec<GlobalId> = community
        .agents()
        .filter(|a| {
            let uri = &community.agent(*a).expect("dense").uri;
            HashShardFn.route(uri, max_shards) == 0
        })
        .take(churn_size)
        .map(|a| GlobalId(a.index() as u32))
        .collect();
    let (next, delta) = churn(&community, &local);
    let before = counters();
    let (_, report) = model.advance(&next, &delta);
    let after = counters();
    let untouched: u64 = (1..max_shards)
        .map(|s| counter_delta(&before, &after, &format!("shard.{s}.profiles.recomputed")))
        .sum();
    println!(
        "localized delta ({} agents on shard 0): rebuilt shards {:?}, untouched shards recomputed {} profiles",
        local.len(),
        report.rebuilt,
        untouched
    );
    println!("modeled efficiency is the critical path over per-shard timings — the");
    println!("wall-clock a one-node-per-shard deployment would see (§2's decentralized");
    println!("framing); a single host running all shards in sequence gains nothing.");

    Summary {
        agents: community.agent_count(),
        rebuild_efficiency: rebuild_eff_at_max,
        refresh_efficiency: refresh_eff_at_max,
        untouched_recomputed: untouched,
        exchange_rounds: exchange_at_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds_at_test_scale() {
        let summary = run_with(2_000, 40, 7);
        assert_eq!(summary.agents, 2_000);
        assert_eq!(
            summary.untouched_recomputed, 0,
            "a shard-0-localized delta must not recompute profiles elsewhere"
        );
        assert!(summary.exchange_rounds > 0, "8-shard serving must cross shard boundaries");
        assert!(summary.rebuild_efficiency > 0.0);
        assert!(summary.refresh_efficiency > 0.0);
    }
}
