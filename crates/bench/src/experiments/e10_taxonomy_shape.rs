//! **E10 — Taxonomy structure impact** (§6 future work): "Amazon's taxonomy
//! for DVD classification contains more topics than its book counterpart,
//! though being less deep. We would like to better understand the impact
//! that taxonomy structure may have upon profile generation and similarity
//! computation."
//!
//! Generates the same community over a deep/narrow (book-like) and a
//! broad/shallow (DVD-like) taxonomy and compares profile shape and
//! recommendation quality.

use semrec_core::{ProfileStore, Recommender, RecommenderConfig};
use semrec_datagen::community::generate_community;
use semrec_datagen::taxonomy_gen::TaxonomyGenConfig;
use semrec_eval::baselines::knn_taxonomy_cf;
use semrec_eval::table::{fmt, Table};
use semrec_eval::{evaluate, leave_n_out, SplitConfig};
use semrec_profiles::generation::ProfileParams;
use semrec_taxonomy::stats;

use crate::Scale;

/// Measured rows for shape assertions.
pub struct Outcome {
    /// `(shape, mean leaf depth, mean profile support, taxonomy-CF recall,
    ///   hybrid recall)`.
    pub rows: Vec<(&'static str, f64, f64, f64, f64)>,
}

/// Runs E10.
pub fn run(scale: Scale) -> Outcome {
    super::header("E10", "Taxonomy structure impact (§6 — book-like vs DVD-like)");
    let max_users = match scale {
        Scale::Small => 60,
        Scale::Medium => 120,
        Scale::Paper => 250,
    };

    let mut table = Table::new([
        "taxonomy shape",
        "topics",
        "mean leaf depth",
        "mean profile support",
        "taxonomy-CF recall@10",
        "hybrid recall@10",
    ]);
    let mut rows = Vec::new();

    let base = scale.community(1010);
    for (label, tax_config) in [
        ("book-like (deep, narrow)", TaxonomyGenConfig::book_like(base.taxonomy.topics, 7)),
        ("DVD-like (broad, shallow)", TaxonomyGenConfig::dvd_like(base.taxonomy.topics, 7)),
    ] {
        let mut config = base;
        config.taxonomy = tax_config;
        let community = generate_community(&config).community;
        let shape = stats::stats(&community.taxonomy);

        let profiles = ProfileStore::build(&community, &ProfileParams::default());
        let mean_support: f64 = community
            .agents()
            .map(|a| profiles.profile(a).support() as f64)
            .sum::<f64>()
            / community.agent_count() as f64;

        let split = leave_n_out(
            &community,
            &SplitConfig { hold_out: 3, min_remaining: 3, max_users, seed: 10 },
        );
        let train_profiles = ProfileStore::build(&split.train, &ProfileParams::default());
        let tax_cf = evaluate(&split, |train, agent| {
            knn_taxonomy_cf(train, &train_profiles, agent, 20, 10)
        });
        let engine = Recommender::new(split.train.clone(), RecommenderConfig::default());
        let hybrid = evaluate(&split, |_, agent| {
            engine
                .recommend(agent, 10)
                .map(|r| r.into_iter().map(|x| x.product).collect())
                .unwrap_or_default()
        });

        table.row([
            label.to_string(),
            shape.topics.to_string(),
            fmt(shape.mean_leaf_depth),
            fmt(mean_support),
            fmt(tax_cf.recall),
            fmt(hybrid.recall),
        ]);
        rows.push((label, shape.mean_leaf_depth, mean_support, tax_cf.recall, hybrid.recall));
    }
    println!("{}", table.render());
    println!("Deep (book-like) taxonomies give every rating a long ancestor chain:");
    println!("profiles span far more topics and similarity becomes finer-grained. Broad,");
    println!("shallow (DVD-like) taxonomies concentrate mass in fewer, coarser categories");
    println!("that many products share — which raises leave-n-out recall (hidden items sit");
    println!("in the same coarse buckets as the training items) at the cost of the");
    println!("discriminating power the deep taxonomy offers. This is the concrete form of");
    println!("§6's open question about taxonomy-structure impact.");

    Outcome { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_taxonomies_yield_richer_profiles() {
        let o = run(Scale::Small);
        let book = o.rows.iter().find(|r| r.0.starts_with("book")).unwrap();
        let dvd = o.rows.iter().find(|r| r.0.starts_with("DVD")).unwrap();
        assert!(book.1 > dvd.1, "book taxonomy must be deeper");
        assert!(
            book.2 > dvd.2,
            "deeper taxonomy → larger profile support: {} vs {}",
            book.2,
            dvd.2
        );
        // Both shapes still support recommendation.
        assert!(book.3 >= 0.0 && dvd.3 >= 0.0);
    }
}
