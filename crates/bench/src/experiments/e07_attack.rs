//! **E7 — Security** (§2 research issue): the profile-copy shilling attack.
//!
//! For growing sybil cabals, measures how often the pushed product enters
//! the victim's top-10 under plain product-vector CF versus the
//! trust-filtered hybrid, averaged over several victims.

use semrec_core::{Recommender, RecommenderConfig};
use semrec_datagen::attack::{inject_attack, inject_profile_copy_attack, AttackConfig, AttackStrategy};
use semrec_datagen::community::generate_community;
use semrec_eval::baselines::knn_product_cf;
use semrec_eval::table::{fmt, Table};
use semrec_taxonomy::ProductId;

use crate::Scale;

/// Measured rows for shape assertions.
pub struct Outcome {
    /// `(sybils, plain-CF hit rate, hybrid hit rate)`.
    pub rows: Vec<(usize, f64, f64)>,
    /// Per-strategy comparison at 25 sybils: `(strategy, plain, hybrid)`.
    pub strategies: Vec<(AttackStrategy, f64, f64)>,
}

/// Runs E7.
pub fn run(scale: Scale) -> Outcome {
    super::header("E7", "Profile-copy attack — plain CF vs trust-filtered hybrid (§2)");
    let victims = match scale {
        Scale::Small => 8,
        Scale::Medium => 12,
        Scale::Paper => 20,
    };
    let cabal_sizes = [0usize, 5, 10, 25, 50];

    let base = generate_community(&scale.community(707)).community;
    let mut table =
        Table::new(["sybils", "plain CF: pushed in top-10", "hybrid: pushed in top-10"]);
    let mut rows = Vec::new();

    for &k in &cabal_sizes {
        let mut plain_hits = 0usize;
        let mut hybrid_hits = 0usize;
        for v in 0..victims {
            let mut community = base.clone();
            let victim = community.agents().nth(v * 7).unwrap();
            let pushed: ProductId = community
                .catalog
                .iter()
                .find(|&p| {
                    community.rating(victim, p).is_none()
                        && community.agents().all(|a| community.rating(a, p).is_none())
                })
                .expect("an unrated product exists");
            if k > 0 {
                inject_profile_copy_attack(
                    &mut community,
                    &AttackConfig {
                        sybils: k,
                        pushed_product: pushed,
                        victim,
                        build_clique: true,
                        seed: v as u64,
                    },
                );
            }
            if knn_product_cf(&community, victim, 20, 10).contains(&pushed) {
                plain_hits += 1;
            }
            let engine = Recommender::new(community, RecommenderConfig::default());
            if engine.recommend(victim, 10).unwrap().iter().any(|r| r.product == pushed) {
                hybrid_hits += 1;
            }
        }
        let rate = |h: usize| h as f64 / victims as f64;
        table.row([k.to_string(), fmt(rate(plain_hits)), fmt(rate(hybrid_hits))]);
        rows.push((k, rate(plain_hits), rate(hybrid_hits)));
    }
    println!("{}", table.render());
    println!("Sybils copying the victim's profile become its nearest CF neighbors and push");
    println!("their product straight into the top-10; the trust neighborhood never admits");
    println!("them, so the hybrid's hit rate stays at the no-attack floor (Marsh, ref [8]:");
    println!("trust makes agents \"less vulnerable to others\").\n");

    // Shilling-attack taxonomy comparison at a fixed cabal size.
    println!("Attack strategy comparison (25 sybils):");
    let mut table = Table::new(["strategy", "plain CF hit rate", "hybrid hit rate"]);
    let mut strategies = Vec::new();
    for strategy in
        [AttackStrategy::ProfileCopy, AttackStrategy::Bandwagon, AttackStrategy::Random]
    {
        let mut plain_hits = 0usize;
        let mut hybrid_hits = 0usize;
        for v in 0..victims {
            let mut community = base.clone();
            let victim = community.agents().nth(v * 7).unwrap();
            let pushed: ProductId = community
                .catalog
                .iter()
                .find(|&p| {
                    community.rating(victim, p).is_none()
                        && community.agents().all(|a| community.rating(a, p).is_none())
                })
                .expect("an unrated product exists");
            inject_attack(
                &mut community,
                &AttackConfig {
                    sybils: 25,
                    pushed_product: pushed,
                    victim,
                    build_clique: true,
                    seed: v as u64,
                },
                strategy,
            );
            if knn_product_cf(&community, victim, 20, 10).contains(&pushed) {
                plain_hits += 1;
            }
            let engine = Recommender::new(community, RecommenderConfig::default());
            if engine.recommend(victim, 10).unwrap().iter().any(|r| r.product == pushed) {
                hybrid_hits += 1;
            }
        }
        let rate = |h: usize| h as f64 / victims as f64;
        table.row([format!("{strategy:?}"), fmt(rate(plain_hits)), fmt(rate(hybrid_hits))]);
        strategies.push((strategy, rate(plain_hits), rate(hybrid_hits)));
    }
    println!("{}", table.render());
    println!("Profile-copy is the strongest targeted attack (guaranteed maximal similarity");
    println!("to the victim); bandwagon trades targeting for breadth; random is weakest.");
    println!("The trust-filtered hybrid is immune to all three: cover profiles buy");
    println!("similarity, never trust.");

    Outcome { rows, strategies }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trust_filtering_suppresses_the_attack() {
        let o = run(Scale::Small);
        let no_attack = o.rows.iter().find(|r| r.0 == 0).unwrap();
        let big_attack = o.rows.iter().find(|r| r.0 == 50).unwrap();
        assert_eq!(no_attack.1, 0.0, "obscure product can't appear without the attack");
        assert!(big_attack.1 >= 0.9, "plain CF must be dominated: {}", big_attack.1);
        assert!(big_attack.2 <= no_attack.2 + 1e-9, "hybrid must stay at the floor");

        // Strategy ordering: copy ≥ bandwagon ≥ random against plain CF;
        // the hybrid shrugs all of them off.
        let by = |s: AttackStrategy| o.strategies.iter().find(|r| r.0 == s).unwrap();
        let copy = by(AttackStrategy::ProfileCopy);
        let bandwagon = by(AttackStrategy::Bandwagon);
        let random = by(AttackStrategy::Random);
        assert!(copy.1 >= bandwagon.1, "copy {} vs bandwagon {}", copy.1, bandwagon.1);
        assert!(bandwagon.1 >= random.1, "bandwagon {} vs random {}", bandwagon.1, random.1);
        for row in &o.strategies {
            assert!(row.2 <= no_attack.2 + 1e-9, "{:?} must not breach the hybrid", row.0);
        }
    }
}
