//! **E11 — Appleseed vs Advogato** (§3.2): the paper chose Appleseed over
//! "the most important and most well-known local group trust metric"
//! because Advogato "can only make boolean decisions". This experiment
//! quantifies the comparison: agreement between Advogato's accepted set and
//! Appleseed's top-k, plus both metrics' resistance to a sybil cabal.

use semrec_datagen::community::generate_community;
use semrec_eval::table::{fmt, Table};
use semrec_trust::advogato::{advogato, AdvogatoParams};
use semrec_trust::appleseed::{appleseed, AppleseedParams};
use semrec_trust::TrustGraph;

use crate::Scale;

/// Measured values for shape assertions.
pub struct Outcome {
    /// `(group size, |accepted|, overlap with appleseed top-k)` rows.
    pub agreement: Vec<(usize, usize, f64)>,
    /// Fraction of sybils certified by Advogato / ranked in Appleseed top-k.
    pub sybil_advogato: f64,
    /// Same for Appleseed.
    pub sybil_appleseed: f64,
}

/// Runs E11.
pub fn run(scale: Scale) -> Outcome {
    super::header("E11", "Appleseed vs Advogato — agreement and attack resistance (§3.2)");
    let community = generate_community(&scale.community(1111)).community;
    let graph = &community.trust;
    let source = community.agents().next().unwrap();

    // (a) agreement between the boolean and the continuous metric.
    println!("(a) Accepted-set vs top-k agreement (same seed {source}):");
    let apple = appleseed(graph, source, &AppleseedParams::default()).unwrap();
    let mut agreement = Vec::new();
    let mut table = Table::new(["target group", "advogato accepted", "∩ appleseed top-k", "overlap"]);
    for group in [10usize, 25, 50] {
        let adv = advogato(
            graph,
            source,
            &AdvogatoParams { target_group_size: group, ..Default::default() },
        )
        .unwrap();
        let k = adv.accepted.len();
        let top: Vec<_> = apple.top(k).iter().map(|&(a, _)| a).collect();
        let shared = top.iter().filter(|a| adv.is_accepted(**a)).count();
        let overlap = if k > 0 { shared as f64 / k as f64 } else { 0.0 };
        table.row([group.to_string(), k.to_string(), shared.to_string(), fmt(overlap)]);
        agreement.push((group, k, overlap));
    }
    println!("{}", table.render());

    // (b) sybil resistance: a cabal certified through one cut edge.
    println!("(b) Sybil cabal hanging off a single honest→sybil edge:");
    let mut attacked: TrustGraph = graph.clone();
    let cabal = 40usize;
    let bridgehead = attacked.add_agent();
    // One weakly trusted edge from a peripheral honest agent into the cabal.
    let honest_edge_source = community.agents().nth(5).unwrap();
    attacked.set_trust(honest_edge_source, bridgehead, 0.6).unwrap();
    let mut sybils = vec![bridgehead];
    for _ in 1..cabal {
        let s = attacked.add_agent();
        sybils.push(s);
    }
    for &a in &sybils {
        for &b in &sybils {
            if a != b {
                attacked.set_trust(a, b, 1.0).unwrap();
            }
        }
    }

    let adv = advogato(
        &attacked,
        source,
        &AdvogatoParams { target_group_size: 50, ..Default::default() },
    )
    .unwrap();
    let sybil_certified = sybils.iter().filter(|&&s| adv.is_accepted(s)).count();
    let apple_attacked = appleseed(&attacked, source, &AppleseedParams::default()).unwrap();
    let top50: Vec<_> = apple_attacked.top(50).iter().map(|&(a, _)| a).collect();
    let sybil_ranked = sybils.iter().filter(|s| top50.contains(s)).count();

    let sybil_advogato = sybil_certified as f64 / cabal as f64;
    let sybil_appleseed = sybil_ranked as f64 / cabal as f64;
    println!("  {cabal} sybils, full internal clique, one incoming honest edge (0.6):");
    println!("  advogato certifies  : {sybil_certified}/{cabal} = {}", fmt(sybil_advogato));
    println!("  appleseed top-50 has: {sybil_ranked}/{cabal} = {}", fmt(sybil_appleseed));
    println!("\nBoth metrics bound the cabal by the single cut edge's capacity/energy —");
    println!("the attack-resistance property Levien designed for and Appleseed inherits,");
    println!("but Appleseed additionally grades everyone it does admit.");

    Outcome { agreement, sybil_advogato, sybil_appleseed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_agree_and_resist_sybils() {
        let o = run(Scale::Small);
        // Meaningful agreement between the two metrics on honest data.
        for &(_, k, overlap) in &o.agreement {
            if k >= 10 {
                assert!(overlap > 0.4, "agreement too low: {overlap}");
            }
        }
        // A 40-sybil cabal with one cut edge captures only a small slice.
        assert!(o.sybil_advogato < 0.25, "advogato: {}", o.sybil_advogato);
        assert!(o.sybil_appleseed < 0.25, "appleseed: {}", o.sybil_appleseed);
    }
}
