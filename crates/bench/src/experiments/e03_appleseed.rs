//! **E3 — Appleseed behaviour** (ref \[12\]'s evaluation): convergence as a
//! function of the threshold `T_c`, and rank distribution as a function of
//! the spreading factor `d`.

use semrec_datagen::community::generate_community;
use semrec_eval::table::{fmt, Table};
use semrec_trust::appleseed::{appleseed, AppleseedParams};

use crate::Scale;

/// Measured series for shape assertions.
pub struct Outcome {
    /// `(T_c, iterations)` — iterations grow as the threshold tightens.
    pub convergence: Vec<(f64, usize)>,
    /// `(d, total rank, head share)` — higher d spreads rank deeper.
    pub spreading: Vec<(f64, f64, f64)>,
}

/// Runs E3.
pub fn run(scale: Scale) -> Outcome {
    super::header("E3", "Appleseed — convergence and spreading factor (ref [12])");
    let community = generate_community(&scale.community(303)).community;
    let graph = &community.trust;
    let source = community.agents().next().unwrap();
    println!(
        "Trust network: {} agents, {} statements; source {source}, injection 200\n",
        graph.agent_count(),
        graph.edge_count()
    );

    // (a) iterations vs convergence threshold.
    println!("(a) Iterations until fixpoint vs T_c (d = 0.85):");
    let mut table = Table::new(["T_c", "iterations", "nodes", "total rank"]);
    let mut convergence = Vec::new();
    for tc in [1.0, 0.1, 0.01, 0.001, 0.0001] {
        let r = appleseed(
            graph,
            source,
            &AppleseedParams { convergence: tc, ..Default::default() },
        )
        .unwrap();
        assert!(r.converged);
        table.row([
            format!("{tc}"),
            r.iterations.to_string(),
            r.nodes_discovered.to_string(),
            fmt(r.total_rank()),
        ]);
        convergence.push((tc, r.iterations));
    }
    println!("{}", table.render());

    // (b) rank distribution vs spreading factor.
    println!("(b) Rank distribution vs spreading factor d (T_c = 0.001):");
    let mut table = Table::new(["d", "total rank", "top-1 share", "top-10 share", "iterations"]);
    let mut spreading = Vec::new();
    for d in [0.5, 0.65, 0.8, 0.85, 0.9] {
        let r = appleseed(
            graph,
            source,
            &AppleseedParams { spreading_factor: d, convergence: 0.001, ..Default::default() },
        )
        .unwrap();
        let total = r.total_rank();
        let top1: f64 = r.top(1).iter().map(|&(_, x)| x).sum();
        let top10: f64 = r.top(10).iter().map(|&(_, x)| x).sum();
        table.row([
            format!("{d}"),
            fmt(total),
            fmt(top1 / total),
            fmt(top10 / total),
            r.iterations.to_string(),
        ]);
        spreading.push((d, total, top1 / total));
    }
    println!("{}", table.render());
    println!("Higher d forwards more energy instead of keeping it near the source: the");
    println!("head share of the closest peers falls and convergence takes longer —");
    println!("exactly the knob ref [12] describes for widening the neighborhood.");

    Outcome { convergence, spreading }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_hold_at_small_scale() {
        let o = run(Scale::Small);
        // Iterations are non-decreasing as T_c tightens.
        for w in o.convergence.windows(2) {
            assert!(w[0].0 > w[1].0, "thresholds must tighten");
            assert!(w[0].1 <= w[1].1, "iterations must not drop: {:?}", o.convergence);
        }
        // Head share decreases as d grows.
        let first = o.spreading.first().unwrap().2;
        let last = o.spreading.last().unwrap().2;
        assert!(first > last, "head share must fall with d: {first} vs {last}");
    }
}
