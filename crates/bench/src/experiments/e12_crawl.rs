//! **E12 — Decentralized infrastructure** (§4/§4.1): publish the whole
//! community as machine-readable homepages, then measure crawl coverage vs
//! range and end-to-end extraction fidelity.

use std::time::Instant;

use semrec_datagen::community::generate_community;
use semrec_eval::table::{fmt, Table};
use semrec_web::crawler::{assemble_community, crawl, refresh, CrawlConfig};
use semrec_web::publish::{homepage_turtle, homepage_uri};
use semrec_web::publish::publish_community;
use semrec_web::store::DocumentWeb;

use crate::Scale;

/// Measured rows for shape assertions.
pub struct Outcome {
    /// `(range, agents discovered, documents fetched)`.
    pub coverage: Vec<(u32, usize, usize)>,
    /// Total agents in the community.
    pub total_agents: usize,
    /// Fidelity: trust edges and ratings preserved by assemble (as fractions
    /// of the crawled agents' statements).
    pub fidelity_ok: bool,
    /// Incremental refresh: (documents reused, documents re-parsed).
    pub refresh: (usize, usize),
}

/// Runs E12.
pub fn run(scale: Scale) -> Outcome {
    super::header("E12", "Publishing and crawling the decentralized community (§4.1)");
    let community = generate_community(&scale.community(1212)).community;
    let web = DocumentWeb::new();
    let start = Instant::now();
    let published = publish_community(&community, &web);
    let publish_secs = start.elapsed().as_secs_f64();
    println!(
        "Published {published} Turtle homepages in {:.2}s ({:.0} docs/s)\n",
        publish_secs,
        published as f64 / publish_secs.max(1e-9)
    );

    let seed = community.agent(community.agents().next().unwrap()).unwrap().uri.clone();
    let mut table = Table::new(["crawl range", "agents discovered", "docs fetched", "seconds"]);
    let mut coverage = Vec::new();
    for range in [1u32, 2, 3, 4, 6, 10] {
        let start = Instant::now();
        let result = crawl(
            &web,
            std::slice::from_ref(&seed),
            &CrawlConfig { max_range: range, ..Default::default() },
        );
        let secs = start.elapsed().as_secs_f64();
        table.row([
            range.to_string(),
            result.agents.len().to_string(),
            result.documents_fetched.to_string(),
            format!("{secs:.3}"),
        ]);
        coverage.push((range, result.agents.len(), result.documents_fetched));
    }
    println!("{}", table.render());

    // Fidelity of the full round trip (crawl everything via all seeds).
    let seeds: Vec<String> =
        community.agents().map(|a| community.agent(a).unwrap().uri.clone()).collect();
    let result = crawl(&web, &seeds, &CrawlConfig::default());
    let (rebuilt, stats) =
        assemble_community(&result.agents, community.taxonomy.clone(), community.catalog.clone());
    let fidelity_ok = stats.trust_edges == community.trust.edge_count()
        && stats.ratings == community.rating_count()
        && rebuilt.agent_count() == community.agent_count()
        && result.parse_errors == 0;
    println!(
        "Full-coverage round trip: {} agents, {} trust edges ({} in source), {} ratings ({} in source), {} parse errors → fidelity {}",
        rebuilt.agent_count(),
        stats.trust_edges,
        community.trust.edge_count(),
        stats.ratings,
        community.rating_count(),
        result.parse_errors,
        if fidelity_ok { fmt(1.0) } else { fmt(0.0) },
    );

    // Incremental freshness (§4.1: crawlers "ensure data freshness"): 5% of
    // agents republish; a refresh re-parses only those documents.
    let full = crawl(&web, &seeds, &CrawlConfig::default());
    let mut updated = community.clone();
    let republish_count = (community.agent_count() / 20).max(1);
    for agent in community.agents().take(republish_count) {
        if let Some(product) =
            updated.catalog.iter().find(|&p| updated.rating(agent, p).is_none())
        {
            updated.set_rating(agent, product, 1.0).expect("valid rating");
        }
        let uri = homepage_uri(&updated.agent(agent).expect("agent exists").uri);
        web.publish(uri, homepage_turtle(&updated, agent), "text/turtle");
    }
    let refreshed = refresh(&web, &seeds, &CrawlConfig::default(), &full);
    let reparsed = refreshed.documents_fetched - refreshed.reused;
    println!(
        "\nIncremental refresh after {republish_count} agents republished: \
         {} documents reused, {} re-parsed",
        refreshed.reused, reparsed
    );

    Outcome {
        coverage,
        total_agents: community.agent_count(),
        fidelity_ok,
        refresh: (refreshed.reused, reparsed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_grows_with_range_and_fidelity_is_exact() {
        let o = run(Scale::Small);
        for w in o.coverage.windows(2) {
            assert!(w[1].1 >= w[0].1, "coverage must be monotone in range");
        }
        let last = o.coverage.last().unwrap();
        assert!(last.1 > o.total_agents / 2, "deep crawl should reach most of the community");
        assert!(o.fidelity_ok, "round trip must be lossless");
        // Refresh re-parses only the republished documents.
        let (reused, reparsed) = o.refresh;
        assert!(reused > 0);
        assert!(reparsed <= o.total_agents / 20 + 1, "re-parsed {reparsed}");
    }
}
