//! **E16 — Concurrent serving** (semrec-serve): sweep worker count ×
//! offered load × cache size over the same community and measure
//! throughput, latency percentiles, shed rate, and cache hit rate; then
//! exercise the two operational guarantees directly:
//!
//! * **snapshot swap** — publish a new model generation while a wave of
//!   requests is in flight and account for every ticket (zero loss, and
//!   everything submitted after the publish is served by the new epoch);
//! * **admission control** — offer far more concurrency than a tiny queue
//!   can hold and verify the server sheds instead of queuing unboundedly.
//!
//! A final pair of rows serves the same load from a healthy snapshot and
//! from a fault-degraded one (crawled through a 30%-transient-fault web,
//! E15-style) — the serving layer is indifferent to *how* the snapshot was
//! assembled, which is exactly the property that makes hot swaps after a
//! partially-failed refresh crawl safe.

use semrec_core::{AgentId, Recommender, RecommenderConfig};
use semrec_datagen::community::generate_community;
use semrec_eval::table::{fmt, Table};
use semrec_serve::{run_load, LoadGenConfig, LoadReport, ServeConfig, Server};
use semrec_web::crawler::{assemble_community, crawl_resilient, CrawlConfig};
use semrec_web::fault::{FaultPlan, FaultyWeb};
use semrec_web::policy::FetchPolicy;
use semrec_web::publish::publish_community;
use semrec_web::store::DocumentWeb;

use crate::Scale;

/// One sweep row: a server configuration under a load configuration.
#[derive(Clone, Debug)]
pub struct Row {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Closed-loop clients offering load.
    pub clients: usize,
    /// Recommendation cache capacity (0 = disabled).
    pub cache_capacity: usize,
    /// Whether the snapshot was assembled through a faulty crawl.
    pub degraded: bool,
    /// The measured outcome.
    pub report: LoadReport,
}

/// Accounting of the mid-load snapshot swap.
#[derive(Clone, Debug)]
pub struct SwapOutcome {
    /// Requests in flight (queued or being served) when `publish` ran.
    pub first_wave: u64,
    /// Requests submitted after `publish` returned.
    pub second_wave: u64,
    /// First-wave requests served by the pre-swap generation.
    pub served_old: u64,
    /// First-wave requests served by the post-swap generation.
    pub served_new: u64,
    /// Tickets that resolved to anything other than a recommendation list.
    pub lost: u64,
    /// Whether every post-publish request saw the new epoch.
    pub post_swap_only_new: bool,
    /// The epoch `publish` installed.
    pub epoch_after: u64,
}

/// Measured outcomes for shape assertions.
pub struct Outcome {
    /// Sweep rows (workers × clients × cache), then healthy-vs-degraded.
    pub rows: Vec<Row>,
    /// Mid-load snapshot swap accounting.
    pub swap: SwapOutcome,
    /// The overload sub-run (tiny queue, bursty offered load).
    pub overload: LoadReport,
}

const WORKERS: [usize; 3] = [1, 2, 4];
const CLIENTS: [usize; 2] = [2, 8];
const CACHES: [usize; 2] = [0, 2048];

/// Runs E16.
pub fn run(scale: Scale) -> Outcome {
    super::header("E16", "Concurrent serving: workers × load × cache (semrec-serve)");
    let requests_per_client = match scale {
        Scale::Small => 15,
        Scale::Medium => 40,
        Scale::Paper => 80,
    };

    let community = generate_community(&scale.community(1616)).community;
    let web = DocumentWeb::new();
    publish_community(&community, &web);
    let mut uris: Vec<String> =
        community.agents().map(|a| community.agent(a).unwrap().uri.clone()).collect();
    uris.sort();
    let crawl_seed = vec![uris[0].clone()];
    let panel: Vec<AgentId> = community.agents().take(64).collect();
    let engine = Recommender::new(community, RecommenderConfig::default());

    // A second snapshot assembled the hard way: crawl the published web
    // through 30% transient faults (E15's machinery), keep whatever subset
    // survived, and carry the health record on the engine.
    let faulty = FaultyWeb::new(&web, FaultPlan::transient(0.3, 16));
    let (result, _breaker) =
        crawl_resilient(&faulty, &crawl_seed, &CrawlConfig::default(), &FetchPolicy::default());
    let health = result.health();
    let (rebuilt, _) = assemble_community(
        &result.agents,
        engine.community().taxonomy.clone(),
        engine.community().catalog.clone(),
    );
    let degraded_panel: Vec<AgentId> = rebuilt.agents().take(64).collect();
    let degraded =
        Recommender::new(rebuilt, RecommenderConfig::default()).with_source_health(health);

    println!(
        "{} agents; Zipf(1.1) traffic over a {}-agent panel, {} requests/client;\n\
         degraded snapshot crawled through 30% transient faults kept {} agents\n",
        engine.community().agent_count(),
        panel.len(),
        requests_per_client,
        degraded.community().agent_count(),
    );

    // --- sweep: workers × clients × cache --------------------------------
    let mut table = Table::new([
        "snapshot", "workers", "clients", "cache", "served", "req/s", "p50 ms", "p95 ms",
        "p99 ms", "shed", "cache hits",
    ]);
    let mut rows = Vec::new();
    let measure = |engine: &Recommender,
                       panel: &[AgentId],
                       workers: usize,
                       clients: usize,
                       cache_capacity: usize,
                       degraded: bool|
     -> Row {
        let server = Server::start(
            engine.clone(),
            ServeConfig { workers, cache_capacity, ..ServeConfig::default() },
        );
        let report = run_load(
            &server,
            panel,
            &LoadGenConfig { clients, requests_per_client, ..LoadGenConfig::default() },
        );
        Row { workers, clients, cache_capacity, degraded, report }
    };
    for workers in WORKERS {
        for clients in CLIENTS {
            for cache_capacity in CACHES {
                rows.push(measure(&engine, &panel, workers, clients, cache_capacity, false));
            }
        }
    }
    // Healthy vs degraded snapshot under the same serving configuration.
    rows.push(measure(&engine, &panel, 2, 4, 2048, false));
    rows.push(measure(&degraded, &degraded_panel, 2, 4, 2048, true));

    for row in &rows {
        let r = &row.report;
        table.row([
            if row.degraded { "degraded".into() } else { "healthy".to_string() },
            row.workers.to_string(),
            row.clients.to_string(),
            row.cache_capacity.to_string(),
            r.served.to_string(),
            format!("{:.0}", r.throughput()),
            format!("{:.3}", r.latency.p50 * 1e3),
            format!("{:.3}", r.latency.p95 * 1e3),
            format!("{:.3}", r.latency.p99 * 1e3),
            fmt(r.shed_rate()),
            fmt(r.cache_hit_rate()),
        ]);
    }
    println!("{}", table.render());
    println!("Zipf traffic makes the cache earn its keep (hit rates climb with client");
    println!("count); an ample queue sheds nothing; the degraded snapshot serves its");
    println!("surviving agents exactly like a healthy one — assembly provenance is");
    println!("invisible to the serving layer.\n");

    // --- snapshot swap mid-load ------------------------------------------
    let server = Server::start(engine.clone(), ServeConfig { workers: 2, ..Default::default() });
    let first: Vec<_> =
        panel.iter().map(|&agent| server.submit(agent, 10).expect("queue sized for wave")).collect();
    let first_wave = first.len() as u64;
    let epoch_after = server.publish(engine.clone());
    let second: Vec<_> =
        panel.iter().map(|&agent| server.submit(agent, 10).expect("queue sized for wave")).collect();
    let second_wave = second.len() as u64;

    let (mut served_old, mut served_new, mut lost) = (0u64, 0u64, 0u64);
    for ticket in first {
        match ticket.wait() {
            Ok(response) if response.epoch < epoch_after => served_old += 1,
            Ok(_) => served_new += 1,
            Err(_) => lost += 1,
        }
    }
    let mut post_swap_only_new = true;
    for ticket in second {
        match ticket.wait() {
            Ok(response) => post_swap_only_new &= response.epoch == epoch_after,
            Err(_) => lost += 1,
        }
    }
    let swap = SwapOutcome {
        first_wave,
        second_wave,
        served_old,
        served_new,
        lost,
        post_swap_only_new,
        epoch_after,
    };
    println!(
        "Snapshot swap mid-load: {} requests in flight at publish(); all accounted\n\
         for ({} served by epoch {}, {} by epoch {}), {} lost; every one of the {}\n\
         post-publish requests saw epoch {}.\n",
        swap.first_wave,
        swap.served_old,
        epoch_after - 1,
        swap.served_new,
        epoch_after,
        swap.lost,
        swap.second_wave,
        epoch_after,
    );

    // --- overload: admission control sheds, the queue stays bounded ------
    let server = Server::start(
        engine.clone(),
        ServeConfig { workers: 1, queue_capacity: 2, cache_capacity: 0, ..Default::default() },
    );
    let overload = run_load(
        &server,
        &panel,
        &LoadGenConfig {
            clients: 4,
            requests_per_client: requests_per_client.max(25),
            burst: 8,
            ..Default::default()
        },
    );
    println!(
        "Overload (1 worker, queue of 2, burst 8 × 4 clients): {} attempts,\n\
         {} served, {} shed at admission ({} shed rate) — the queue never grew\n\
         past its bound (depth now {}).",
        overload.attempts,
        overload.served,
        overload.shed_admission,
        fmt(overload.shed_rate()),
        server.queue_depth(),
    );

    Outcome { rows, swap, overload }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_guarantees_hold_at_small_scale() {
        let o = run(Scale::Small);

        // Sweep accounting closes and an ample queue sheds nothing.
        for row in &o.rows {
            let r = &row.report;
            assert_eq!(r.served + r.shed(), r.attempts, "accounting must close: {row:?}");
            assert_eq!(r.failed, 0, "no engine errors expected: {row:?}");
            assert_eq!(r.shed(), 0, "a 1024-deep queue under burst-1 load sheds nothing");
            assert!(r.served > 0);
        }
        // Zipf repetition makes warm caches hit; disabled caches never do.
        for row in &o.rows {
            if row.cache_capacity == 0 {
                assert_eq!(row.report.cache_hits, 0);
            } else if row.clients * 15 >= 64 {
                assert!(row.report.cache_hits > 0, "warm cache must hit: {row:?}");
            }
        }
        // The degraded-snapshot row serves like any other.
        let degraded = o.rows.iter().find(|r| r.degraded).expect("degraded row present");
        assert!(degraded.report.served > 0);

        // Swap: every in-flight request resolved, nothing lost, and the
        // post-publish wave only ever saw the new generation.
        assert_eq!(o.swap.lost, 0, "a snapshot swap must not lose requests");
        assert_eq!(o.swap.served_old + o.swap.served_new, o.swap.first_wave);
        assert!(o.swap.post_swap_only_new, "publish() must be a barrier for new submissions");
        assert_eq!(o.swap.epoch_after, 2);

        // Overload: the tiny queue shed load instead of growing.
        assert!(o.overload.shed_admission > 0, "burst-8×4 against queue-2 must shed");
        assert_eq!(o.overload.served + o.overload.shed(), o.overload.attempts);
    }
}
