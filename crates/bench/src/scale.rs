//! Experiment scale selection.

use semrec_datagen::community::CommunityGenConfig;

/// How big the synthetic world is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// 200 agents — smoke-test speed.
    Small,
    /// 1,000 agents — the default; every experiment finishes in seconds.
    Medium,
    /// 9,100 agents / 9,953 books / 20,000 topics — the §4.1 deployment.
    Paper,
}

impl Scale {
    /// Parses `small` / `medium` / `paper`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The community generator configuration at this scale.
    pub fn community(self, seed: u64) -> CommunityGenConfig {
        match self {
            Scale::Small => CommunityGenConfig::small(seed),
            Scale::Medium => CommunityGenConfig::medium(seed),
            Scale::Paper => CommunityGenConfig::paper_scale(seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn configs_scale_up() {
        assert!(Scale::Paper.community(1).agents > Scale::Medium.community(1).agents);
        assert!(Scale::Medium.community(1).agents > Scale::Small.community(1).agents);
    }
}
