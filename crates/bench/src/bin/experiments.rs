//! The experiment runner: regenerates every table/figure of the
//! reproduction (DESIGN.md §3, EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --release -p semrec-bench --bin experiments -- all
//! cargo run --release -p semrec-bench --bin experiments -- e7 --scale medium
//! cargo run --release -p semrec-bench --bin experiments -- e1 --metrics
//! ```

use semrec_bench::{experiments, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Medium;
    let mut metrics = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| usage("unknown scale"));
            }
            "--metrics" => metrics = true,
            "all" => ids.extend(experiments::ALL.iter().map(|s| s.to_string())),
            id => ids.push(id.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage("no experiment selected");
    }

    println!("semrec experiment harness — scale: {scale:?}");
    for id in &ids {
        if metrics {
            // Per-experiment dump: reset first so each dump covers exactly
            // one experiment's work (handles survive the in-place reset).
            semrec_obs::global().reset();
        }
        if !experiments::run(id, scale) {
            usage(&format!("unknown experiment `{id}`"));
        }
        if metrics {
            println!("\n--- metrics ({id}) ---");
            let snapshot = semrec_obs::global().snapshot();
            if snapshot.is_empty() {
                println!("(no instrumented paths ran)");
            } else {
                print!("{}", snapshot.render_text());
            }
        }
    }
}

fn usage(reason: &str) -> ! {
    eprintln!("error: {reason}\n");
    eprintln!("usage: experiments [--scale small|medium|paper] [--metrics] <ids…|all>");
    eprintln!("  experiments: {}", semrec_bench::experiments::ALL.join(", "));
    eprintln!("  --metrics: reset and dump the metrics registry around each experiment");
    std::process::exit(2);
}
