//! # semrec-bench — experiment harness
//!
//! One module per reproduced experiment (see DESIGN.md §3 for the index).
//! The `experiments` binary dispatches on experiment id and prints the
//! reproduced table/series; Criterion micro-benchmarks live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod scale;

pub use scale::Scale;
