//! Property tests for the resilience policy: for *arbitrary* fetch
//! policies, backoff schedules are monotonically non-decreasing and capped,
//! and jitter stays inside its configured band — deterministically.

use proptest::prelude::*;
use semrec_web::policy::FetchPolicy;

fn policy(
    backoff_base: u64,
    backoff_factor: f64,
    backoff_cap: u64,
    jitter: f64,
    jitter_seed: u64,
) -> FetchPolicy {
    FetchPolicy {
        backoff_base,
        backoff_factor,
        backoff_cap,
        jitter,
        jitter_seed,
        ..FetchPolicy::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn backoff_is_monotone_and_respects_the_cap(
        backoff_base in 0u64..1_000,
        backoff_factor in 0.0f64..8.0,
        backoff_cap in 0u64..5_000,
        retries in 1u32..64,
    ) {
        let p = policy(backoff_base, backoff_factor, backoff_cap, 0.0, 0);
        let mut previous = 0u64;
        for retry in 0..retries {
            let d = p.backoff_ticks(retry);
            prop_assert!(d >= previous,
                "backoff fell from {previous} to {d} at retry {retry}");
            prop_assert!(d <= backoff_cap.max(backoff_base),
                "backoff {d} above cap {backoff_cap} (base {backoff_base})");
            previous = d;
        }
    }

    #[test]
    fn jitter_stays_in_the_configured_band(
        backoff_base in 1u64..1_000,
        backoff_factor in 0.0f64..8.0,
        backoff_cap in 1u64..5_000,
        // Deliberately wider than the valid [0, 1]: the clamp is part of
        // the contract.
        jitter in -1.0f64..2.0,
        jitter_seed in 0u64..u64::MAX,
        uri_id in 0u64..10_000,
        retry in 0u32..32,
    ) {
        let p = policy(backoff_base, backoff_factor, backoff_cap, jitter, jitter_seed);
        let uri = format!("http://ex.org/{uri_id}");
        let backoff = p.backoff_ticks(retry);
        let j = p.jitter_ticks(&uri, retry);
        let band = jitter.clamp(0.0, 1.0) * backoff as f64;
        prop_assert!((j as f64) <= band,
            "jitter {j} outside band {band} (backoff {backoff})");
        // Deterministic: the same (policy, uri, retry) always jitters alike.
        prop_assert_eq!(j, p.jitter_ticks(&uri, retry));
        // The full delay composes exactly.
        prop_assert_eq!(p.delay_ticks(&uri, retry), backoff.saturating_add(j));
    }

    #[test]
    fn disabled_jitter_means_pure_backoff(
        backoff_base in 0u64..1_000,
        backoff_factor in 0.0f64..8.0,
        backoff_cap in 0u64..5_000,
        uri_id in 0u64..10_000,
        retry in 0u32..32,
    ) {
        let p = policy(backoff_base, backoff_factor, backoff_cap, 0.0, 7);
        let uri = format!("http://ex.org/{uri_id}");
        prop_assert_eq!(p.jitter_ticks(&uri, retry), 0);
        prop_assert_eq!(p.delay_ticks(&uri, retry), p.backoff_ticks(retry));
    }
}
