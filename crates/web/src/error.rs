//! The unified error type of the web crate.
//!
//! Everything that can go wrong between a published document and the
//! assembled community funnels into one [`Error`] enum: fetch failures
//! (with their [`FetchError`] taxonomy), parse failures, and taxonomy /
//! catalog extraction failures. Crawls record the typed errors they
//! survived in [`crate::crawler::CrawlResult::errors`] instead of only
//! counting them.

use std::fmt;

use semrec_taxonomy::TaxonomyError;

use crate::fault::FetchError;

/// Result alias for fallible web-crate operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Any failure the web layer can produce.
#[derive(Clone, Debug, PartialEq)]
pub enum Error {
    /// A document fetch failed terminally (after any retries).
    Fetch {
        /// The document URI that could not be fetched.
        uri: String,
        /// The last fetch error observed.
        error: FetchError,
        /// Fetch attempts spent before giving up.
        attempts: u32,
    },
    /// A fetched document failed to parse (Turtle or RDF/XML).
    Parse {
        /// The document URI whose body was malformed.
        uri: String,
        /// The underlying parser message.
        detail: String,
    },
    /// A global taxonomy or catalog document did not describe a valid
    /// taxonomy.
    Taxonomy(TaxonomyError),
}

impl Error {
    /// The document URI the error is about, when there is one.
    pub fn uri(&self) -> Option<&str> {
        match self {
            Error::Fetch { uri, .. } | Error::Parse { uri, .. } => Some(uri),
            Error::Taxonomy(_) => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Fetch { uri, error, attempts } => {
                write!(f, "fetch of <{uri}> failed after {attempts} attempt(s): {error}")
            }
            Error::Parse { uri, detail } => write!(f, "document <{uri}> failed to parse: {detail}"),
            Error::Taxonomy(e) => write!(f, "global structure extraction failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Fetch { error, .. } => Some(error),
            Error::Taxonomy(e) => Some(e),
            Error::Parse { .. } => None,
        }
    }
}

impl From<TaxonomyError> for Error {
    fn from(e: TaxonomyError) -> Self {
        Error::Taxonomy(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_source() {
        let e = Error::Fetch {
            uri: "http://ex.org/a".into(),
            error: FetchError::Unavailable,
            attempts: 3,
        };
        assert!(e.to_string().contains("after 3 attempt(s)"));
        assert!(e.source().is_some());
        assert_eq!(e.uri(), Some("http://ex.org/a"));

        let p = Error::Parse { uri: "http://ex.org/b".into(), detail: "bad prefix".into() };
        assert!(p.to_string().contains("bad prefix"));
        assert!(p.source().is_none());

        let t = Error::from(TaxonomyError::CycleDetected);
        assert!(t.to_string().contains("cycle"));
        assert_eq!(t.uri(), None);
    }
}
