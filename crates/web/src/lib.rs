//! # semrec-web — the simulated decentralized Semantic Web
//!
//! §2 fixes the environment model: data-centric, asynchronous — "messages
//! are exchanged by publishing or updating documents encoded in RDF". This
//! crate provides that environment and the deployment machinery of §4:
//!
//! * [`store`] — a concurrent URI → versioned-document web;
//! * [`publish`] — FOAF homepages with Golbeck-style trust statements and
//!   BLAM!-style product ratings, serialized to Turtle or 2004-era RDF/XML;
//! * [`crawler`] — bounded-range parallel BFS crawling (with version-based
//!   incremental [`crawler::refresh`]) plus community assembly through the
//!   [`crawler::CommunityBuilder`] shared by the fresh and delta paths;
//! * [`delta`] — typed crawl deltas ([`delta::CrawlDelta`]): what changed
//!   between two crawls, driving the incremental model pipeline;
//! * [`globals`] — the globally published taxonomy and catalog as RDF
//!   documents, losslessly extractable (§3.1's public structures);
//! * [`fault`] — seeded fault injection ([`fault::FaultyWeb`] over a
//!   [`fault::FaultPlan`]) with a typed [`fault::FetchError`] taxonomy;
//! * [`policy`] — retry/backoff/deadline [`policy::FetchPolicy`] and the
//!   per-peer [`policy::CircuitBreaker`];
//! * [`error`] — the unified [`Error`] enum of the crate;
//! * [`extract`] — defensive document → model extraction;
//! * [`weblog`] — HTML weblogs with Amazon-style product links mined into
//!   implicit votes;
//! * [`isbn`] — ISBN-10/13 parsing, validation and URI normalization.
//!
//! ```
//! use semrec_web::{store::DocumentWeb, publish, crawler::{crawl, CrawlConfig}};
//! use semrec_core::Community;
//! use semrec_taxonomy::fixtures::example1;
//!
//! let e = example1();
//! let mut c = Community::new(e.fig.taxonomy, e.catalog);
//! let alice = c.add_agent("http://example.org/alice#me").unwrap();
//! let web = DocumentWeb::new();
//! publish::publish_community(&c, &web);
//! let result = crawl(&web, &["http://example.org/alice#me".into()], &CrawlConfig::default());
//! assert_eq!(result.agents.len(), 1);
//! # let _ = alice;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crawler;
pub mod delta;
pub mod error;
pub mod extract;
pub mod fault;
pub mod globals;
pub mod isbn;
pub mod policy;
pub mod publish;
pub mod simulation;
pub mod store;
pub mod weblog;

pub use crawler::{
    assemble_community, crawl, crawl_resilient, crawl_with, refresh, refresh_resilient,
    AssembleStats, CommunityBuilder, CrawlConfig, CrawlResult, DocumentSnapshot,
};
pub use delta::{AgentDiff, CrawlDelta};
pub use error::{Error, Result};
pub use extract::ExtractedAgent;
pub use fault::{FaultPlan, FaultyWeb, FetchError, FetchSource};
pub use isbn::Isbn10;
pub use policy::{BreakerState, CircuitBreaker, FetchPolicy};
pub use store::{Document, DocumentWeb};
