//! Extracting the information model back out of published RDF documents.
//!
//! The inverse of [`crate::publish`]: given a parsed homepage graph, recover
//! the agent's identity, trust statements, product ratings and crawl links.
//! Extraction is defensive — the open Semantic Web contains malformed and
//! adversarial documents, so out-of-range values are clamped/dropped rather
//! than trusted (§2, security and credibility).

use semrec_rdf::{vocab, Graph, Subject, Term};

/// Everything extracted from one homepage document.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExtractedAgent {
    /// The agent's URI (subject typed `foaf:Person`).
    pub uri: String,
    /// `(trustee URI, value)` trust statements issued by this agent.
    pub trust: Vec<(String, f64)>,
    /// `(product identifier, score)` ratings issued by this agent.
    pub ratings: Vec<(String, f64)>,
    /// `foaf:knows` acquaintance links.
    pub knows: Vec<String>,
    /// `rdfs:seeAlso` crawl hints (homepage document URIs).
    pub see_also: Vec<String>,
}

/// Extracts all agents described in a graph (usually exactly one per
/// homepage). Statements whose `truster`/`rater` is a different agent are
/// ignored: a homepage only speaks for its owner.
pub fn extract_agents(graph: &Graph) -> Vec<ExtractedAgent> {
    let person_type = Term::Iri(vocab::foaf::person());
    let mut agents = Vec::new();
    for triple in graph.triples_matching(None, Some(&vocab::rdf::type_()), Some(&person_type)) {
        let Subject::Iri(me) = &triple.subject else { continue };
        let me_term = Term::Iri(me.clone());
        let me_subj = triple.subject.clone();

        let mut agent = ExtractedAgent { uri: me.as_str().to_owned(), ..Default::default() };

        for t in graph.triples_matching(Some(&me_subj), Some(&vocab::foaf::knows()), None) {
            if let Term::Iri(peer) = t.object {
                agent.knows.push(peer.into_string());
            }
        }
        for t in graph.triples_matching(Some(&me_subj), Some(&vocab::rdfs::see_also()), None) {
            if let Term::Iri(doc) = t.object {
                agent.see_also.push(doc.into_string());
            }
        }

        // Reified trust statements owned by this agent.
        for stmt in graph.triples_matching(None, Some(&vocab::trust::truster()), Some(&me_term)) {
            let subject = stmt.subject;
            let trustee = graph.object_for(&subject, &vocab::trust::trustee());
            let value = graph
                .object_for(&subject, &vocab::trust::value())
                .and_then(|o| o.as_literal().and_then(|l| l.as_double()));
            if let (Some(Term::Iri(trustee)), Some(value)) = (trustee, value) {
                if value.is_finite() {
                    agent.trust.push((trustee.into_string(), value.clamp(-1.0, 1.0)));
                }
            }
        }

        // Reified ratings owned by this agent.
        for stmt in graph.triples_matching(None, Some(&vocab::rec::rater()), Some(&me_term)) {
            let subject = stmt.subject;
            let product = graph.object_for(&subject, &vocab::rec::product());
            let score = graph
                .object_for(&subject, &vocab::rec::score())
                .and_then(|o| o.as_literal().and_then(|l| l.as_double()));
            if let (Some(Term::Iri(product)), Some(score)) = (product, score) {
                if score.is_finite() {
                    agent.ratings.push((product.into_string(), score.clamp(-1.0, 1.0)));
                }
            }
        }

        agent.trust.sort_by(|a, b| a.0.cmp(&b.0));
        agent.ratings.sort_by(|a, b| a.0.cmp(&b.0));
        agent.knows.sort();
        agent.see_also.sort();
        agents.push(agent);
    }
    agents.sort_by(|a, b| a.uri.cmp(&b.uri));
    agents
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publish::{homepage_graph, homepage_turtle};
    use semrec_core::Community;
    use semrec_rdf::turtle;
    use semrec_taxonomy::fixtures::example1;

    fn community() -> (Community, Vec<semrec_trust::AgentId>) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let alice = c.add_agent("http://ex.org/alice#me").unwrap();
        let bob = c.add_agent("http://ex.org/bob#me").unwrap();
        c.trust.set_trust(alice, bob, 0.75).unwrap();
        c.trust.set_trust(bob, alice, -0.25).unwrap();
        c.set_rating(alice, products[0], 1.0).unwrap();
        (c, vec![alice, bob])
    }

    #[test]
    fn round_trips_published_homepages() {
        let (c, agents) = community();
        let doc = homepage_turtle(&c, agents[0]);
        let extracted = extract_agents(&turtle::parse(&doc).unwrap());
        assert_eq!(extracted.len(), 1);
        let alice = &extracted[0];
        assert_eq!(alice.uri, "http://ex.org/alice#me");
        assert_eq!(alice.trust, vec![("http://ex.org/bob#me".to_owned(), 0.75)]);
        assert_eq!(alice.ratings.len(), 1);
        assert!((alice.ratings[0].1 - 1.0).abs() < 1e-12);
        assert!(alice.ratings[0].0.starts_with("urn:isbn:"));
        assert_eq!(alice.knows, vec!["http://ex.org/bob#me"]);
        assert_eq!(alice.see_also, vec!["http://ex.org/bob"]);
    }

    #[test]
    fn negative_trust_round_trips() {
        let (c, agents) = community();
        let extracted = extract_agents(&homepage_graph(&c, agents[1]));
        assert_eq!(extracted[0].trust, vec![("http://ex.org/alice#me".to_owned(), -0.25)]);
    }

    #[test]
    fn foreign_statements_are_ignored() {
        // A malicious homepage asserting trust *in someone else's name*.
        let doc = r#"
            @prefix foaf: <http://xmlns.com/foaf/0.1/> .
            @prefix trust: <http://example.org/ns/trust#> .
            <http://ex.org/mallory#me> a foaf:Person .
            _:forged a trust:Statement ;
                trust:truster <http://ex.org/alice#me> ;
                trust:trustee <http://ex.org/mallory#me> ;
                trust:value 1.0 .
        "#;
        let extracted = extract_agents(&turtle::parse(doc).unwrap());
        assert_eq!(extracted.len(), 1);
        assert!(extracted[0].trust.is_empty(), "forged statement must not count for mallory");
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let doc = r#"
            @prefix foaf: <http://xmlns.com/foaf/0.1/> .
            @prefix trust: <http://example.org/ns/trust#> .
            <http://ex.org/a#me> a foaf:Person .
            _:t a trust:Statement ;
                trust:truster <http://ex.org/a#me> ;
                trust:trustee <http://ex.org/b#me> ;
                trust:value 99.0 .
        "#;
        let extracted = extract_agents(&turtle::parse(doc).unwrap());
        assert_eq!(extracted[0].trust[0].1, 1.0);
    }

    #[test]
    fn malformed_statements_are_dropped() {
        let doc = r#"
            @prefix foaf: <http://xmlns.com/foaf/0.1/> .
            @prefix trust: <http://example.org/ns/trust#> .
            @prefix rec: <http://example.org/ns/rec#> .
            <http://ex.org/a#me> a foaf:Person .
            _:t1 a trust:Statement ; trust:truster <http://ex.org/a#me> .
            _:r1 a rec:Rating ; rec:rater <http://ex.org/a#me> ;
                 rec:score "not-a-number" .
        "#;
        let extracted = extract_agents(&turtle::parse(doc).unwrap());
        assert!(extracted[0].trust.is_empty());
        assert!(extracted[0].ratings.is_empty());
    }

    #[test]
    fn multiple_agents_in_one_graph() {
        let (c, agents) = community();
        let mut g = homepage_graph(&c, agents[0]);
        g.merge(&homepage_graph(&c, agents[1]));
        let extracted = extract_agents(&g);
        assert_eq!(extracted.len(), 2);
        assert_eq!(extracted[0].uri, "http://ex.org/alice#me");
        assert_eq!(extracted[1].uri, "http://ex.org/bob#me");
    }
}
