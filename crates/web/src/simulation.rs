//! Asynchronous-dynamics simulation (§2, interaction facilities).
//!
//! "Communication becomes restricted to asynchronous message exchange":
//! agents republish their homepages whenever their state changes, and
//! crawlers see those changes only at the next refresh. This module runs a
//! tick-based simulation of that loop and measures the resulting
//! *staleness* — the fraction of published documents whose latest version
//! the crawler's local view has not yet seen — as a function of refresh
//! frequency, plus the parse work each policy costs. Experiment E14 sweeps
//! the refresh interval with it.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use semrec_core::Community;
use semrec_trust::AgentId;

use crate::crawler::{crawl, crawl_with, refresh, CrawlConfig, CrawlResult};
use crate::fault::{FaultPlan, FaultyWeb};
use crate::policy::{CircuitBreaker, FetchPolicy};
use crate::publish::{homepage_turtle, homepage_uri, publish_community};
use crate::store::DocumentWeb;

/// Configuration of the publish/crawl dynamics simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimulationConfig {
    /// Number of ticks to simulate.
    pub ticks: usize,
    /// Per-agent, per-tick probability of changing a rating and republishing.
    pub update_probability: f64,
    /// The crawler refreshes every this-many ticks (≥ 1).
    pub refresh_interval: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional fault injection: when set, every crawl goes through a
    /// [`FaultyWeb`] under `policy`, with one circuit breaker persisting
    /// across the whole simulation (quarantines survive refreshes).
    pub faults: Option<FaultPlan>,
    /// Fetch policy for fault-injected crawls (ignored when `faults` is
    /// `None`: the reliable path is single-attempt by construction).
    pub policy: FetchPolicy,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            ticks: 50,
            update_probability: 0.05,
            refresh_interval: 5,
            seed: 0,
            faults: None,
            policy: FetchPolicy::default(),
        }
    }
}

/// Outcome of a simulation run.
#[derive(Clone, Debug)]
pub struct SimulationReport {
    /// Ticks simulated.
    pub ticks: usize,
    /// Homepage republications that happened.
    pub republications: usize,
    /// Crawler refreshes performed.
    pub refreshes: usize,
    /// Documents the crawler had to re-parse across all refreshes.
    pub documents_reparsed: usize,
    /// Per-tick staleness (fraction of documents newer than the local view),
    /// sampled at the *end* of each tick (after any refresh).
    pub staleness_series: Vec<f64>,
    /// Mean of the staleness series.
    pub mean_staleness: f64,
    /// Retry attempts spent across all crawls (0 without fault injection).
    pub retries: u64,
    /// URIs abandoned after exhausting their retry budget, summed over
    /// crawls.
    pub gave_up: usize,
    /// URIs never fetched (dead peers, open breakers, deadlines), summed
    /// over crawls.
    pub unreachable: usize,
    /// Times the persistent circuit breaker opened during the simulation.
    pub breaker_opens: u64,
}

/// Runs the simulation: mutates `community` (ratings drift over time) and
/// `web` (documents get republished).
pub fn simulate(
    community: &mut Community,
    web: &DocumentWeb,
    config: &SimulationConfig,
) -> SimulationReport {
    assert!(config.refresh_interval >= 1, "refresh interval must be ≥ 1");
    let mut rng = StdRng::seed_from_u64(config.seed);
    publish_community(community, web);
    let seeds: Vec<String> =
        community.agents().map(|a| community.agent(a).unwrap().uri.clone()).collect();

    // One breaker for the whole simulation: peers quarantined in one crawl
    // stay quarantined into the next refresh until their cooldown elapses.
    let faulty = config.faults.map(|plan| FaultyWeb::new(web, plan));
    let mut breaker = CircuitBreaker::for_policy(&config.policy);
    let crawl_once = |breaker: &mut CircuitBreaker, previous: Option<&CrawlResult>| match &faulty {
        Some(source) => {
            crawl_with(source, &seeds, &CrawlConfig::default(), &config.policy, breaker, previous)
        }
        None => match previous {
            Some(view) => refresh(web, &seeds, &CrawlConfig::default(), view),
            None => crawl(web, &seeds, &CrawlConfig::default()),
        },
    };
    let mut view: CrawlResult = crawl_once(&mut breaker, None);

    let agents: Vec<AgentId> = community.agents().collect();
    let products: Vec<_> = community.catalog.iter().collect();
    let mut report = SimulationReport {
        ticks: config.ticks,
        republications: 0,
        refreshes: 0,
        documents_reparsed: 0,
        staleness_series: Vec::with_capacity(config.ticks),
        mean_staleness: 0.0,
        retries: view.retries,
        gave_up: view.gave_up,
        unreachable: view.unreachable,
        breaker_opens: 0,
    };

    for tick in 1..=config.ticks {
        // Agents drift: rate a random product and republish.
        for &agent in &agents {
            if rng.random::<f64>() >= config.update_probability {
                continue;
            }
            let product = products[rng.random_range(0..products.len())];
            let rating = 0.5 + 0.5 * rng.random::<f64>();
            community.set_rating(agent, product, rating).expect("valid rating");
            let uri = homepage_uri(&community.agent(agent).unwrap().uri);
            web.publish(uri, homepage_turtle(community, agent), "text/turtle");
            report.republications += 1;
        }

        // Scheduled refresh.
        if tick % config.refresh_interval == 0 {
            let next = crawl_once(&mut breaker, Some(&view));
            report.refreshes += 1;
            report.documents_reparsed += next.documents_fetched - next.reused;
            report.retries += next.retries;
            report.gave_up += next.gave_up;
            report.unreachable += next.unreachable;
            view = next;
        }

        report.staleness_series.push(staleness(web, &view));
    }
    report.mean_staleness =
        report.staleness_series.iter().sum::<f64>() / report.ticks.max(1) as f64;
    report.breaker_opens = breaker.times_opened();
    report
}

/// Fraction of published documents whose current version the view misses.
fn staleness(web: &DocumentWeb, view: &CrawlResult) -> f64 {
    let uris = web.uris();
    if uris.is_empty() {
        return 0.0;
    }
    let stale = uris
        .iter()
        .filter(|uri| {
            let current = web.fetch(uri).map(|d| d.version).unwrap_or(0);
            let seen = view.documents.get(*uri).map(|d| d.version).unwrap_or(0);
            current > seen
        })
        .count();
    stale as f64 / uris.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_datagen::community::{generate_community, CommunityGenConfig};

    fn world() -> Community {
        let mut config = CommunityGenConfig::small(31);
        config.agents = 60;
        generate_community(&config).community
    }

    #[test]
    fn no_updates_no_staleness() {
        let mut c = world();
        let web = DocumentWeb::new();
        let report = simulate(
            &mut c,
            &web,
            &SimulationConfig { ticks: 10, update_probability: 0.0, ..Default::default() },
        );
        assert_eq!(report.republications, 0);
        assert_eq!(report.mean_staleness, 0.0);
        assert_eq!(report.documents_reparsed, 0);
    }

    #[test]
    fn tighter_refresh_means_less_staleness() {
        let run = |interval: usize| {
            let mut c = world();
            let web = DocumentWeb::new();
            simulate(
                &mut c,
                &web,
                &SimulationConfig {
                    ticks: 40,
                    update_probability: 0.1,
                    refresh_interval: interval,
                    seed: 7,
                    ..Default::default()
                },
            )
        };
        let eager = run(1);
        let lazy = run(20);
        assert!(
            eager.mean_staleness < lazy.mean_staleness,
            "eager {} vs lazy {}",
            eager.mean_staleness,
            lazy.mean_staleness
        );
        assert!(eager.refreshes > lazy.refreshes);
        // Every-tick refreshing clears staleness at each sample point.
        assert!(eager.mean_staleness < 1e-9);
    }

    #[test]
    fn reparse_work_tracks_updates_not_refreshes() {
        let mut c = world();
        let web = DocumentWeb::new();
        let report = simulate(
            &mut c,
            &web,
            &SimulationConfig {
                ticks: 30,
                update_probability: 0.05,
                refresh_interval: 3,
                seed: 11,
                ..Default::default()
            },
        );
        // Re-parsing is bounded by republications: unchanged docs are reused.
        assert!(report.documents_reparsed <= report.republications);
        assert!(report.refreshes == 10);
        assert!(report.republications > 0);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut c = world();
            let web = DocumentWeb::new();
            simulate(&mut c, &web, &SimulationConfig { seed: 3, ..Default::default() })
        };
        let a = run();
        let b = run();
        assert_eq!(a.staleness_series, b.staleness_series);
        assert_eq!(a.republications, b.republications);
        assert_eq!((a.retries, a.gave_up, a.breaker_opens), (0, 0, 0));
    }

    #[test]
    fn fault_injected_simulation_degrades_and_stays_deterministic() {
        let run = || {
            let mut c = world();
            let web = DocumentWeb::new();
            simulate(
                &mut c,
                &web,
                &SimulationConfig {
                    ticks: 20,
                    update_probability: 0.1,
                    refresh_interval: 4,
                    seed: 9,
                    faults: Some(FaultPlan::transient(0.3, 42)),
                    policy: FetchPolicy { max_attempts: 3, ..FetchPolicy::default() },
                },
            )
        };
        let a = run();
        // A 30% transient web forces retries, yet refreshes keep happening.
        assert!(a.retries > 0, "faults must cost retries");
        assert_eq!(a.refreshes, 5);
        // Determinism holds under fault injection too.
        let b = run();
        assert_eq!(a.staleness_series, b.staleness_series);
        assert_eq!(
            (a.retries, a.gave_up, a.unreachable, a.breaker_opens),
            (b.retries, b.gave_up, b.unreachable, b.breaker_opens)
        );
    }
}
