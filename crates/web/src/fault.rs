//! Seeded fault injection over the document web.
//!
//! §2 frames the Semantic Web as "an aggregation of distributed metadata":
//! agents publish RDF homepages on machines the crawler does not control,
//! so fetches fail — transiently, permanently, or halfway (truncated
//! transfers). [`FaultyWeb`] wraps a [`DocumentWeb`] and injects exactly
//! those failures from a [`FaultPlan`], a *stateless, seeded* schedule:
//! whether attempt `k` against URI `u` fails is a pure function of
//! `(seed, u, k)`, never of wall clock or thread interleaving, so
//! fault-injected crawls stay byte-for-byte reproducible across runs and
//! worker counts (the determinism contract of `semrec-obs`).
//!
//! The fallible surface is the [`FetchSource`] trait, returning
//! `Result<Document, FetchError>` with a typed error taxonomy. The plain
//! [`DocumentWeb`] implements it too (its only failure mode is
//! [`FetchError::NotFound`]), so the crawler is written once against the
//! fallible interface and the infallible in-memory web is just the
//! zero-fault special case.

use std::fmt;

use crate::store::{Document, DocumentWeb};

/// Why a fetch attempt failed — the typed error taxonomy of the
/// decentralized web.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FetchError {
    /// No document is published at this URI (a dangling link). Permanent:
    /// retrying cannot help.
    NotFound,
    /// The peer did not answer this attempt (network partition, overload,
    /// host down). Transient: a later attempt may succeed.
    Unavailable,
    /// The transfer aborted mid-body and failed its integrity check
    /// (truncated/corrupted response). Transient: a retry may succeed.
    Corrupted,
    /// The peer is permanently gone (de-registered host, dead homepage).
    /// Permanent: retrying cannot help.
    Dead,
}

impl FetchError {
    /// Whether a retry of the same URI can possibly succeed.
    pub fn is_retryable(self) -> bool {
        matches!(self, FetchError::Unavailable | FetchError::Corrupted)
    }
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::NotFound => write!(f, "no document at this URI"),
            FetchError::Unavailable => write!(f, "peer temporarily unavailable"),
            FetchError::Corrupted => write!(f, "response truncated (integrity check failed)"),
            FetchError::Dead => write!(f, "peer permanently dead"),
        }
    }
}

impl std::error::Error for FetchError {}

/// A fallible document source: one fetch *attempt* against one URI.
///
/// `attempt` is 0-based and lets fault schedules differ between retries of
/// the same URI. [`attempt_ticks`](FetchSource::attempt_ticks) is the
/// simulated latency one attempt costs, charged against the crawler's
/// virtual clock (and hence its per-crawl deadline).
pub trait FetchSource: Sync {
    /// Performs one fetch attempt.
    fn fetch_attempt(&self, uri: &str, attempt: u32) -> Result<Document, FetchError>;

    /// Simulated latency of one attempt, in virtual ticks.
    fn attempt_ticks(&self, uri: &str, attempt: u32) -> u64 {
        let _ = (uri, attempt);
        1
    }
}

/// The infallible in-memory web: the zero-fault special case. Its only
/// error is [`FetchError::NotFound`] for unpublished URIs.
impl FetchSource for DocumentWeb {
    fn fetch_attempt(&self, uri: &str, _attempt: u32) -> Result<Document, FetchError> {
        self.fetch(uri).ok_or(FetchError::NotFound)
    }
}

/// A deterministic, seeded schedule of faults.
///
/// All probabilities are per *attempt* and derived by hashing
/// `(seed, uri, attempt)` — no shared RNG stream, so injection commutes
/// with thread scheduling. `dead_rate` is per *URI*: a dead peer is dead
/// on every attempt, forever.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed all fault decisions derive from.
    pub seed: u64,
    /// Per-attempt probability of [`FetchError::Unavailable`].
    pub transient_rate: f64,
    /// Per-attempt probability of [`FetchError::Corrupted`] (rolled only
    /// when the attempt was not already transiently failed).
    pub corruption_rate: f64,
    /// Fraction of URIs that are permanently [`FetchError::Dead`].
    pub dead_rate: f64,
    /// Base latency of every attempt, in virtual ticks.
    pub latency_base: u64,
    /// Extra per-attempt latency, uniform in `[0, latency_jitter]` ticks.
    pub latency_jitter: u64,
}

impl FaultPlan {
    /// A plan that never injects anything (latency 1 tick, like the plain
    /// web).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            transient_rate: 0.0,
            corruption_rate: 0.0,
            dead_rate: 0.0,
            latency_base: 1,
            latency_jitter: 0,
        }
    }

    /// A plan with only transient unavailability at the given rate.
    pub fn transient(rate: f64, seed: u64) -> Self {
        FaultPlan { transient_rate: rate, seed, ..FaultPlan::none() }
    }

    /// Whether this URI's peer is permanently dead under the plan.
    pub fn is_dead(&self, uri: &str) -> bool {
        self.dead_rate > 0.0 && unit(stable_hash(self.seed, uri, 0, SALT_DEAD)) < self.dead_rate
    }

    /// The injected failure for one attempt, if any (dead peers first,
    /// then transient unavailability, then corruption).
    pub fn attempt_fault(&self, uri: &str, attempt: u32) -> Option<FetchError> {
        if self.is_dead(uri) {
            return Some(FetchError::Dead);
        }
        let roll = |salt: u64| unit(stable_hash(self.seed, uri, attempt as u64, salt));
        if self.transient_rate > 0.0 && roll(SALT_TRANSIENT) < self.transient_rate {
            return Some(FetchError::Unavailable);
        }
        if self.corruption_rate > 0.0 && roll(SALT_CORRUPT) < self.corruption_rate {
            return Some(FetchError::Corrupted);
        }
        None
    }

    /// Simulated latency of one attempt in ticks.
    pub fn latency_ticks(&self, uri: &str, attempt: u32) -> u64 {
        let jitter = if self.latency_jitter == 0 {
            0
        } else {
            stable_hash(self.seed, uri, attempt as u64, SALT_LATENCY) % (self.latency_jitter + 1)
        };
        self.latency_base.saturating_add(jitter)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// A [`DocumentWeb`] seen through a [`FaultPlan`]: the unreliable,
/// distributed web the paper's crawlers actually face.
#[derive(Debug)]
pub struct FaultyWeb<'a> {
    inner: &'a DocumentWeb,
    plan: FaultPlan,
}

impl<'a> FaultyWeb<'a> {
    /// Wraps a web with a fault plan.
    pub fn new(inner: &'a DocumentWeb, plan: FaultPlan) -> Self {
        FaultyWeb { inner, plan }
    }

    /// The wrapped (reliable) web.
    pub fn inner(&self) -> &DocumentWeb {
        self.inner
    }

    /// The active fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl FetchSource for FaultyWeb<'_> {
    fn fetch_attempt(&self, uri: &str, attempt: u32) -> Result<Document, FetchError> {
        // Transport faults mask the origin: a dead or partitioned peer
        // cannot even report 404, and a truncated body arrives (and is
        // charged as store traffic) before its integrity check fails.
        match self.plan.attempt_fault(uri, attempt) {
            Some(FetchError::Corrupted) => {
                let _ = self.inner.fetch(uri);
                Err(FetchError::Corrupted)
            }
            Some(error) => Err(error),
            None => self.inner.fetch(uri).ok_or(FetchError::NotFound),
        }
    }

    fn attempt_ticks(&self, uri: &str, attempt: u32) -> u64 {
        self.plan.latency_ticks(uri, attempt)
    }
}

const SALT_DEAD: u64 = 0x9e37_79b9_7f4a_7c15;
const SALT_TRANSIENT: u64 = 0xbf58_476d_1ce4_e5b9;
const SALT_CORRUPT: u64 = 0x94d0_49bb_1331_11eb;
const SALT_LATENCY: u64 = 0x2545_f491_4f6c_dd1d;

// The seeded decision hash lives in `semrec-hash` (it is shared with the
// gossip layer of `semrec-p2p`); fault schedules and retry jitter are
// bit-identical to when the helpers were private to this module.
pub(crate) use semrec_hash::{stable_hash, unit};

#[cfg(test)]
mod tests {
    use super::*;

    fn web() -> DocumentWeb {
        let web = DocumentWeb::new();
        for i in 0..50 {
            web.publish(format!("http://ex.org/{i}"), "body", "text/turtle");
        }
        web
    }

    #[test]
    fn zero_fault_plan_is_transparent() {
        let web = web();
        let faulty = FaultyWeb::new(&web, FaultPlan::none());
        for i in 0..50 {
            let uri = format!("http://ex.org/{i}");
            assert_eq!(faulty.fetch_attempt(&uri, 0).unwrap().body, "body");
            assert_eq!(faulty.attempt_ticks(&uri, 0), 1);
        }
        assert_eq!(faulty.fetch_attempt("http://ex.org/missing", 0), Err(FetchError::NotFound));
    }

    #[test]
    fn fault_decisions_are_deterministic() {
        let web = web();
        let plan = FaultPlan {
            transient_rate: 0.4,
            corruption_rate: 0.1,
            dead_rate: 0.1,
            ..FaultPlan::transient(0.4, 99)
        };
        let a = FaultyWeb::new(&web, plan);
        let b = FaultyWeb::new(&web, plan);
        for i in 0..50 {
            let uri = format!("http://ex.org/{i}");
            for attempt in 0..5 {
                assert_eq!(a.fetch_attempt(&uri, attempt), b.fetch_attempt(&uri, attempt));
                assert_eq!(a.attempt_ticks(&uri, attempt), b.attempt_ticks(&uri, attempt));
            }
        }
    }

    #[test]
    fn transient_rate_shapes_the_failure_frequency() {
        let web = web();
        let plan = FaultPlan::transient(0.3, 7);
        let faulty = FaultyWeb::new(&web, plan);
        let mut failures = 0;
        let mut trials = 0;
        for i in 0..50 {
            let uri = format!("http://ex.org/{i}");
            for attempt in 0..20 {
                trials += 1;
                if faulty.fetch_attempt(&uri, attempt).is_err() {
                    failures += 1;
                }
            }
        }
        let rate = failures as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed failure rate {rate}");
    }

    #[test]
    fn dead_peers_fail_every_attempt() {
        let web = web();
        let plan = FaultPlan { dead_rate: 0.3, ..FaultPlan::none() };
        let faulty = FaultyWeb::new(&web, plan);
        let mut dead = 0;
        for i in 0..50 {
            let uri = format!("http://ex.org/{i}");
            if plan.is_dead(&uri) {
                dead += 1;
                for attempt in 0..8 {
                    assert_eq!(faulty.fetch_attempt(&uri, attempt), Err(FetchError::Dead));
                }
            } else {
                assert!(faulty.fetch_attempt(&uri, 0).is_ok());
            }
        }
        assert!(dead > 5 && dead < 25, "dead fraction should track the rate, got {dead}/50");
    }

    #[test]
    fn retryable_taxonomy() {
        assert!(FetchError::Unavailable.is_retryable());
        assert!(FetchError::Corrupted.is_retryable());
        assert!(!FetchError::NotFound.is_retryable());
        assert!(!FetchError::Dead.is_retryable());
    }

    #[test]
    fn transient_faults_clear_on_a_different_attempt() {
        // With a mid-range rate, at least one URI must fail on attempt 0
        // and succeed on some later attempt (that is what makes retries
        // worthwhile).
        let web = web();
        let faulty = FaultyWeb::new(&web, FaultPlan::transient(0.5, 3));
        let recovered = (0..50).any(|i| {
            let uri = format!("http://ex.org/{i}");
            faulty.fetch_attempt(&uri, 0).is_err()
                && (1..6).any(|attempt| faulty.fetch_attempt(&uri, attempt).is_ok())
        });
        assert!(recovered, "some transient failure must clear on retry");
    }

    #[test]
    fn latency_stays_in_band() {
        let web = web();
        let plan = FaultPlan { latency_base: 3, latency_jitter: 4, ..FaultPlan::none() };
        let faulty = FaultyWeb::new(&web, plan);
        for i in 0..50 {
            let uri = format!("http://ex.org/{i}");
            let t = faulty.attempt_ticks(&uri, 0);
            assert!((3..=7).contains(&t), "latency {t} out of [3, 7]");
        }
    }
}
