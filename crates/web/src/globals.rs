//! Publishing the globally held structures as RDF (§3.1).
//!
//! "Taxonomy C, set B of products and descriptor assignment f must hold
//! globally and therefore offer public accessibility." This module gives
//! them the same treatment as agent homepages: a Turtle serialization
//! (topics as `rec:Topic` with `rdfs:subClassOf` edges, products as
//! `rec:Product` with `rec:topic` descriptors) and a lossless extraction
//! back into [`Taxonomy`] / [`Catalog`] — so a fresh node can bootstrap the
//! entire shared world from two published documents.

use std::collections::HashMap;

use semrec_rdf::{vocab, Graph, Iri, Literal, Subject, Term, Triple};
use semrec_taxonomy::{Catalog, Taxonomy, TaxonomyError, TopicId};

use crate::error::Result;

/// The topic IRI within a base namespace: `{base}t{index}`.
pub fn topic_iri(base: &str, topic: TopicId) -> Iri {
    Iri::new_unchecked(format!("{base}t{}", topic.index()))
}

fn topic_from_iri(base: &str, iri: &Iri) -> Option<usize> {
    iri.as_str().strip_prefix(base)?.strip_prefix('t')?.parse().ok()
}

/// Serializes a taxonomy into an RDF graph under the given base namespace
/// (e.g. `http://community.example.org/taxonomy#`).
pub fn taxonomy_graph(taxonomy: &Taxonomy, base: &str) -> Graph {
    let mut g = Graph::new();
    for topic in taxonomy.iter() {
        let iri = topic_iri(base, topic);
        g.insert(Triple::new(iri.clone(), vocab::rdf::type_(), vocab::rec::topic_class()));
        g.insert(Triple::new(
            iri.clone(),
            vocab::rdfs::label(),
            Literal::simple(taxonomy.label(topic)),
        ));
        for &parent in taxonomy.parents(topic) {
            g.insert(Triple::new(
                iri.clone(),
                vocab::rdfs::sub_class_of(),
                topic_iri(base, parent),
            ));
        }
    }
    g
}

/// Rebuilds a taxonomy from its published graph.
///
/// Fails when the graph does not describe a single-rooted acyclic taxonomy
/// (missing root, several roots, cycles, or dangling `subClassOf` targets) —
/// the failure surfaces as [`crate::Error::Taxonomy`].
pub fn extract_taxonomy(graph: &Graph, base: &str) -> Result<Taxonomy> {
    // Collect topics: raw index → (label, parent raw indexes).
    let topic_type = Term::Iri(vocab::rec::topic_class());
    let mut nodes: HashMap<usize, (String, Vec<usize>)> = HashMap::new();
    for t in graph.triples_matching(None, Some(&vocab::rdf::type_()), Some(&topic_type)) {
        let Subject::Iri(iri) = &t.subject else { continue };
        let Some(index) = topic_from_iri(base, iri) else { continue };
        let label = graph
            .object_for(&t.subject, &vocab::rdfs::label())
            .and_then(|o| o.as_literal().map(|l| l.lexical().to_owned()))
            .unwrap_or_else(|| format!("t{index}"));
        let parents: Vec<usize> = graph
            .objects_for(&t.subject, &vocab::rdfs::sub_class_of())
            .into_iter()
            .filter_map(|o| o.as_iri().and_then(|iri| topic_from_iri(base, iri)))
            .collect();
        nodes.insert(index, (label, parents));
    }

    // The unique root: no parents.
    let mut roots = nodes.iter().filter(|(_, (_, p))| p.is_empty());
    let Some((&root, (root_label, _))) = roots.next() else {
        return Err(TaxonomyError::CycleDetected.into()); // no ⊤: malformed
    };
    if roots.next().is_some() {
        return Err(TaxonomyError::DuplicateLabel("multiple roots".into()).into());
    }

    let mut builder = Taxonomy::builder(root_label.clone());
    let mut id_of: HashMap<usize, TopicId> = HashMap::from([(root, TopicId::TOP)]);
    // Insert parents-first: repeatedly sweep until no progress (the graph is
    // small; quadratic worst case is fine and detects cycles).
    let mut pending: Vec<usize> = nodes.keys().copied().filter(|&i| i != root).collect();
    pending.sort_unstable();
    while !pending.is_empty() {
        let before = pending.len();
        pending.retain(|&index| {
            let (label, parents) = &nodes[&index];
            let Some(&first) = parents.first() else { return false };
            let Some(&first_id) = id_of.get(&first) else { return true };
            match builder.add_topic(label.clone(), first_id) {
                Ok(id) => {
                    id_of.insert(index, id);
                    false
                }
                Err(_) => false, // duplicate label: drop (defensive)
            }
        });
        if pending.len() == before {
            return Err(TaxonomyError::CycleDetected.into());
        }
    }
    // Extra DAG parents.
    for (&index, (_, parents)) in &nodes {
        let Some(&child) = id_of.get(&index) else { continue };
        for &parent in parents.iter().skip(1) {
            if let Some(&pid) = id_of.get(&parent) {
                builder.add_parent(child, pid)?;
            }
        }
    }
    Ok(builder.build())
}

/// Serializes a catalog into an RDF graph; product subjects are their own
/// identifiers (`urn:isbn:…`), descriptors point into the taxonomy base.
pub fn catalog_graph(catalog: &Catalog, base: &str) -> Graph {
    let mut g = Graph::new();
    for product in catalog.iter() {
        let record = catalog.product(product);
        let iri = Iri::new_unchecked(record.identifier.clone());
        g.insert(Triple::new(iri.clone(), vocab::rdf::type_(), vocab::rec::product_class()));
        g.insert(Triple::new(
            iri.clone(),
            vocab::rdfs::label(),
            Literal::simple(record.title.clone()),
        ));
        for &descriptor in catalog.descriptors(product) {
            g.insert(Triple::new(iri.clone(), vocab::rec::topic(), topic_iri(base, descriptor)));
        }
    }
    g
}

/// Rebuilds a catalog from its published graph over the given taxonomy.
///
/// Products with no resolvable descriptors are skipped (returned count in
/// `.1`); product order follows the identifier sort so rebuilt ids are
/// deterministic (but may differ from the original ids — identifiers are
/// the stable names, exactly as §3.1 intends).
pub fn extract_catalog(
    graph: &Graph,
    taxonomy: &Taxonomy,
    base: &str,
) -> (Catalog, usize) {
    let product_type = Term::Iri(vocab::rec::product_class());
    let mut entries: Vec<(String, String, Vec<TopicId>)> = Vec::new();
    let mut skipped = 0usize;
    for t in graph.triples_matching(None, Some(&vocab::rdf::type_()), Some(&product_type)) {
        let Subject::Iri(iri) = &t.subject else { continue };
        let title = graph
            .object_for(&t.subject, &vocab::rdfs::label())
            .and_then(|o| o.as_literal().map(|l| l.lexical().to_owned()))
            .unwrap_or_default();
        let descriptors: Vec<TopicId> = graph
            .objects_for(&t.subject, &vocab::rec::topic())
            .into_iter()
            .filter_map(|o| {
                o.as_iri()
                    .and_then(|iri| topic_from_iri(base, iri))
                    .filter(|&i| i < taxonomy.len())
                    .map(TopicId::from_index)
            })
            .collect();
        if descriptors.is_empty() {
            skipped += 1;
            continue;
        }
        entries.push((iri.as_str().to_owned(), title, descriptors));
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let mut catalog = Catalog::new();
    for (identifier, title, descriptors) in entries {
        if catalog.add_product(taxonomy, identifier, title, descriptors).is_err() {
            skipped += 1;
        }
    }
    (catalog, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_rdf::{turtle, writer};
    use semrec_taxonomy::fixtures::example1;

    const BASE: &str = "http://community.example.org/taxonomy#";

    #[test]
    fn taxonomy_round_trips_through_turtle() {
        let e = example1();
        let g = taxonomy_graph(&e.fig.taxonomy, BASE);
        let doc = writer::to_turtle(&g);
        let parsed = turtle::parse(&doc).unwrap();
        let rebuilt = extract_taxonomy(&parsed, BASE).unwrap();
        assert_eq!(rebuilt.len(), e.fig.taxonomy.len());
        for topic in e.fig.taxonomy.iter() {
            let label = e.fig.taxonomy.label(topic);
            let twin = rebuilt.by_label(label).expect(label);
            assert_eq!(rebuilt.depth(twin), e.fig.taxonomy.depth(topic), "{label}");
            // Parent labels match.
            let mut original: Vec<&str> = e
                .fig
                .taxonomy
                .parents(topic)
                .iter()
                .map(|&p| e.fig.taxonomy.label(p))
                .collect();
            let mut got: Vec<&str> =
                rebuilt.parents(twin).iter().map(|&p| rebuilt.label(p)).collect();
            original.sort_unstable();
            got.sort_unstable();
            assert_eq!(original, got, "{label}");
        }
    }

    #[test]
    fn catalog_round_trips_through_turtle() {
        let e = example1();
        let g = catalog_graph(&e.catalog, BASE);
        let doc = writer::to_turtle(&g);
        let parsed = turtle::parse(&doc).unwrap();
        let (rebuilt, skipped) = extract_catalog(&parsed, &e.fig.taxonomy, BASE);
        assert_eq!(skipped, 0);
        assert_eq!(rebuilt.len(), e.catalog.len());
        for product in e.catalog.iter() {
            let record = e.catalog.product(product);
            let twin = rebuilt.by_identifier(&record.identifier).expect(&record.identifier);
            assert_eq!(rebuilt.product(twin).title, record.title);
            assert_eq!(rebuilt.descriptors(twin), e.catalog.descriptors(product));
        }
    }

    #[test]
    fn malformed_taxonomy_graphs_are_rejected() {
        // Two roots.
        let mut g = Graph::new();
        for i in 0..2 {
            let iri = topic_iri(BASE, TopicId::from_index(i));
            g.insert(Triple::new(iri.clone(), vocab::rdf::type_(), vocab::rec::topic_class()));
            g.insert(Triple::new(iri, vocab::rdfs::label(), Literal::simple(format!("r{i}"))));
        }
        assert!(extract_taxonomy(&g, BASE).is_err());

        // Cycle: t0 ⊑ t1 ⊑ t0 with no root at all.
        let mut g = Graph::new();
        for (a, b) in [(0usize, 1usize), (1, 0)] {
            let ia = topic_iri(BASE, TopicId::from_index(a));
            g.insert(Triple::new(ia.clone(), vocab::rdf::type_(), vocab::rec::topic_class()));
            g.insert(Triple::new(
                ia,
                vocab::rdfs::sub_class_of(),
                topic_iri(BASE, TopicId::from_index(b)),
            ));
        }
        assert!(extract_taxonomy(&g, BASE).is_err());
    }

    #[test]
    fn products_without_descriptors_are_skipped() {
        let e = example1();
        let mut g = catalog_graph(&e.catalog, BASE);
        let bad = Iri::new("urn:isbn:0000000000").unwrap();
        g.insert(Triple::new(bad.clone(), vocab::rdf::type_(), vocab::rec::product_class()));
        g.insert(Triple::new(bad, vocab::rdfs::label(), Literal::simple("no topics")));
        let (rebuilt, skipped) = extract_catalog(&g, &e.fig.taxonomy, BASE);
        assert_eq!(skipped, 1);
        assert_eq!(rebuilt.len(), e.catalog.len());
    }

    #[test]
    fn foreign_topic_iris_are_ignored() {
        assert_eq!(topic_from_iri(BASE, &Iri::new("http://other.org/t5").unwrap()), None);
        assert_eq!(topic_from_iri(BASE, &Iri::new(format!("{BASE}x5")).unwrap()), None);
        assert_eq!(
            topic_from_iri(BASE, &Iri::new(format!("{BASE}t17")).unwrap()),
            Some(17)
        );
    }
}
