//! The simulated decentralized document web.
//!
//! §2: "The Semantic Web, being an aggregation of distributed metadata,
//! constitutes an inherently data-centric environment model. Messages are
//! exchanged by publishing or updating documents encoded in RDF … Hence,
//! communication becomes restricted to asynchronous message exchange."
//!
//! [`DocumentWeb`] is that environment: a concurrent URI → document map
//! where agents *publish* (create or update, bumping a version counter) and
//! crawlers *fetch*. There is no direct agent-to-agent channel — by design.
//!
//! Instrumentation: every fetch that finds a document bumps the global
//! `web.store.reads` counter, every fetch that misses bumps `web.store.misses`
//! (dangling links are not real traffic), and every publish/remove bumps
//! `web.store.writes` — so crawl dashboards can tell served documents from
//! 404s, alongside the per-web [`DocumentWeb::fetch_count`] (which counts
//! both).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// A published document: body, media type and monotonically increasing
/// version (bumped on every re-publish).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Document {
    /// The document body (Turtle for homepages, HTML for weblogs).
    pub body: String,
    /// Media type, e.g. `text/turtle` or `text/html`.
    pub content_type: String,
    /// Version, starting at 1.
    pub version: u64,
}

/// A concurrent URI-addressed document store with publish/fetch semantics.
#[derive(Debug, Default)]
pub struct DocumentWeb {
    docs: RwLock<HashMap<String, Document>>,
    fetches: AtomicU64,
}

impl DocumentWeb {
    /// Creates an empty web.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes (or updates) a document; returns its new version.
    pub fn publish(
        &self,
        uri: impl Into<String>,
        body: impl Into<String>,
        content_type: impl Into<String>,
    ) -> u64 {
        semrec_obs::counter("web.store.writes").inc();
        let mut docs = self.docs.write().unwrap();
        let entry = docs.entry(uri.into());
        match entry {
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                let doc = slot.get_mut();
                doc.body = body.into();
                doc.content_type = content_type.into();
                doc.version += 1;
                doc.version
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Document {
                    body: body.into(),
                    content_type: content_type.into(),
                    version: 1,
                });
                1
            }
        }
    }

    /// Fetches a document (cloned, like a network response). Hits count as
    /// `web.store.reads`, misses as `web.store.misses`.
    pub fn fetch(&self, uri: &str) -> Option<Document> {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        let doc = self.docs.read().unwrap().get(uri).cloned();
        match doc {
            Some(_) => semrec_obs::counter("web.store.reads").inc(),
            None => semrec_obs::counter("web.store.misses").inc(),
        }
        doc
    }

    /// Removes a document; returns `true` if it existed.
    pub fn remove(&self, uri: &str) -> bool {
        semrec_obs::counter("web.store.writes").inc();
        self.docs.write().unwrap().remove(uri).is_some()
    }

    /// Number of published documents.
    pub fn len(&self) -> usize {
        self.docs.read().unwrap().len()
    }

    /// True if nothing is published.
    pub fn is_empty(&self) -> bool {
        self.docs.read().unwrap().is_empty()
    }

    /// All published URIs (sorted, for deterministic iteration).
    pub fn uris(&self) -> Vec<String> {
        let mut uris: Vec<String> = self.docs.read().unwrap().keys().cloned().collect();
        uris.sort();
        uris
    }

    /// Total fetches served (crawler traffic accounting).
    pub fn fetch_count(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_fetch_roundtrip() {
        let web = DocumentWeb::new();
        assert!(web.is_empty());
        let v = web.publish("http://ex.org/a", "body", "text/turtle");
        assert_eq!(v, 1);
        let doc = web.fetch("http://ex.org/a").unwrap();
        assert_eq!(doc.body, "body");
        assert_eq!(doc.content_type, "text/turtle");
        assert_eq!(doc.version, 1);
        assert!(web.fetch("http://ex.org/missing").is_none());
    }

    #[test]
    fn republish_bumps_version() {
        let web = DocumentWeb::new();
        web.publish("http://ex.org/a", "v1", "text/turtle");
        let v = web.publish("http://ex.org/a", "v2", "text/turtle");
        assert_eq!(v, 2);
        assert_eq!(web.fetch("http://ex.org/a").unwrap().body, "v2");
        assert_eq!(web.len(), 1);
    }

    #[test]
    fn remove() {
        let web = DocumentWeb::new();
        web.publish("http://ex.org/a", "x", "text/html");
        assert!(web.remove("http://ex.org/a"));
        assert!(!web.remove("http://ex.org/a"));
        assert!(web.is_empty());
    }

    #[test]
    fn uris_are_sorted() {
        let web = DocumentWeb::new();
        web.publish("http://ex.org/b", "x", "text/turtle");
        web.publish("http://ex.org/a", "x", "text/turtle");
        assert_eq!(web.uris(), vec!["http://ex.org/a", "http://ex.org/b"]);
    }

    #[test]
    fn fetch_counting() {
        let web = DocumentWeb::new();
        web.publish("http://ex.org/a", "x", "text/turtle");
        web.fetch("http://ex.org/a");
        web.fetch("http://ex.org/missing");
        assert_eq!(web.fetch_count(), 2);
    }

    #[test]
    fn read_write_counters_track_traffic() {
        let reads = semrec_obs::counter("web.store.reads");
        let misses = semrec_obs::counter("web.store.misses");
        let writes = semrec_obs::counter("web.store.writes");
        let (reads_before, misses_before, writes_before) =
            (reads.get(), misses.get(), writes.get());
        let web = DocumentWeb::new();
        web.publish("http://ex.org/a", "x", "text/turtle");
        web.fetch("http://ex.org/a");
        web.fetch("http://ex.org/missing");
        web.remove("http://ex.org/a");
        // Other tests in this binary hit the same global counters in
        // parallel, so assert lower bounds; exact-equality coverage lives
        // in the serialized workspace-level observability tests.
        assert!(reads.get() - reads_before >= 1);
        assert!(misses.get() - misses_before >= 1);
        assert!(writes.get() - writes_before >= 2);
    }

    #[test]
    fn concurrent_publish_and_fetch() {
        let web = DocumentWeb::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let web = &web;
                s.spawn(move || {
                    for i in 0..50 {
                        web.publish(format!("http://ex.org/{t}/{i}"), "x", "text/turtle");
                        web.fetch(&format!("http://ex.org/{t}/{i}"));
                    }
                });
            }
        });
        assert_eq!(web.len(), 200);
        assert_eq!(web.fetch_count(), 200);
    }
}
