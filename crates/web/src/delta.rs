//! Typed crawl deltas: what changed between two crawls of the same web.
//!
//! The steady state of the §2 asynchronous-update loop is *small deltas
//! against a large standing model*: agents republish their homepages, the
//! crawler refreshes, and almost everything it sees is version-unchanged.
//! A [`CrawlDelta`] captures exactly the difference between the previous
//! view and the new one — added / changed / removed agents, with per-agent
//! trust-edge and rating diffs — so downstream stages (community assembly,
//! profile generation, the serving cache) can do work proportional to the
//! delta instead of rebuilding the world.
//!
//! Every refresh ([`crate::crawler::refresh`] /
//! [`crate::crawler::refresh_resilient`] / any
//! [`crate::crawler::crawl_with`] with a previous view) computes the delta
//! and records it on [`crate::crawler::CrawlResult::delta`], bumping the
//! `refresh.delta.{added,changed,removed,unchanged}` counters.

use crate::extract::ExtractedAgent;

/// Per-agent diff between two extractions of the same URI.
///
/// The `*_set` lists carry statements that are new *or* whose value
/// changed; the `*_removed` lists carry keys that disappeared. Crawl links
/// (`foaf:knows` / `rdfs:seeAlso`) do not feed the model, but their new
/// values are kept so an incremental view stays byte-identical to a fresh
/// crawl's extraction.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AgentDiff {
    /// The agent's URI.
    pub uri: String,
    /// Trust statements added or re-valued: `(trustee URI, value)`.
    pub trust_set: Vec<(String, f64)>,
    /// Trustee URIs whose trust statement disappeared.
    pub trust_removed: Vec<String>,
    /// Ratings added or re-valued: `(product identifier, score)`.
    pub ratings_set: Vec<(String, f64)>,
    /// Product identifiers whose rating disappeared.
    pub ratings_removed: Vec<String>,
    /// New `foaf:knows` links, when they changed.
    pub knows: Option<Vec<String>>,
    /// New `rdfs:seeAlso` links, when they changed.
    pub see_also: Option<Vec<String>>,
}

impl AgentDiff {
    /// True when the diff touches the agent's ratings — the inputs of their
    /// taxonomy profile. A trust-only diff leaves the profile clean.
    pub fn profile_dirty(&self) -> bool {
        !self.ratings_set.is_empty() || !self.ratings_removed.is_empty()
    }

    /// True when the diff touches the agent's outgoing trust statements.
    pub fn trust_dirty(&self) -> bool {
        !self.trust_set.is_empty() || !self.trust_removed.is_empty()
    }

    /// True when nothing model-relevant nor any crawl link changed.
    pub fn is_empty(&self) -> bool {
        !self.profile_dirty()
            && !self.trust_dirty()
            && self.knows.is_none()
            && self.see_also.is_none()
    }
}

/// The typed difference between two crawls: who appeared, who changed (and
/// how), who disappeared.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CrawlDelta {
    /// Agents present now but absent from the previous view, sorted by URI.
    pub added: Vec<ExtractedAgent>,
    /// Agents present in both views whose extraction differs, sorted by URI.
    pub changed: Vec<AgentDiff>,
    /// URIs present before but absent now (unreachable, removed, or no
    /// longer discovered), sorted.
    pub removed: Vec<String>,
    /// Agents present in both views and extraction-identical.
    pub unchanged: usize,
}

impl CrawlDelta {
    /// Diffs two crawl extractions. Both slices must be sorted by URI —
    /// which [`crate::crawler::CrawlResult::agents`] always is.
    pub fn between(previous: &[ExtractedAgent], next: &[ExtractedAgent]) -> CrawlDelta {
        let mut delta = CrawlDelta::default();
        let (mut i, mut j) = (0, 0);
        while i < previous.len() || j < next.len() {
            match (previous.get(i), next.get(j)) {
                (Some(prev), Some(new)) if prev.uri == new.uri => {
                    if prev == new {
                        delta.unchanged += 1;
                    } else {
                        delta.changed.push(diff_agent(prev, new));
                    }
                    i += 1;
                    j += 1;
                }
                (Some(prev), Some(new)) if prev.uri < new.uri => {
                    delta.removed.push(prev.uri.clone());
                    i += 1;
                }
                (Some(_), Some(new)) => {
                    delta.added.push(new.clone());
                    j += 1;
                }
                (Some(prev), None) => {
                    delta.removed.push(prev.uri.clone());
                    i += 1;
                }
                (None, Some(new)) => {
                    delta.added.push(new.clone());
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        delta
    }

    /// True when the views are extraction-identical.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.changed.is_empty() && self.removed.is_empty()
    }

    /// Total agents the delta touches.
    pub fn touched(&self) -> usize {
        self.added.len() + self.changed.len() + self.removed.len()
    }

    /// Publishes the `refresh.delta.*` counters for this delta.
    pub(crate) fn publish_metrics(&self) {
        semrec_obs::counter("refresh.delta.added").add(self.added.len() as u64);
        semrec_obs::counter("refresh.delta.changed").add(self.changed.len() as u64);
        semrec_obs::counter("refresh.delta.removed").add(self.removed.len() as u64);
        semrec_obs::counter("refresh.delta.unchanged").add(self.unchanged as u64);
    }

    /// Projects this crawl-level delta down to the model-level
    /// [`semrec_core::ModelDelta`] the engine's incremental path consumes.
    ///
    /// Added and removed agents are marked dirty on *both* axes: a removed
    /// agent may survive in the community as a bare dangling trustee (empty
    /// profile), and an added agent may previously have existed as one — in
    /// either case the standing profile for that URI is stale.
    pub fn model_delta(&self) -> semrec_core::ModelDelta {
        let mut delta = semrec_core::ModelDelta::default();
        for agent in &self.added {
            delta.ratings_changed.push(agent.uri.clone());
            delta.trust_changed.push(agent.uri.clone());
        }
        for uri in &self.removed {
            delta.ratings_changed.push(uri.clone());
            delta.trust_changed.push(uri.clone());
        }
        for diff in &self.changed {
            if diff.profile_dirty() {
                delta.ratings_changed.push(diff.uri.clone());
            }
            if diff.trust_dirty() {
                delta.trust_changed.push(diff.uri.clone());
            }
        }
        delta.ratings_changed.sort();
        delta.trust_changed.sort();
        delta
    }
}

/// Diffs one agent's two extractions (same URI).
fn diff_agent(prev: &ExtractedAgent, next: &ExtractedAgent) -> AgentDiff {
    let mut diff = AgentDiff { uri: next.uri.clone(), ..AgentDiff::default() };
    diff_pairs(&prev.trust, &next.trust, &mut diff.trust_set, &mut diff.trust_removed);
    diff_pairs(&prev.ratings, &next.ratings, &mut diff.ratings_set, &mut diff.ratings_removed);
    if prev.knows != next.knows {
        diff.knows = Some(next.knows.clone());
    }
    if prev.see_also != next.see_also {
        diff.see_also = Some(next.see_also.clone());
    }
    diff
}

/// Diffs two key-sorted `(key, value)` lists into set/removed form.
fn diff_pairs(
    previous: &[(String, f64)],
    next: &[(String, f64)],
    set: &mut Vec<(String, f64)>,
    removed: &mut Vec<String>,
) {
    let (mut i, mut j) = (0, 0);
    while i < previous.len() || j < next.len() {
        match (previous.get(i), next.get(j)) {
            (Some(prev), Some(new)) if prev.0 == new.0 => {
                if prev.1 != new.1 {
                    set.push(new.clone());
                }
                i += 1;
                j += 1;
            }
            (Some(prev), Some(new)) if prev.0 < new.0 => {
                removed.push(prev.0.clone());
                i += 1;
            }
            (Some(_), Some(new)) => {
                set.push(new.clone());
                j += 1;
            }
            (Some(prev), None) => {
                removed.push(prev.0.clone());
                i += 1;
            }
            (None, Some(new)) => {
                set.push(new.clone());
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agent(uri: &str, trust: &[(&str, f64)], ratings: &[(&str, f64)]) -> ExtractedAgent {
        ExtractedAgent {
            uri: uri.to_owned(),
            trust: trust.iter().map(|&(u, v)| (u.to_owned(), v)).collect(),
            ratings: ratings.iter().map(|&(u, v)| (u.to_owned(), v)).collect(),
            knows: Vec::new(),
            see_also: Vec::new(),
        }
    }

    #[test]
    fn identical_views_yield_an_empty_delta() {
        let view = vec![agent("a", &[("b", 0.5)], &[("x", 1.0)]), agent("b", &[], &[])];
        let delta = CrawlDelta::between(&view, &view);
        assert!(delta.is_empty());
        assert_eq!(delta.unchanged, 2);
        assert_eq!(delta.touched(), 0);
    }

    #[test]
    fn added_changed_removed_are_separated() {
        let prev = vec![
            agent("a", &[("b", 0.5)], &[("x", 1.0)]),
            agent("b", &[], &[("x", 0.2)]),
            agent("c", &[], &[]),
        ];
        let next = vec![
            agent("a", &[("b", 0.9)], &[("x", 1.0)]),
            agent("c", &[], &[]),
            agent("d", &[], &[("y", 0.1)]),
        ];
        let delta = CrawlDelta::between(&prev, &next);
        assert_eq!(delta.added.len(), 1);
        assert_eq!(delta.added[0].uri, "d");
        assert_eq!(delta.removed, vec!["b".to_owned()]);
        assert_eq!(delta.unchanged, 1);
        assert_eq!(delta.changed.len(), 1);
        let diff = &delta.changed[0];
        assert_eq!(diff.uri, "a");
        assert_eq!(diff.trust_set, vec![("b".to_owned(), 0.9)]);
        assert!(diff.trust_removed.is_empty());
        assert!(!diff.profile_dirty(), "trust-only diff leaves the profile clean");
        assert!(diff.trust_dirty());
    }

    #[test]
    fn rating_removal_and_addition_are_typed() {
        let prev = vec![agent("a", &[], &[("x", 1.0), ("y", 0.5)])];
        let next = vec![agent("a", &[], &[("y", 0.5), ("z", -0.2)])];
        let delta = CrawlDelta::between(&prev, &next);
        let diff = &delta.changed[0];
        assert_eq!(diff.ratings_set, vec![("z".to_owned(), -0.2)]);
        assert_eq!(diff.ratings_removed, vec!["x".to_owned()]);
        assert!(diff.profile_dirty());
        assert!(!diff.trust_dirty());
    }

    #[test]
    fn model_delta_marks_membership_changes_on_both_axes() {
        let prev = vec![agent("a", &[("gone", 1.0)], &[]), agent("gone", &[], &[("x", 1.0)])];
        let next = vec![agent("a", &[], &[]), agent("new", &[], &[])];
        let delta = CrawlDelta::between(&prev, &next);
        let model = delta.model_delta();
        assert_eq!(model.ratings_changed, vec!["gone".to_owned(), "new".to_owned()]);
        assert!(model.trust_changed.contains(&"a".to_owned()), "trust diff on a");
        assert!(model.trust_changed.contains(&"gone".to_owned()));
        assert!(model.trust_changed.contains(&"new".to_owned()));
    }

    #[test]
    fn link_changes_are_carried_but_do_not_dirty_the_model() {
        let mut next_agent = agent("a", &[], &[]);
        next_agent.knows = vec!["b".to_owned()];
        let delta = CrawlDelta::between(&[agent("a", &[], &[])], &[next_agent]);
        let diff = &delta.changed[0];
        assert_eq!(diff.knows.as_deref(), Some(&["b".to_owned()][..]));
        assert!(!diff.profile_dirty());
        assert!(!diff.trust_dirty());
        let model = delta.model_delta();
        assert!(model.ratings_changed.is_empty());
        assert!(model.trust_changed.is_empty());
    }
}
