//! ISBN handling (§4): "Unique identifiers exist for some product groups
//! like books, which are given 'International Standard Book Numbers'".
//!
//! Weblogs reference products through shop hyperlinks; mapping those links
//! onto catalog identifiers requires parsing and normalizing ISBNs. We
//! support ISBN-10 and ISBN-13 validation, check-digit computation and
//! 10 → 13 conversion, normalizing everything to `urn:isbn:` URIs with the
//! ISBN-10 form (the form Amazon ASINs used in 2004).

/// A validated, normalized ISBN-10.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Isbn10(String);

impl Isbn10 {
    /// Parses an ISBN-10 from a string (hyphens/spaces ignored).
    pub fn parse(raw: &str) -> Option<Self> {
        let compact: String = raw
            .chars()
            .filter(|c| !matches!(c, '-' | ' '))
            .map(|c| c.to_ascii_uppercase())
            .collect();
        if compact.len() != 10 {
            return None;
        }
        if !compact[..9].chars().all(|c| c.is_ascii_digit()) {
            return None;
        }
        let last = compact.chars().last().unwrap();
        if !(last.is_ascii_digit() || last == 'X') {
            return None;
        }
        if checksum10(&compact) != 0 {
            return None;
        }
        Some(Isbn10(compact))
    }

    /// The 10 characters, no separators.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The `urn:isbn:` URI form.
    pub fn to_urn(&self) -> String {
        format!("urn:isbn:{}", self.0)
    }

    /// Converts to ISBN-13 (978 prefix).
    pub fn to_isbn13(&self) -> String {
        let body = format!("978{}", &self.0[..9]);
        let check = checkdigit13(&body);
        format!("{body}{check}")
    }
}

/// Weighted mod-11 sum of a 10-character ISBN (0 = valid).
fn checksum10(isbn: &str) -> u32 {
    let mut sum = 0u32;
    for (i, c) in isbn.chars().enumerate() {
        let v = if c == 'X' { 10 } else { c.to_digit(10).unwrap_or(99) };
        if v == 99 {
            return 1;
        }
        sum += (10 - i as u32) * v;
    }
    sum % 11
}

/// The EAN-13 check digit for a 12-digit body.
fn checkdigit13(body: &str) -> u32 {
    let sum: u32 = body
        .chars()
        .enumerate()
        .map(|(i, c)| c.to_digit(10).unwrap() * if i % 2 == 0 { 1 } else { 3 })
        .sum();
    (10 - sum % 10) % 10
}

/// Validates an ISBN-13.
pub fn is_valid_isbn13(raw: &str) -> bool {
    let compact: String = raw.chars().filter(|c| !matches!(c, '-' | ' ')).collect();
    if compact.len() != 13 || !compact.chars().all(|c| c.is_ascii_digit()) {
        return false;
    }
    checkdigit13(&compact[..12]) == compact.chars().last().unwrap().to_digit(10).unwrap()
}

/// Extracts an ISBN-10 from any of the identifier forms found in the wild:
/// `urn:isbn:…`, Amazon product URLs (`…/ASIN/<isbn>/…`, `…/dp/<isbn>`),
/// or a bare (possibly hyphenated) ISBN.
pub fn extract_isbn(raw: &str) -> Option<Isbn10> {
    if let Some(rest) = raw.strip_prefix("urn:isbn:") {
        return Isbn10::parse(rest);
    }
    for marker in ["/ASIN/", "/dp/", "/obidos/ASIN/", "/gp/product/"] {
        if let Some(pos) = raw.find(marker) {
            let tail = &raw[pos + marker.len()..];
            let candidate: String = tail
                .chars()
                .take_while(|&c| c.is_ascii_alphanumeric())
                .collect();
            if let Some(isbn) = Isbn10::parse(&candidate) {
                return Some(isbn);
            }
        }
    }
    Isbn10::parse(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    // 0307887448 is a fully valid ISBN-10 (sum check below).
    const VALID: &str = "0471958697"; // classic valid ISBN-10

    #[test]
    fn parses_valid_isbn10() {
        assert!(Isbn10::parse(VALID).is_some());
        assert!(Isbn10::parse("0-471-95869-7").is_some());
        assert!(Isbn10::parse("0 471 95869 7").is_some());
    }

    #[test]
    fn rejects_bad_check_digits_and_shapes() {
        assert!(Isbn10::parse("0471958698").is_none()); // wrong check digit
        assert!(Isbn10::parse("047195869").is_none()); // too short
        assert!(Isbn10::parse("04719586977").is_none()); // too long
        assert!(Isbn10::parse("04719X8697").is_none()); // X not at end
        assert!(Isbn10::parse("").is_none());
    }

    #[test]
    fn x_check_digit() {
        // 155860832X is a valid ISBN-10 with X check digit.
        assert!(Isbn10::parse("155860832X").is_some());
        assert!(Isbn10::parse("155860832x").is_some(), "lowercase x normalizes");
    }

    #[test]
    fn urn_round_trip() {
        let isbn = Isbn10::parse(VALID).unwrap();
        assert_eq!(isbn.to_urn(), format!("urn:isbn:{VALID}"));
        assert_eq!(extract_isbn(&isbn.to_urn()), Some(isbn));
    }

    #[test]
    fn isbn13_conversion_is_valid_ean() {
        let isbn = Isbn10::parse(VALID).unwrap();
        let thirteen = isbn.to_isbn13();
        assert!(thirteen.starts_with("978"));
        assert!(is_valid_isbn13(&thirteen));
        assert!(!is_valid_isbn13("9780000000000"));
        assert!(!is_valid_isbn13("978"));
    }

    #[test]
    fn extracts_from_amazon_urls() {
        let urls = [
            format!("http://www.amazon.com/exec/obidos/ASIN/{VALID}/ref=something"),
            format!("https://www.amazon.com/dp/{VALID}"),
            format!("https://www.amazon.com/gp/product/{VALID}?tag=x"),
        ];
        for url in urls {
            let isbn = extract_isbn(&url).expect(&url);
            assert_eq!(isbn.as_str(), VALID);
        }
        assert!(extract_isbn("http://www.amazon.com/dp/B000FISHY1").is_none()); // ASIN, not ISBN
        assert!(extract_isbn("http://example.org/no-product").is_none());
    }

    #[test]
    fn synthetic_isbns_from_datagen_parse() {
        // datagen's catalog uses the same checksum; spot-check the format.
        for body_check in ["0000000000", "0000000019"] {
            // Only assert that *valid* synthetic forms parse: 000000000-0 has
            // weighted sum 0 → valid.
            let parsed = Isbn10::parse(body_check);
            if checksum10(body_check) == 0 {
                assert!(parsed.is_some());
            } else {
                assert!(parsed.is_none());
            }
        }
    }
}
