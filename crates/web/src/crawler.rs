//! Crawling the decentralized web and assembling a local [`Community`].
//!
//! §4.1: "Tailored crawlers search the Web for weblogs and ensure data
//! freshness." The crawler does a breadth-first walk from seed homepage
//! URIs, parsing each document and following `rdfs:seeAlso` / `foaf:knows`
//! links, bounded by a hop range (the locality that keeps the §2
//! scalability issue at bay). Fetch+parse of each BFS level fans out over
//! std scoped threads — documents are independent.
//!
//! The web being crawled is unreliable (see [`crate::fault`]): every fetch
//! goes through a [`FetchSource`] and may fail with a typed
//! [`FetchError`]. A [`FetchPolicy`] governs how hard the crawler tries —
//! bounded retries with exponential backoff and deterministic jitter,
//! per-URI attempt budgets, a per-crawl tick deadline — and a per-peer
//! [`CircuitBreaker`] quarantines persistently failing homepages so dead
//! peers stop consuming budget. Whatever stays unreachable is *accounted*,
//! not fatal: the crawl returns the subset it reached plus
//! `unreachable` / `gave_up` / `corrupted` bookkeeping and the typed
//! [`Error`] list, and downstream recommendation runs carry
//! the degradation flag (see `CrawlResult::health`).
//!
//! Instrumentation: each crawl times itself under the `crawl.run` span and
//! counts fetch outcomes globally (`crawl.fetch.parsed` / `.missing` /
//! `.parse_error` / `.reused` / `.retry` / `.gave_up` / `.unreachable` /
//! `.corrupted`) and per BFS level (`crawl.level.<n>.fetches`); breaker
//! openings bump `crawl.breaker.open`.

use std::collections::{HashMap, HashSet};

use semrec_core::{Community, SourceHealth};
use semrec_taxonomy::{Catalog, Taxonomy};

use crate::delta::{AgentDiff, CrawlDelta};
use crate::error::Error;
use crate::extract::{extract_agents, ExtractedAgent};
use crate::fault::{FetchError, FetchSource};
use crate::policy::{BreakerState, CircuitBreaker, FetchPolicy};
use crate::publish::homepage_uri;
use crate::store::DocumentWeb;

/// Crawler configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrawlConfig {
    /// Maximum hops from the seeds (0 = seeds only).
    pub max_range: u32,
    /// Maximum documents to fetch in total.
    pub max_documents: usize,
    /// Worker threads per BFS level.
    pub threads: usize,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig { max_range: 6, max_documents: 100_000, threads: 4 }
    }
}

/// Per-document crawl record, kept so later re-crawls can skip unchanged
/// documents ("tailored crawlers … ensure data freshness", §4.1).
#[derive(Clone, Debug, PartialEq)]
pub struct DocumentSnapshot {
    /// The document version observed.
    pub version: u64,
    /// Agents extracted from this document.
    pub agents: Vec<ExtractedAgent>,
}

/// Result of a crawl.
#[derive(Clone, Debug, Default)]
pub struct CrawlResult {
    /// Agents successfully extracted, sorted by URI.
    pub agents: Vec<ExtractedAgent>,
    /// Documents fetched.
    pub documents_fetched: usize,
    /// URIs that resolved to no document (dangling links).
    pub missing: usize,
    /// Documents that failed to parse.
    pub parse_errors: usize,
    /// Per-document snapshots (document URI → version + extraction).
    pub documents: HashMap<String, DocumentSnapshot>,
    /// Documents whose version was unchanged in a refresh (parse skipped).
    pub reused: usize,
    /// Retry attempts spent across all URIs.
    pub retries: u64,
    /// URIs abandoned after exhausting their retry budget.
    pub gave_up: usize,
    /// URIs never fetched: dead peers, open circuit breakers, or frontier
    /// abandoned at the crawl deadline.
    pub unreachable: usize,
    /// Corrupted (truncated) responses observed across all attempts.
    pub corrupted: usize,
    /// Virtual ticks this crawl consumed (fetch latency + backoff delays,
    /// parallel within a BFS level).
    pub ticks: u64,
    /// Whether the per-crawl deadline cut the crawl short.
    pub deadline_exceeded: bool,
    /// Circuit-breaker transitions that happened during this crawl, in
    /// order: `(peer homepage URI, state entered)`.
    pub breaker_transitions: Vec<(String, BreakerState)>,
    /// Typed record of every failure the crawl survived.
    pub errors: Vec<Error>,
    /// Difference against the previous crawl, when this was a refresh
    /// (`None` on a fresh crawl). Drives the incremental model path.
    pub delta: Option<CrawlDelta>,
}

impl CrawlResult {
    /// Summarizes this crawl as a [`SourceHealth`] for the recommendation
    /// engine: how much of the web the community was assembled from.
    pub fn health(&self) -> SourceHealth {
        SourceHealth {
            attempted: self.documents_fetched + self.missing + self.gave_up + self.unreachable,
            fetched: self.documents_fetched - self.parse_errors,
            unreachable: self.unreachable,
            gave_up: self.gave_up,
            corrupted: self.corrupted,
            parse_errors: self.parse_errors,
        }
    }
}

/// Crawls the web from seed homepage URIs (the reliable, single-attempt
/// path: no retries, breaker never opens).
pub fn crawl(web: &DocumentWeb, seeds: &[String], config: &CrawlConfig) -> CrawlResult {
    let policy = FetchPolicy::no_retry();
    let mut breaker = CircuitBreaker::for_policy(&policy);
    crawl_with(web, seeds, config, &policy, &mut breaker, None)
}

/// Re-crawls from seeds, reusing the extraction of any document whose
/// version is unchanged since `previous` — the asynchronous-update loop of
/// the data-centric environment (§2): agents republish, crawlers refresh.
pub fn refresh(
    web: &DocumentWeb,
    seeds: &[String],
    config: &CrawlConfig,
    previous: &CrawlResult,
) -> CrawlResult {
    let policy = FetchPolicy::no_retry();
    let mut breaker = CircuitBreaker::for_policy(&policy);
    crawl_with(web, seeds, config, &policy, &mut breaker, Some(previous))
}

/// Crawls an unreliable [`FetchSource`] under a [`FetchPolicy`], returning
/// the result together with the circuit-breaker state (pass it to
/// [`refresh_resilient`] so quarantines persist across refreshes).
pub fn crawl_resilient(
    source: &dyn FetchSource,
    seeds: &[String],
    config: &CrawlConfig,
    policy: &FetchPolicy,
) -> (CrawlResult, CircuitBreaker) {
    let mut breaker = CircuitBreaker::for_policy(policy);
    let result = crawl_with(source, seeds, config, policy, &mut breaker, None);
    (result, breaker)
}

/// Re-crawls an unreliable source, reusing unchanged documents from
/// `previous` and carrying breaker state forward in `breaker`.
pub fn refresh_resilient(
    source: &dyn FetchSource,
    seeds: &[String],
    config: &CrawlConfig,
    policy: &FetchPolicy,
    breaker: &mut CircuitBreaker,
    previous: &CrawlResult,
) -> CrawlResult {
    crawl_with(source, seeds, config, policy, breaker, Some(previous))
}

/// The general crawl: BFS over a fallible source with retries, backoff,
/// deadline and breaker — all on the virtual clock, fully deterministic
/// for a fixed `(source, seeds, config, policy, breaker)` state.
pub fn crawl_with(
    source: &dyn FetchSource,
    seeds: &[String],
    config: &CrawlConfig,
    policy: &FetchPolicy,
    breaker: &mut CircuitBreaker,
    previous: Option<&CrawlResult>,
) -> CrawlResult {
    let mut visited: HashSet<String> = HashSet::new();
    let mut frontier: Vec<String> = Vec::new();
    for seed in seeds {
        let uri = homepage_uri(seed);
        if visited.insert(uri.clone()) {
            frontier.push(uri);
        }
    }

    let mut result = CrawlResult::default();
    let mut agents: HashMap<String, ExtractedAgent> = HashMap::new();

    let _run = semrec_obs::span("crawl.run");
    let fetched_parsed = semrec_obs::counter("crawl.fetch.parsed");
    let fetched_missing = semrec_obs::counter("crawl.fetch.missing");
    let fetched_error = semrec_obs::counter("crawl.fetch.parse_error");
    let fetched_reused = semrec_obs::counter("crawl.fetch.reused");
    let fetched_retry = semrec_obs::counter("crawl.fetch.retry");
    let fetched_gave_up = semrec_obs::counter("crawl.fetch.gave_up");
    let fetched_unreachable = semrec_obs::counter("crawl.fetch.unreachable");
    let fetched_corrupted = semrec_obs::counter("crawl.fetch.corrupted");

    let transitions_before = breaker.transitions().len();
    let clock_start = breaker.now();
    let mut clock = clock_start;

    let mut range = 0;
    while !frontier.is_empty() && range <= config.max_range {
        frontier.truncate(config.max_documents.saturating_sub(result.documents_fetched));
        if frontier.is_empty() {
            break;
        }
        // Deadline gate: a crawl out of budget abandons the remaining
        // frontier (accounted, not fatal).
        if policy.deadline.is_some_and(|d| clock - clock_start >= d) {
            result.deadline_exceeded = true;
            result.unreachable += frontier.len();
            fetched_unreachable.add(frontier.len() as u64);
            break;
        }
        // Breaker gate, in deterministic frontier order: quarantined peers
        // are skipped without spending any attempt budget. The per-URI
        // attempt cap keeps the retry loop from overshooting the breaker
        // threshold.
        let mut level: Vec<(String, u32)> = Vec::new();
        for uri in frontier.drain(..) {
            if breaker.allow(&uri, clock) {
                let cap = policy.max_attempts.max(1).min(breaker.attempts_before_open(&uri));
                level.push((uri, cap));
            } else {
                result.unreachable += 1;
                fetched_unreachable.inc();
                result.errors.push(Error::Fetch {
                    uri,
                    error: FetchError::Unavailable,
                    attempts: 0,
                });
            }
        }
        if level.is_empty() {
            range += 1;
            continue;
        }
        semrec_obs::counter(&format!("crawl.level.{range}.fetches")).add(level.len() as u64);

        // Fan fetch+parse out over threads, level-synchronously.
        let threads = config.threads.max(1).min(level.len());
        let chunk = level.len().div_ceil(threads);
        let records: Vec<(String, FetchRecord)> = std::thread::scope(|scope| {
            let handles: Vec<_> = level
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || {
                        part.iter()
                            .map(|(uri, cap)| {
                                (uri.clone(), fetch_with_retries(source, uri, *cap, policy, previous))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("crawler worker panicked")).collect()
        });

        // Sequential merge in frontier order: counters, breaker bookkeeping
        // and link discovery are all deterministic.
        let mut next: Vec<String> = Vec::new();
        let mut level_ticks = 0u64;
        for (uri, record) in records {
            level_ticks = level_ticks.max(record.ticks);
            result.retries += u64::from(record.retries);
            fetched_retry.add(u64::from(record.retries));
            result.corrupted += record.corrupted as usize;
            fetched_corrupted.add(u64::from(record.corrupted));
            for _ in 0..record.failed_attempts() {
                breaker.record_failure(&uri, clock);
            }
            match record.outcome {
                FetchOutcome::Missing => {
                    // The peer answered (with "no such document"): reachable.
                    breaker.record_success(&uri);
                    fetched_missing.inc();
                    result.missing += 1;
                }
                FetchOutcome::ParseError { detail } => {
                    breaker.record_success(&uri);
                    fetched_error.inc();
                    result.documents_fetched += 1;
                    result.parse_errors += 1;
                    result.errors.push(Error::Parse { uri, detail });
                }
                FetchOutcome::GaveUp { error } => {
                    fetched_gave_up.inc();
                    result.gave_up += 1;
                    result.errors.push(Error::Fetch { uri, error, attempts: record.attempts });
                }
                FetchOutcome::Dead => {
                    fetched_unreachable.inc();
                    result.unreachable += 1;
                    result.errors.push(Error::Fetch {
                        uri,
                        error: FetchError::Dead,
                        attempts: record.attempts,
                    });
                }
                FetchOutcome::Parsed { version, extracted, reused } => {
                    breaker.record_success(&uri);
                    fetched_parsed.inc();
                    result.documents_fetched += 1;
                    if reused {
                        fetched_reused.inc();
                        result.reused += 1;
                    }
                    result.documents.insert(
                        uri,
                        DocumentSnapshot { version, agents: extracted.clone() },
                    );
                    for agent in extracted {
                        for link in agent.see_also.iter().cloned().chain(
                            agent.knows.iter().map(|k| homepage_uri(k)),
                        ) {
                            if visited.insert(link.clone()) {
                                next.push(link);
                            }
                        }
                        agents.entry(agent.uri.clone()).or_insert(agent);
                    }
                }
            }
        }
        clock += level_ticks;
        next.sort();
        frontier = next;
        range += 1;
    }

    result.ticks = clock - clock_start;
    breaker.advance_to(clock);
    result.breaker_transitions = breaker.transitions()[transitions_before..].to_vec();

    result.agents = {
        let mut list: Vec<ExtractedAgent> = agents.into_values().collect();
        list.sort_by(|a, b| a.uri.cmp(&b.uri));
        list
    };
    if let Some(prev) = previous {
        let delta = CrawlDelta::between(&prev.agents, &result.agents);
        delta.publish_metrics();
        result.delta = Some(delta);
    }
    result
}

enum FetchOutcome {
    Missing,
    ParseError { detail: String },
    GaveUp { error: FetchError },
    Dead,
    Parsed { version: u64, extracted: Vec<ExtractedAgent>, reused: bool },
}

struct FetchRecord {
    outcome: FetchOutcome,
    /// Attempts actually made.
    attempts: u32,
    /// Retries among those attempts (`attempts - 1` unless aborted early).
    retries: u32,
    /// Corrupted responses observed.
    corrupted: u32,
    /// Virtual ticks this URI's fetch chain consumed (latency + delays).
    ticks: u64,
}

impl FetchRecord {
    /// Failed attempts to charge against the peer's breaker.
    fn failed_attempts(&self) -> u32 {
        match self.outcome {
            // Terminal failure: every attempt failed.
            FetchOutcome::GaveUp { .. } | FetchOutcome::Dead => self.attempts,
            // Terminal success (a response arrived): only the retried
            // attempts before it had failed.
            _ => self.retries,
        }
    }
}

/// One URI's bounded retry loop. Pure: the outcome depends only on the
/// source, the URI, the cap and the policy — never on other threads.
fn fetch_with_retries(
    source: &dyn FetchSource,
    uri: &str,
    attempt_cap: u32,
    policy: &FetchPolicy,
    previous: Option<&CrawlResult>,
) -> FetchRecord {
    let mut record = FetchRecord {
        outcome: FetchOutcome::Missing,
        attempts: 0,
        retries: 0,
        corrupted: 0,
        ticks: 0,
    };
    let mut attempt = 0u32;
    loop {
        record.ticks += source.attempt_ticks(uri, attempt);
        record.attempts = attempt + 1;
        match source.fetch_attempt(uri, attempt) {
            Ok(doc) => {
                record.outcome = parse_document(uri, doc, previous);
                return record;
            }
            Err(FetchError::NotFound) => {
                record.outcome = FetchOutcome::Missing;
                return record;
            }
            Err(FetchError::Dead) => {
                record.outcome = FetchOutcome::Dead;
                return record;
            }
            Err(error) => {
                if error == FetchError::Corrupted {
                    record.corrupted += 1;
                }
                if attempt + 1 >= attempt_cap.max(1) {
                    record.outcome = FetchOutcome::GaveUp { error };
                    return record;
                }
                // Back off before the next attempt (virtual, never slept).
                record.ticks += policy.delay_ticks(uri, attempt);
                record.retries += 1;
                attempt += 1;
            }
        }
    }
}

fn parse_document(
    uri: &str,
    doc: crate::store::Document,
    previous: Option<&CrawlResult>,
) -> FetchOutcome {
    if let Some(prev) = previous.and_then(|p| p.documents.get(uri)) {
        if prev.version == doc.version {
            return FetchOutcome::Parsed {
                version: doc.version,
                extracted: prev.agents.clone(),
                reused: true,
            };
        }
    }
    // Content negotiation: dispatch on the published media type
    // ("documents encoded in RDF, OWL, or similar formats", §2).
    let parsed = match doc.content_type.as_str() {
        "application/rdf+xml" => semrec_rdf::rdfxml::parse(&doc.body),
        _ => semrec_rdf::turtle::parse(&doc.body),
    };
    match parsed {
        Ok(graph) => FetchOutcome::Parsed {
            version: doc.version,
            extracted: extract_agents(&graph),
            reused: false,
        },
        Err(e) => FetchOutcome::ParseError { detail: e.to_string() },
    }
}

/// Statistics from assembling a community out of crawled agents.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AssembleStats {
    /// Agents registered.
    pub agents: usize,
    /// Trust statements applied.
    pub trust_edges: usize,
    /// Ratings applied.
    pub ratings: usize,
    /// Ratings whose product identifier is not in the global catalog.
    pub unknown_products: usize,
    /// Trust statements pointing at agents the crawl never saw; the trustee
    /// is registered as a bare agent (it exists in `A` with empty functions).
    pub dangling_trustees: usize,
}

/// Assembles a [`Community`] from crawled agents over the globally published
/// taxonomy and catalog (§3.1: those are centrally maintained and public).
pub fn assemble_community(
    agents: &[ExtractedAgent],
    taxonomy: Taxonomy,
    catalog: Catalog,
) -> (Community, AssembleStats) {
    CommunityBuilder::new(agents).build(taxonomy, catalog)
}

/// The standing crawl view a community is assembled from: the full list of
/// extracted agents, kept sorted by URI, shared by the fresh and the
/// incremental path.
///
/// A fresh crawl builds one via [`CommunityBuilder::new`]; each refresh
/// round folds its [`CrawlDelta`] in via
/// [`apply_delta`](CommunityBuilder::apply_delta) and rebuilds. Because
/// *both* paths assemble through the same [`build`](CommunityBuilder::build)
/// over the same merged agent list, the incremental community is
/// byte-identical to a from-scratch re-assembly by construction — including
/// agent-id numbering, which depends on registration order and would
/// otherwise drift under membership changes.
#[derive(Clone, Debug, Default)]
pub struct CommunityBuilder {
    agents: Vec<ExtractedAgent>,
}

impl CommunityBuilder {
    /// Starts from a crawl's extracted agents (deduplicated, sorted by URI
    /// — the order [`CrawlResult::agents`] already has).
    pub fn new(agents: &[ExtractedAgent]) -> Self {
        let mut agents = agents.to_vec();
        agents.sort_by(|a, b| a.uri.cmp(&b.uri));
        agents.dedup_by(|a, b| a.uri == b.uri);
        CommunityBuilder { agents }
    }

    /// The current agent list, sorted by URI.
    pub fn agents(&self) -> &[ExtractedAgent] {
        &self.agents
    }

    /// Folds a refresh round's delta into the standing view. After this,
    /// the list equals what the refresh crawl extracted — byte-identical to
    /// `CommunityBuilder::new(&refresh_result.agents)`.
    pub fn apply_delta(&mut self, delta: &CrawlDelta) {
        for uri in &delta.removed {
            if let Ok(pos) = self.agents.binary_search_by(|a| a.uri.as_str().cmp(uri)) {
                self.agents.remove(pos);
            }
        }
        for agent in &delta.added {
            match self.agents.binary_search_by(|a| a.uri.as_str().cmp(&agent.uri)) {
                Ok(pos) => self.agents[pos] = agent.clone(),
                Err(pos) => self.agents.insert(pos, agent.clone()),
            }
        }
        for diff in &delta.changed {
            let Ok(pos) = self.agents.binary_search_by(|a| a.uri.as_str().cmp(&diff.uri))
            else {
                debug_assert!(false, "changed agent {} missing from standing view", diff.uri);
                continue;
            };
            apply_diff(&mut self.agents[pos], diff);
        }
    }

    /// Assembles the community: agents in URI order, then trustees seen
    /// only as targets in first-reference order, then trust edges and
    /// ratings (unknown products are counted, not fatal).
    pub fn build(&self, taxonomy: Taxonomy, catalog: Catalog) -> (Community, AssembleStats) {
        let agents = &self.agents;
        let mut community = Community::new(taxonomy, catalog);
        let mut stats = AssembleStats::default();

        for agent in agents {
            if community.agent_by_uri(&agent.uri).is_none() {
                community.add_agent(agent.uri.clone()).expect("fresh URI");
                stats.agents += 1;
            }
        }
        // Register trustees seen only as targets.
        for agent in agents {
            for (trustee, _) in &agent.trust {
                if community.agent_by_uri(trustee).is_none() {
                    community.add_agent(trustee.clone()).expect("fresh URI");
                    stats.agents += 1;
                    stats.dangling_trustees += 1;
                }
            }
        }

        for agent in agents {
            let me = community.agent_by_uri(&agent.uri).expect("registered above");
            for (trustee, value) in &agent.trust {
                let peer = community.agent_by_uri(trustee).expect("registered above");
                if me != peer && community.trust.set_trust(me, peer, *value).is_ok() {
                    stats.trust_edges += 1;
                }
            }
            for (identifier, score) in &agent.ratings {
                match community.catalog.by_identifier(identifier) {
                    Some(product) => {
                        community.set_rating(me, product, *score).expect("validated on extract");
                        stats.ratings += 1;
                    }
                    None => stats.unknown_products += 1,
                }
            }
        }
        (community, stats)
    }
}

/// Applies one agent's diff to their standing extraction, keeping the
/// key-sorted order [`crate::extract::extract_agents`] guarantees.
fn apply_diff(agent: &mut ExtractedAgent, diff: &AgentDiff) {
    apply_pairs(&mut agent.trust, &diff.trust_set, &diff.trust_removed);
    apply_pairs(&mut agent.ratings, &diff.ratings_set, &diff.ratings_removed);
    if let Some(knows) = &diff.knows {
        agent.knows = knows.clone();
    }
    if let Some(see_also) = &diff.see_also {
        agent.see_also = see_also.clone();
    }
}

/// Applies set/removed operations to a key-sorted `(key, value)` list.
fn apply_pairs(list: &mut Vec<(String, f64)>, set: &[(String, f64)], removed: &[String]) {
    for key in removed {
        if let Ok(pos) = list.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            list.remove(pos);
        }
    }
    for (key, value) in set {
        match list.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(pos) => list[pos].1 = *value,
            Err(pos) => list.insert(pos, (key.clone(), *value)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultyWeb};
    use crate::publish::publish_community;
    use semrec_core::Community;
    use semrec_taxonomy::fixtures::example1;
    use semrec_trust::AgentId;

    /// A chain community alice → bob → carol → dave (trust), with ratings.
    fn chain() -> (Community, Vec<AgentId>) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let names = ["alice", "bob", "carol", "dave"];
        let agents: Vec<_> = names
            .iter()
            .map(|n| c.add_agent(format!("http://ex.org/{n}#me")).unwrap())
            .collect();
        for w in agents.windows(2) {
            c.trust.set_trust(w[0], w[1], 0.8).unwrap();
        }
        for (i, &a) in agents.iter().enumerate() {
            c.set_rating(a, products[i % 4], 1.0).unwrap();
        }
        (c, agents)
    }

    #[test]
    fn crawl_discovers_the_reachable_chain() {
        let (c, _) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let result = crawl(
            &web,
            &["http://ex.org/alice#me".to_owned()],
            &CrawlConfig::default(),
        );
        assert_eq!(result.agents.len(), 4);
        assert_eq!(result.documents_fetched, 4);
        assert_eq!(result.parse_errors, 0);
        assert_eq!(result.missing, 0);
        assert_eq!(result.retries, 0);
        assert_eq!(result.gave_up, 0);
        assert_eq!(result.unreachable, 0);
        assert!(!result.deadline_exceeded);
        assert!(result.errors.is_empty());
        assert!(result.breaker_transitions.is_empty());
        assert!(result.health().coverage() > 0.999);
        assert!(!result.health().is_degraded());
    }

    #[test]
    fn range_bounds_the_crawl() {
        let (c, _) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let result = crawl(
            &web,
            &["http://ex.org/alice#me".to_owned()],
            &CrawlConfig { max_range: 1, ..Default::default() },
        );
        // Range 1: alice (level 0) + bob (level 1); carol is 2 hops out.
        assert_eq!(result.agents.len(), 2);
    }

    #[test]
    fn document_cap_bounds_the_crawl() {
        let (c, _) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let result = crawl(
            &web,
            &["http://ex.org/alice#me".to_owned()],
            &CrawlConfig { max_documents: 2, ..Default::default() },
        );
        assert!(result.documents_fetched <= 2);
    }

    #[test]
    fn dangling_links_and_parse_errors_are_counted() {
        let (c, _) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        web.remove("http://ex.org/carol");
        web.publish("http://ex.org/bob", "@prefix broken", "text/turtle");
        let result = crawl(
            &web,
            &["http://ex.org/alice#me".to_owned()],
            &CrawlConfig::default(),
        );
        assert_eq!(result.parse_errors, 1);
        // bob's page broke, so carol's URI is never even discovered.
        assert_eq!(result.agents.len(), 1);
        // The parse failure is recorded as a typed error.
        assert_eq!(result.errors.len(), 1);
        assert_eq!(result.errors[0].uri(), Some("http://ex.org/bob"));
        assert!(matches!(result.errors[0], Error::Parse { .. }));
        assert!(result.health().is_degraded());
    }

    #[test]
    fn crawl_then_assemble_round_trips_the_community() {
        let (c, agents) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let result = crawl(
            &web,
            &["http://ex.org/alice#me".to_owned()],
            &CrawlConfig::default(),
        );
        let (rebuilt, stats) =
            assemble_community(&result.agents, c.taxonomy.clone(), c.catalog.clone());
        assert_eq!(stats.agents, 4);
        assert_eq!(stats.trust_edges, 3);
        assert_eq!(stats.ratings, 4);
        assert_eq!(stats.unknown_products, 0);
        assert_eq!(stats.dangling_trustees, 0);
        // Identical trust values and ratings, possibly renumbered ids.
        for &a in &agents {
            let uri = &c.agent(a).unwrap().uri;
            let ra = rebuilt.agent_by_uri(uri).unwrap();
            assert_eq!(rebuilt.ratings_of(ra).len(), c.ratings_of(a).len());
            for &(peer, w) in c.trust.out_edges(a) {
                let peer_uri = &c.agent(peer).unwrap().uri;
                let rp = rebuilt.agent_by_uri(peer_uri).unwrap();
                assert_eq!(rebuilt.trust.trust(ra, rp), Some(w));
            }
        }
    }

    #[test]
    fn assemble_handles_unknown_products_and_dangling_trustees() {
        let e = example1();
        let agents = vec![ExtractedAgent {
            uri: "http://ex.org/a#me".into(),
            trust: vec![("http://ex.org/ghost#me".into(), 0.5)],
            ratings: vec![
                ("urn:isbn:0521386322".into(), 1.0), // known: Matrix Analysis
                ("urn:isbn:9999999999".into(), 1.0), // unknown
            ],
            knows: vec![],
            see_also: vec![],
        }];
        let (community, stats) = assemble_community(&agents, e.fig.taxonomy, e.catalog);
        assert_eq!(stats.agents, 2);
        assert_eq!(stats.dangling_trustees, 1);
        assert_eq!(stats.ratings, 1);
        assert_eq!(stats.unknown_products, 1);
        assert_eq!(community.agent_count(), 2);
    }

    #[test]
    fn rdfxml_homepages_crawl_identically() {
        let (c, _) = chain();
        let turtle_web = DocumentWeb::new();
        publish_community(&c, &turtle_web);
        let xml_web = DocumentWeb::new();
        crate::publish::publish_community_as(
            &c,
            &xml_web,
            crate::publish::DocumentFormat::RdfXml,
        );
        let seeds = vec!["http://ex.org/alice#me".to_owned()];
        let from_turtle = crawl(&turtle_web, &seeds, &CrawlConfig::default());
        let from_xml = crawl(&xml_web, &seeds, &CrawlConfig::default());
        assert_eq!(from_xml.parse_errors, 0);
        assert_eq!(from_turtle.agents, from_xml.agents,
            "both serializations must extract the same model");
    }

    #[test]
    fn refresh_reuses_unchanged_documents() {
        let (c, _) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let seeds = vec!["http://ex.org/alice#me".to_owned()];
        let first = crawl(&web, &seeds, &CrawlConfig::default());
        assert_eq!(first.reused, 0);
        assert_eq!(first.documents.len(), 4);

        // Nothing changed: every document is reused, extraction identical.
        let second = refresh(&web, &seeds, &CrawlConfig::default(), &first);
        assert_eq!(second.reused, 4);
        assert_eq!(second.agents, first.agents);

        // Bob republishes with a new rating: exactly one document re-parsed.
        let mut c2 = c.clone();
        let bob = c2.agent_by_uri("http://ex.org/bob#me").unwrap();
        let product = c2.catalog.iter().nth(3).unwrap();
        c2.set_rating(bob, product, 0.9).unwrap();
        web.publish(
            "http://ex.org/bob",
            crate::publish::homepage_turtle(&c2, bob),
            "text/turtle",
        );
        let third = refresh(&web, &seeds, &CrawlConfig::default(), &second);
        assert_eq!(third.reused, 3);
        let bob_extract = third.agents.iter().find(|a| a.uri.contains("bob")).unwrap();
        assert_eq!(bob_extract.ratings.len(), 2);
    }

    #[test]
    fn refresh_discovers_new_agents() {
        let (mut c, agents) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let seeds = vec!["http://ex.org/alice#me".to_owned()];
        let first = crawl(&web, &seeds, &CrawlConfig::default());
        assert_eq!(first.agents.len(), 4);

        // Dave befriends a newcomer and republishes.
        let eve = c.add_agent("http://ex.org/eve#me").unwrap();
        c.trust.set_trust(agents[3], eve, 0.7).unwrap();
        web.publish(
            "http://ex.org/dave",
            crate::publish::homepage_turtle(&c, agents[3]),
            "text/turtle",
        );
        web.publish("http://ex.org/eve", crate::publish::homepage_turtle(&c, eve), "text/turtle");

        let second = refresh(&web, &seeds, &CrawlConfig::default(), &first);
        assert_eq!(second.agents.len(), 5, "the newcomer must be discovered");
        assert_eq!(second.reused, 3, "only unchanged documents are reused");
    }

    #[test]
    fn refresh_emits_a_typed_delta() {
        let (c, _) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let seeds = vec!["http://ex.org/alice#me".to_owned()];
        let first = crawl(&web, &seeds, &CrawlConfig::default());
        assert!(first.delta.is_none(), "a fresh crawl has no previous view to diff");

        let second = refresh(&web, &seeds, &CrawlConfig::default(), &first);
        let delta = second.delta.as_ref().expect("refreshes always diff");
        assert!(delta.is_empty());
        assert_eq!(delta.unchanged, 4);

        // Bob republishes with a new rating: the delta names exactly him.
        let mut c2 = c.clone();
        let bob = c2.agent_by_uri("http://ex.org/bob#me").unwrap();
        let product = c2.catalog.iter().nth(3).unwrap();
        c2.set_rating(bob, product, 0.9).unwrap();
        web.publish(
            "http://ex.org/bob",
            crate::publish::homepage_turtle(&c2, bob),
            "text/turtle",
        );
        let third = refresh(&web, &seeds, &CrawlConfig::default(), &second);
        let delta = third.delta.as_ref().unwrap();
        assert_eq!(delta.changed.len(), 1);
        assert_eq!(delta.changed[0].uri, "http://ex.org/bob#me");
        assert!(delta.changed[0].profile_dirty());
        assert!(!delta.changed[0].trust_dirty());
        assert!(delta.added.is_empty() && delta.removed.is_empty());
        assert_eq!(delta.unchanged, 3);
    }

    #[test]
    fn reuse_heavy_refresh_reports_full_health() {
        // Satellite regression: version-reused documents are skipped before
        // parsing but still count as attempted+fetched — a fully-reused
        // refresh must not look like a near-empty, degraded source.
        let (c, _) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let seeds = vec!["http://ex.org/alice#me".to_owned()];
        let first = crawl(&web, &seeds, &CrawlConfig::default());
        let second = refresh(&web, &seeds, &CrawlConfig::default(), &first);
        assert_eq!(second.reused, 4, "everything is version-unchanged");
        let health = second.health();
        assert_eq!(health.attempted, 4);
        assert_eq!(health.fetched, 4);
        assert!(health.coverage() > 0.999);
        assert!(!health.is_degraded());
        assert_eq!(health, first.health(), "reuse must not change the health picture");
    }

    #[test]
    fn builder_apply_delta_matches_a_fresh_view() {
        let (mut c, agents) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let seeds = vec!["http://ex.org/alice#me".to_owned()];
        let first = crawl(&web, &seeds, &CrawlConfig::default());
        let mut builder = CommunityBuilder::new(&first.agents);

        // A churn round touching every delta kind: bob re-rates, dave
        // befriends a newcomer, carol's rating disappears.
        let products: Vec<_> = c.catalog.iter().collect();
        let bob = c.agent_by_uri("http://ex.org/bob#me").unwrap();
        c.set_rating(bob, products[3], -0.5).unwrap();
        let carol = c.agent_by_uri("http://ex.org/carol#me").unwrap();
        assert!(c.remove_rating(carol, products[2]));
        let eve = c.add_agent("http://ex.org/eve#me").unwrap();
        c.set_rating(eve, products[0], 1.0).unwrap();
        c.trust.set_trust(agents[3], eve, 0.7).unwrap();
        for agent in [bob, carol, agents[3], eve] {
            let uri = c.agent(agent).unwrap().uri.clone();
            let homepage = uri.trim_end_matches("#me").to_owned();
            web.publish(&homepage, crate::publish::homepage_turtle(&c, agent), "text/turtle");
        }

        let second = refresh(&web, &seeds, &CrawlConfig::default(), &first);
        builder.apply_delta(second.delta.as_ref().unwrap());
        assert_eq!(
            builder.agents(),
            &second.agents[..],
            "delta-folded view must equal the fresh extraction byte-for-byte"
        );
        // And the assembled communities agree, including id numbering.
        let (incremental, istats) =
            builder.build(c.taxonomy.clone(), c.catalog.clone());
        let (fresh, fstats) =
            assemble_community(&second.agents, c.taxonomy.clone(), c.catalog.clone());
        assert_eq!(istats, fstats);
        assert_eq!(incremental.agent_count(), fresh.agent_count());
        for a in fresh.agents() {
            assert_eq!(incremental.agent(a).unwrap(), fresh.agent(a).unwrap());
            assert_eq!(incremental.ratings_of(a), fresh.ratings_of(a));
            assert_eq!(incremental.trust.out_edges(a), fresh.trust.out_edges(a));
        }
    }

    #[test]
    fn parallel_crawl_is_deterministic() {
        let (c, _) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let seeds = vec!["http://ex.org/alice#me".to_owned()];
        let a = crawl(&web, &seeds, &CrawlConfig { threads: 1, ..Default::default() });
        let b = crawl(&web, &seeds, &CrawlConfig { threads: 8, ..Default::default() });
        assert_eq!(a.agents, b.agents);
    }

    // --- resilience ----------------------------------------------------------

    #[test]
    fn retries_recover_transient_faults() {
        let (c, _) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let seeds = vec!["http://ex.org/alice#me".to_owned()];
        // A high transient rate: single-attempt crawls lose part of the
        // chain, retried crawls recover all of it.
        let faulty = FaultyWeb::new(&web, FaultPlan::transient(0.6, 11));
        let policy = FetchPolicy { max_attempts: 12, ..FetchPolicy::default() };
        let (result, _) = crawl_resilient(&faulty, &seeds, &CrawlConfig::default(), &policy);
        assert_eq!(result.agents.len(), 4, "retries must recover the whole chain");
        assert!(result.retries > 0, "a 60% fault rate must force retries");
        assert!(result.ticks > 4, "backoff delays must consume virtual time");
        assert!(result.health().is_degraded() || result.gave_up == 0);
    }

    #[test]
    fn give_up_accounting_is_honest() {
        let (c, _) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let seeds = vec!["http://ex.org/alice#me".to_owned()];
        // Certain failure, one attempt: everything reachable gives up.
        let faulty = FaultyWeb::new(&web, FaultPlan::transient(1.0, 1));
        let policy = FetchPolicy { max_attempts: 2, ..FetchPolicy::default() };
        let (result, _) = crawl_resilient(&faulty, &seeds, &CrawlConfig::default(), &policy);
        assert_eq!(result.agents.len(), 0);
        assert_eq!(result.gave_up, 1, "only the seed is ever discovered");
        assert_eq!(result.retries, 1);
        let health = result.health();
        assert!(health.is_degraded());
        assert_eq!(health.coverage(), 0.0);
        assert!(matches!(
            result.errors[0],
            Error::Fetch { error: FetchError::Unavailable, attempts: 2, .. }
        ));
    }

    #[test]
    fn dead_peers_are_unreachable_and_open_the_breaker_across_refreshes() {
        let (c, _) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let seeds = vec!["http://ex.org/alice#me".to_owned()];
        // Kill carol specifically: a plan where only her URI is dead.
        let plan = FaultPlan { dead_rate: 0.25, seed: find_seed_killing(&web, "carol"), ..FaultPlan::none() };
        assert!(plan.is_dead("http://ex.org/carol"));
        let faulty = FaultyWeb::new(&web, plan);
        let policy = FetchPolicy { breaker_threshold: 2, ..FetchPolicy::default() };
        let (first, mut breaker) =
            crawl_resilient(&faulty, &seeds, &CrawlConfig::default(), &policy);
        assert!(first.unreachable >= 1, "the dead peer is unreachable");
        assert!(first.agents.len() < 4);

        // Refreshing against the same breaker: repeated dead-peer failures
        // eventually open the circuit and stop consuming fetch attempts.
        let mut last = first;
        for _ in 0..4 {
            last = refresh_resilient(
                &faulty,
                &seeds,
                &CrawlConfig::default(),
                &policy,
                &mut breaker,
                &last,
            );
        }
        assert!(
            breaker.times_opened() >= 1,
            "persistent failures must open the breaker: {:?}",
            breaker.transitions()
        );
    }

    /// Finds a seed under which carol (and only carol, among the chain's
    /// four homepages) is dead at a 25% dead rate.
    fn find_seed_killing(web: &DocumentWeb, victim: &str) -> u64 {
        (0..10_000)
            .find(|&seed| {
                let plan = FaultPlan { dead_rate: 0.25, seed, ..FaultPlan::none() };
                web.uris().iter().all(|uri| plan.is_dead(uri) == uri.contains(victim))
            })
            .expect("some seed kills exactly the victim")
    }

    #[test]
    fn deadline_abandons_the_remaining_frontier() {
        let (c, _) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let seeds = vec!["http://ex.org/alice#me".to_owned()];
        // Each level costs 1 tick (chain ⇒ one document per level); a
        // 2-tick budget reaches alice and bob only.
        let policy = FetchPolicy { deadline: Some(2), ..FetchPolicy::no_retry() };
        let faulty = FaultyWeb::new(&web, FaultPlan::none());
        let (result, _) = crawl_resilient(&faulty, &seeds, &CrawlConfig::default(), &policy);
        assert!(result.deadline_exceeded);
        assert_eq!(result.agents.len(), 2, "alice and bob fit in the budget");
        assert_eq!(result.unreachable, 1, "carol's document was abandoned");
    }

    #[test]
    fn zero_fault_resilient_crawl_matches_the_plain_crawl() {
        let (c, _) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let seeds = vec!["http://ex.org/alice#me".to_owned()];
        let plain = crawl(&web, &seeds, &CrawlConfig::default());
        let faulty = FaultyWeb::new(&web, FaultPlan::none());
        let (resilient, _) =
            crawl_resilient(&faulty, &seeds, &CrawlConfig::default(), &FetchPolicy::default());
        assert_eq!(plain.agents, resilient.agents);
        assert_eq!(plain.documents_fetched, resilient.documents_fetched);
        assert_eq!(resilient.retries, 0);
        assert_eq!(resilient.gave_up + resilient.unreachable + resilient.corrupted, 0);
    }

    #[test]
    fn fault_injected_crawls_are_thread_count_invariant() {
        let (c, _) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let seeds = vec!["http://ex.org/alice#me".to_owned()];
        let policy = FetchPolicy { max_attempts: 3, ..FetchPolicy::default() };
        let run = |threads: usize| {
            let faulty = FaultyWeb::new(&web, FaultPlan::transient(0.4, 5));
            let (result, breaker) = crawl_resilient(
                &faulty,
                &seeds,
                &CrawlConfig { threads, ..Default::default() },
                &policy,
            );
            (result, breaker)
        };
        let (a, ba) = run(1);
        let (b, bb) = run(8);
        assert_eq!(a.agents, b.agents);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.gave_up, b.gave_up);
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.breaker_transitions, b.breaker_transitions);
        assert_eq!(ba.transitions(), bb.transitions());
        assert_eq!(a.errors, b.errors);
    }
}
