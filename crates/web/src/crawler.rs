//! Crawling the decentralized web and assembling a local [`Community`].
//!
//! §4.1: "Tailored crawlers search the Web for weblogs and ensure data
//! freshness." The crawler does a breadth-first walk from seed homepage
//! URIs, parsing each document and following `rdfs:seeAlso` / `foaf:knows`
//! links, bounded by a hop range (the locality that keeps the §2
//! scalability issue at bay). Fetch+parse of each BFS level fans out over
//! std scoped threads — documents are independent.
//!
//! Instrumentation: each crawl times itself under the `crawl.run` span and
//! counts fetch outcomes globally (`crawl.fetch.parsed` / `.missing` /
//! `.parse_error` / `.reused`) and per BFS level
//! (`crawl.level.<n>.fetches`), so the shape of the frontier is visible in
//! the metrics dump.

use std::collections::{HashMap, HashSet};

use semrec_core::Community;
use semrec_taxonomy::{Catalog, Taxonomy};

use crate::extract::{extract_agents, ExtractedAgent};
use crate::publish::homepage_uri;
use crate::store::DocumentWeb;

/// Crawler configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrawlConfig {
    /// Maximum hops from the seeds (0 = seeds only).
    pub max_range: u32,
    /// Maximum documents to fetch in total.
    pub max_documents: usize,
    /// Worker threads per BFS level.
    pub threads: usize,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig { max_range: 6, max_documents: 100_000, threads: 4 }
    }
}

/// Per-document crawl record, kept so later re-crawls can skip unchanged
/// documents ("tailored crawlers … ensure data freshness", §4.1).
#[derive(Clone, Debug, PartialEq)]
pub struct DocumentSnapshot {
    /// The document version observed.
    pub version: u64,
    /// Agents extracted from this document.
    pub agents: Vec<ExtractedAgent>,
}

/// Result of a crawl.
#[derive(Clone, Debug, Default)]
pub struct CrawlResult {
    /// Agents successfully extracted, sorted by URI.
    pub agents: Vec<ExtractedAgent>,
    /// Documents fetched.
    pub documents_fetched: usize,
    /// URIs that resolved to no document (dangling links).
    pub missing: usize,
    /// Documents that failed to parse.
    pub parse_errors: usize,
    /// Per-document snapshots (document URI → version + extraction).
    pub documents: HashMap<String, DocumentSnapshot>,
    /// Documents whose version was unchanged in a refresh (parse skipped).
    pub reused: usize,
}

/// Crawls the web from seed homepage URIs.
pub fn crawl(web: &DocumentWeb, seeds: &[String], config: &CrawlConfig) -> CrawlResult {
    crawl_inner(web, seeds, config, None)
}

/// Re-crawls from seeds, reusing the extraction of any document whose
/// version is unchanged since `previous` — the asynchronous-update loop of
/// the data-centric environment (§2): agents republish, crawlers refresh.
pub fn refresh(
    web: &DocumentWeb,
    seeds: &[String],
    config: &CrawlConfig,
    previous: &CrawlResult,
) -> CrawlResult {
    crawl_inner(web, seeds, config, Some(previous))
}

fn crawl_inner(
    web: &DocumentWeb,
    seeds: &[String],
    config: &CrawlConfig,
    previous: Option<&CrawlResult>,
) -> CrawlResult {
    let mut visited: HashSet<String> = HashSet::new();
    let mut frontier: Vec<String> = Vec::new();
    for seed in seeds {
        let uri = homepage_uri(seed);
        if visited.insert(uri.clone()) {
            frontier.push(uri);
        }
    }

    let mut result = CrawlResult::default();
    let mut agents: HashMap<String, ExtractedAgent> = HashMap::new();

    let _run = semrec_obs::span("crawl.run");
    let fetched_parsed = semrec_obs::counter("crawl.fetch.parsed");
    let fetched_missing = semrec_obs::counter("crawl.fetch.missing");
    let fetched_error = semrec_obs::counter("crawl.fetch.parse_error");
    let fetched_reused = semrec_obs::counter("crawl.fetch.reused");

    let mut range = 0;
    while !frontier.is_empty() && range <= config.max_range {
        frontier.truncate(config.max_documents.saturating_sub(result.documents_fetched));
        if frontier.is_empty() {
            break;
        }
        semrec_obs::counter(&format!("crawl.level.{range}.fetches"))
            .add(frontier.len() as u64);
        // Fan fetch+parse out over threads, level-synchronously.
        let threads = config.threads.max(1).min(frontier.len());
        let chunk = frontier.len().div_ceil(threads);
        let outcomes: Vec<(String, FetchOutcome)> = std::thread::scope(|scope| {
            let handles: Vec<_> = frontier
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || {
                        part.iter()
                            .map(|uri| (uri.clone(), fetch_one(web, uri, previous)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("crawler worker panicked")).collect()
        });

        let mut next: Vec<String> = Vec::new();
        for (uri, outcome) in outcomes {
            match outcome {
                FetchOutcome::Missing => {
                    fetched_missing.inc();
                    result.missing += 1;
                }
                FetchOutcome::ParseError => {
                    fetched_error.inc();
                    result.documents_fetched += 1;
                    result.parse_errors += 1;
                }
                FetchOutcome::Parsed { version, extracted, reused } => {
                    fetched_parsed.inc();
                    result.documents_fetched += 1;
                    if reused {
                        fetched_reused.inc();
                        result.reused += 1;
                    }
                    result.documents.insert(
                        uri,
                        DocumentSnapshot { version, agents: extracted.clone() },
                    );
                    for agent in extracted {
                        for link in agent.see_also.iter().cloned().chain(
                            agent.knows.iter().map(|k| homepage_uri(k)),
                        ) {
                            if visited.insert(link.clone()) {
                                next.push(link);
                            }
                        }
                        agents.entry(agent.uri.clone()).or_insert(agent);
                    }
                }
            }
        }
        next.sort();
        frontier = next;
        range += 1;
    }

    result.agents = {
        let mut list: Vec<ExtractedAgent> = agents.into_values().collect();
        list.sort_by(|a, b| a.uri.cmp(&b.uri));
        list
    };
    result
}

enum FetchOutcome {
    Missing,
    ParseError,
    Parsed { version: u64, extracted: Vec<ExtractedAgent>, reused: bool },
}

fn fetch_one(web: &DocumentWeb, uri: &str, previous: Option<&CrawlResult>) -> FetchOutcome {
    match web.fetch(uri) {
        None => FetchOutcome::Missing,
        Some(doc) => {
            if let Some(prev) = previous.and_then(|p| p.documents.get(uri)) {
                if prev.version == doc.version {
                    return FetchOutcome::Parsed {
                        version: doc.version,
                        extracted: prev.agents.clone(),
                        reused: true,
                    };
                }
            }
            // Content negotiation: dispatch on the published media type
            // ("documents encoded in RDF, OWL, or similar formats", §2).
            let parsed = match doc.content_type.as_str() {
                "application/rdf+xml" => semrec_rdf::rdfxml::parse(&doc.body),
                _ => semrec_rdf::turtle::parse(&doc.body),
            };
            match parsed {
                Ok(graph) => FetchOutcome::Parsed {
                    version: doc.version,
                    extracted: extract_agents(&graph),
                    reused: false,
                },
                Err(_) => FetchOutcome::ParseError,
            }
        }
    }
}

/// Statistics from assembling a community out of crawled agents.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AssembleStats {
    /// Agents registered.
    pub agents: usize,
    /// Trust statements applied.
    pub trust_edges: usize,
    /// Ratings applied.
    pub ratings: usize,
    /// Ratings whose product identifier is not in the global catalog.
    pub unknown_products: usize,
    /// Trust statements pointing at agents the crawl never saw; the trustee
    /// is registered as a bare agent (it exists in `A` with empty functions).
    pub dangling_trustees: usize,
}

/// Assembles a [`Community`] from crawled agents over the globally published
/// taxonomy and catalog (§3.1: those are centrally maintained and public).
pub fn assemble_community(
    agents: &[ExtractedAgent],
    taxonomy: Taxonomy,
    catalog: Catalog,
) -> (Community, AssembleStats) {
    let mut community = Community::new(taxonomy, catalog);
    let mut stats = AssembleStats::default();

    for agent in agents {
        if community.agent_by_uri(&agent.uri).is_none() {
            community.add_agent(agent.uri.clone()).expect("fresh URI");
            stats.agents += 1;
        }
    }
    // Register trustees seen only as targets.
    for agent in agents {
        for (trustee, _) in &agent.trust {
            if community.agent_by_uri(trustee).is_none() {
                community.add_agent(trustee.clone()).expect("fresh URI");
                stats.agents += 1;
                stats.dangling_trustees += 1;
            }
        }
    }

    for agent in agents {
        let me = community.agent_by_uri(&agent.uri).expect("registered above");
        for (trustee, value) in &agent.trust {
            let peer = community.agent_by_uri(trustee).expect("registered above");
            if me != peer && community.trust.set_trust(me, peer, *value).is_ok() {
                stats.trust_edges += 1;
            }
        }
        for (identifier, score) in &agent.ratings {
            match community.catalog.by_identifier(identifier) {
                Some(product) => {
                    community.set_rating(me, product, *score).expect("validated on extract");
                    stats.ratings += 1;
                }
                None => stats.unknown_products += 1,
            }
        }
    }
    (community, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publish::publish_community;
    use semrec_core::Community;
    use semrec_taxonomy::fixtures::example1;
    use semrec_trust::AgentId;

    /// A chain community alice → bob → carol → dave (trust), with ratings.
    fn chain() -> (Community, Vec<AgentId>) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let names = ["alice", "bob", "carol", "dave"];
        let agents: Vec<_> = names
            .iter()
            .map(|n| c.add_agent(format!("http://ex.org/{n}#me")).unwrap())
            .collect();
        for w in agents.windows(2) {
            c.trust.set_trust(w[0], w[1], 0.8).unwrap();
        }
        for (i, &a) in agents.iter().enumerate() {
            c.set_rating(a, products[i % 4], 1.0).unwrap();
        }
        (c, agents)
    }

    #[test]
    fn crawl_discovers_the_reachable_chain() {
        let (c, _) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let result = crawl(
            &web,
            &["http://ex.org/alice#me".to_owned()],
            &CrawlConfig::default(),
        );
        assert_eq!(result.agents.len(), 4);
        assert_eq!(result.documents_fetched, 4);
        assert_eq!(result.parse_errors, 0);
        assert_eq!(result.missing, 0);
    }

    #[test]
    fn range_bounds_the_crawl() {
        let (c, _) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let result = crawl(
            &web,
            &["http://ex.org/alice#me".to_owned()],
            &CrawlConfig { max_range: 1, ..Default::default() },
        );
        // Range 1: alice (level 0) + bob (level 1); carol is 2 hops out.
        assert_eq!(result.agents.len(), 2);
    }

    #[test]
    fn document_cap_bounds_the_crawl() {
        let (c, _) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let result = crawl(
            &web,
            &["http://ex.org/alice#me".to_owned()],
            &CrawlConfig { max_documents: 2, ..Default::default() },
        );
        assert!(result.documents_fetched <= 2);
    }

    #[test]
    fn dangling_links_and_parse_errors_are_counted() {
        let (c, _) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        web.remove("http://ex.org/carol");
        web.publish("http://ex.org/bob", "@prefix broken", "text/turtle");
        let result = crawl(
            &web,
            &["http://ex.org/alice#me".to_owned()],
            &CrawlConfig::default(),
        );
        assert_eq!(result.parse_errors, 1);
        // bob's page broke, so carol's URI is never even discovered.
        assert_eq!(result.agents.len(), 1);
    }

    #[test]
    fn crawl_then_assemble_round_trips_the_community() {
        let (c, agents) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let result = crawl(
            &web,
            &["http://ex.org/alice#me".to_owned()],
            &CrawlConfig::default(),
        );
        let (rebuilt, stats) =
            assemble_community(&result.agents, c.taxonomy.clone(), c.catalog.clone());
        assert_eq!(stats.agents, 4);
        assert_eq!(stats.trust_edges, 3);
        assert_eq!(stats.ratings, 4);
        assert_eq!(stats.unknown_products, 0);
        assert_eq!(stats.dangling_trustees, 0);
        // Identical trust values and ratings, possibly renumbered ids.
        for &a in &agents {
            let uri = &c.agent(a).unwrap().uri;
            let ra = rebuilt.agent_by_uri(uri).unwrap();
            assert_eq!(rebuilt.ratings_of(ra).len(), c.ratings_of(a).len());
            for &(peer, w) in c.trust.out_edges(a) {
                let peer_uri = &c.agent(peer).unwrap().uri;
                let rp = rebuilt.agent_by_uri(peer_uri).unwrap();
                assert_eq!(rebuilt.trust.trust(ra, rp), Some(w));
            }
        }
    }

    #[test]
    fn assemble_handles_unknown_products_and_dangling_trustees() {
        let e = example1();
        let agents = vec![ExtractedAgent {
            uri: "http://ex.org/a#me".into(),
            trust: vec![("http://ex.org/ghost#me".into(), 0.5)],
            ratings: vec![
                ("urn:isbn:0521386322".into(), 1.0), // known: Matrix Analysis
                ("urn:isbn:9999999999".into(), 1.0), // unknown
            ],
            knows: vec![],
            see_also: vec![],
        }];
        let (community, stats) = assemble_community(&agents, e.fig.taxonomy, e.catalog);
        assert_eq!(stats.agents, 2);
        assert_eq!(stats.dangling_trustees, 1);
        assert_eq!(stats.ratings, 1);
        assert_eq!(stats.unknown_products, 1);
        assert_eq!(community.agent_count(), 2);
    }

    #[test]
    fn rdfxml_homepages_crawl_identically() {
        let (c, _) = chain();
        let turtle_web = DocumentWeb::new();
        publish_community(&c, &turtle_web);
        let xml_web = DocumentWeb::new();
        crate::publish::publish_community_as(
            &c,
            &xml_web,
            crate::publish::DocumentFormat::RdfXml,
        );
        let seeds = vec!["http://ex.org/alice#me".to_owned()];
        let from_turtle = crawl(&turtle_web, &seeds, &CrawlConfig::default());
        let from_xml = crawl(&xml_web, &seeds, &CrawlConfig::default());
        assert_eq!(from_xml.parse_errors, 0);
        assert_eq!(from_turtle.agents, from_xml.agents,
            "both serializations must extract the same model");
    }

    #[test]
    fn refresh_reuses_unchanged_documents() {
        let (c, _) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let seeds = vec!["http://ex.org/alice#me".to_owned()];
        let first = crawl(&web, &seeds, &CrawlConfig::default());
        assert_eq!(first.reused, 0);
        assert_eq!(first.documents.len(), 4);

        // Nothing changed: every document is reused, extraction identical.
        let second = refresh(&web, &seeds, &CrawlConfig::default(), &first);
        assert_eq!(second.reused, 4);
        assert_eq!(second.agents, first.agents);

        // Bob republishes with a new rating: exactly one document re-parsed.
        let mut c2 = c.clone();
        let bob = c2.agent_by_uri("http://ex.org/bob#me").unwrap();
        let product = c2.catalog.iter().nth(3).unwrap();
        c2.set_rating(bob, product, 0.9).unwrap();
        web.publish(
            "http://ex.org/bob",
            crate::publish::homepage_turtle(&c2, bob),
            "text/turtle",
        );
        let third = refresh(&web, &seeds, &CrawlConfig::default(), &second);
        assert_eq!(third.reused, 3);
        let bob_extract = third.agents.iter().find(|a| a.uri.contains("bob")).unwrap();
        assert_eq!(bob_extract.ratings.len(), 2);
    }

    #[test]
    fn refresh_discovers_new_agents() {
        let (mut c, agents) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let seeds = vec!["http://ex.org/alice#me".to_owned()];
        let first = crawl(&web, &seeds, &CrawlConfig::default());
        assert_eq!(first.agents.len(), 4);

        // Dave befriends a newcomer and republishes.
        let eve = c.add_agent("http://ex.org/eve#me").unwrap();
        c.trust.set_trust(agents[3], eve, 0.7).unwrap();
        web.publish(
            "http://ex.org/dave",
            crate::publish::homepage_turtle(&c, agents[3]),
            "text/turtle",
        );
        web.publish("http://ex.org/eve", crate::publish::homepage_turtle(&c, eve), "text/turtle");

        let second = refresh(&web, &seeds, &CrawlConfig::default(), &first);
        assert_eq!(second.agents.len(), 5, "the newcomer must be discovered");
        assert_eq!(second.reused, 3, "only unchanged documents are reused");
    }

    #[test]
    fn parallel_crawl_is_deterministic() {
        let (c, _) = chain();
        let web = DocumentWeb::new();
        publish_community(&c, &web);
        let seeds = vec!["http://ex.org/alice#me".to_owned()];
        let a = crawl(&web, &seeds, &CrawlConfig { threads: 1, ..Default::default() });
        let b = crawl(&web, &seeds, &CrawlConfig { threads: 8, ..Default::default() });
        assert_eq!(a.agents, b.agents);
    }
}
