//! Resilience policy for crawling an unreliable web: bounded retries with
//! exponential backoff and deterministic jitter, per-crawl deadlines, and a
//! per-peer circuit breaker.
//!
//! Everything here runs on the crawler's *virtual clock* (ticks, see
//! [`crate::fault::FetchSource::attempt_ticks`]): backoff delays and breaker
//! cooldowns are charged as ticks, never as wall time, so resilient crawls
//! stay deterministic across runs and thread counts. Jitter is derived by
//! hashing `(jitter_seed, uri, retry)` — stateless like the fault plan.

use std::collections::BTreeMap;

use crate::fault::{stable_hash, unit};

/// Retry/backoff/deadline/breaker configuration of a resilient crawl.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FetchPolicy {
    /// Maximum fetch attempts per URI (≥ 1; 1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in ticks.
    pub backoff_base: u64,
    /// Multiplier applied per further retry (values < 1 are treated as 1,
    /// keeping the schedule monotone).
    pub backoff_factor: f64,
    /// Upper bound on any single backoff delay, in ticks.
    pub backoff_cap: u64,
    /// Jitter band as a fraction of the backoff delay: the jittered delay
    /// lies in `[backoff, backoff · (1 + jitter))`. Clamped to `[0, 1]`.
    pub jitter: f64,
    /// Seed for the deterministic jitter hash.
    pub jitter_seed: u64,
    /// Per-crawl budget in virtual ticks; frontier URIs beyond the deadline
    /// are abandoned (counted unreachable). `None` = unbounded.
    pub deadline: Option<u64>,
    /// Consecutive per-peer failures that open the circuit breaker.
    pub breaker_threshold: u32,
    /// Ticks an open breaker waits before allowing a half-open probe.
    pub breaker_cooldown: u64,
}

impl Default for FetchPolicy {
    fn default() -> Self {
        FetchPolicy {
            max_attempts: 4,
            backoff_base: 1,
            backoff_factor: 2.0,
            backoff_cap: 64,
            jitter: 0.5,
            jitter_seed: 0,
            deadline: None,
            breaker_threshold: 6,
            breaker_cooldown: 128,
        }
    }
}

impl FetchPolicy {
    /// The single-attempt policy: no retries, no deadline, breaker never
    /// opens. [`crate::crawler::crawl`] uses it — the pre-resilience
    /// behavior, byte for byte.
    pub fn no_retry() -> Self {
        FetchPolicy {
            max_attempts: 1,
            breaker_threshold: u32::MAX,
            ..FetchPolicy::default()
        }
    }

    /// The pre-jitter backoff delay before retry number `retry` (0-based),
    /// in ticks: `min(cap, base · factor^retry)`. Monotonically
    /// non-decreasing in `retry` and never above the cap.
    pub fn backoff_ticks(&self, retry: u32) -> u64 {
        let factor = if self.backoff_factor > 1.0 { self.backoff_factor } else { 1.0 };
        let raw = self.backoff_base as f64 * factor.powi(retry.min(1024) as i32);
        if !raw.is_finite() || raw >= self.backoff_cap as f64 {
            self.backoff_cap
        } else {
            raw as u64
        }
    }

    /// The deterministic jitter added on top of [`FetchPolicy::backoff_ticks`]
    /// for this `(uri, retry)`: uniform in `[0, jitter · backoff)`.
    pub fn jitter_ticks(&self, uri: &str, retry: u32) -> u64 {
        let backoff = self.backoff_ticks(retry);
        let band = self.jitter.clamp(0.0, 1.0) * backoff as f64;
        (unit(stable_hash(self.jitter_seed, uri, retry as u64, SALT_JITTER)) * band) as u64
    }

    /// The full delay charged before retry number `retry`: backoff + jitter.
    pub fn delay_ticks(&self, uri: &str, retry: u32) -> u64 {
        self.backoff_ticks(retry).saturating_add(self.jitter_ticks(uri, retry))
    }
}

const SALT_JITTER: u64 = 0xd6e8_feb8_6659_fd93;

/// Circuit breaker state for one peer (keyed by homepage document URI).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Fetches flow normally; consecutive failures are counted.
    Closed,
    /// The peer is quarantined: fetches are denied until the cooldown
    /// elapses.
    Open,
    /// Cooldown elapsed: exactly one probe attempt is allowed; success
    /// closes the breaker, failure re-opens it.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

#[derive(Clone, Debug)]
struct BreakerEntry {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: u64,
}

/// Per-peer circuit breakers, keyed by homepage document URI.
///
/// Mutations happen only in the crawler's sequential merge phase (never
/// inside fetch workers), and the entry map is a `BTreeMap`, so transition
/// logs are deterministic. State persists across crawls when the same
/// breaker is passed to successive [`crate::crawler::refresh_resilient`]
/// calls — that is what lets dead peers stop consuming budget run after
/// run.
#[derive(Clone, Debug, Default)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: u64,
    entries: BTreeMap<String, BreakerEntry>,
    transitions: Vec<(String, BreakerState)>,
    times_opened: u64,
    clock: u64,
}

impl CircuitBreaker {
    /// A breaker that opens after `threshold` consecutive failures and
    /// probes again after `cooldown` ticks.
    pub fn new(threshold: u32, cooldown: u64) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            entries: BTreeMap::new(),
            transitions: Vec::new(),
            times_opened: 0,
            clock: 0,
        }
    }

    /// A breaker configured from a fetch policy.
    pub fn for_policy(policy: &FetchPolicy) -> Self {
        CircuitBreaker::new(policy.breaker_threshold, policy.breaker_cooldown)
    }

    /// The current state for a peer (peers never seen are `Closed`).
    pub fn state(&self, key: &str) -> BreakerState {
        self.entries.get(key).map_or(BreakerState::Closed, |e| e.state)
    }

    /// Consecutive failures currently recorded against a peer.
    pub fn consecutive_failures(&self, key: &str) -> u32 {
        self.entries.get(key).map_or(0, |e| e.consecutive_failures)
    }

    /// How many attempts a fetch of this peer may spend before the breaker
    /// would open: callers cap their retry loops with it so a failing peer
    /// never overshoots the threshold.
    pub fn attempts_before_open(&self, key: &str) -> u32 {
        match self.state(key) {
            BreakerState::Closed => {
                self.threshold.saturating_sub(self.consecutive_failures(key)).max(1)
            }
            // A half-open breaker allows exactly one probe.
            BreakerState::HalfOpen | BreakerState::Open => 1,
        }
    }

    /// Whether a fetch of this peer may proceed at virtual time `now`.
    /// An open breaker whose cooldown has elapsed transitions to half-open
    /// and allows one probe.
    pub fn allow(&mut self, key: &str, now: u64) -> bool {
        let Some(entry) = self.entries.get_mut(key) else { return true };
        match entry.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now.saturating_sub(entry.opened_at) >= self.cooldown {
                    entry.state = BreakerState::HalfOpen;
                    self.transitions.push((key.to_owned(), BreakerState::HalfOpen));
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful fetch: closes the breaker and clears the
    /// failure streak.
    pub fn record_success(&mut self, key: &str) {
        if let Some(entry) = self.entries.get_mut(key) {
            if entry.state != BreakerState::Closed {
                entry.state = BreakerState::Closed;
                self.transitions.push((key.to_owned(), BreakerState::Closed));
            }
            entry.consecutive_failures = 0;
        }
    }

    /// Records one failed fetch attempt at virtual time `now`. Reaching the
    /// threshold (or failing a half-open probe) opens the breaker and bumps
    /// the global `crawl.breaker.open` counter.
    pub fn record_failure(&mut self, key: &str, now: u64) {
        let entry = self.entries.entry(key.to_owned()).or_insert(BreakerEntry {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: 0,
        });
        entry.consecutive_failures = entry.consecutive_failures.saturating_add(1);
        let opens = match entry.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => entry.consecutive_failures >= self.threshold,
            BreakerState::Open => false,
        };
        if opens {
            entry.state = BreakerState::Open;
            entry.opened_at = now;
            self.times_opened += 1;
            self.transitions.push((key.to_owned(), BreakerState::Open));
            semrec_obs::counter("crawl.breaker.open").inc();
        }
    }

    /// Every state transition since construction, in order:
    /// `(peer key, state entered)`.
    pub fn transitions(&self) -> &[(String, BreakerState)] {
        &self.transitions
    }

    /// Total number of times any breaker opened.
    pub fn times_opened(&self) -> u64 {
        self.times_opened
    }

    /// Peers currently in the open state.
    pub fn open_peers(&self) -> usize {
        self.entries.values().filter(|e| e.state == BreakerState::Open).count()
    }

    /// The breaker's virtual clock: total ticks observed across every crawl
    /// it has been threaded through. Open-state cooldowns are measured
    /// against it, so quarantines carry over between refreshes.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Advances the virtual clock to `now` (monotone; earlier values are
    /// ignored). Crawls call this on completion; embedding simulations may
    /// also call it to let time pass between crawls.
    pub fn advance_to(&mut self, now: u64) {
        self.clock = self.clock.max(now);
    }

    /// Advances the virtual clock by `ticks`.
    pub fn advance(&mut self, ticks: u64) {
        self.clock = self.clock.saturating_add(ticks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_monotone_and_capped() {
        let policy = FetchPolicy::default();
        let mut previous = 0;
        for retry in 0..40 {
            let d = policy.backoff_ticks(retry);
            assert!(d >= previous, "backoff must not decrease");
            assert!(d <= policy.backoff_cap);
            previous = d;
        }
        assert_eq!(policy.backoff_ticks(0), 1);
        assert_eq!(policy.backoff_ticks(39), policy.backoff_cap);
    }

    #[test]
    fn jitter_stays_in_band_and_is_deterministic() {
        let policy = FetchPolicy { jitter: 0.5, ..FetchPolicy::default() };
        for retry in 0..10 {
            let backoff = policy.backoff_ticks(retry);
            let jitter = policy.jitter_ticks("http://ex.org/a", retry);
            assert!(jitter as f64 <= 0.5 * backoff as f64);
            assert_eq!(jitter, policy.jitter_ticks("http://ex.org/a", retry));
        }
    }

    #[test]
    fn no_retry_policy_gives_single_attempts() {
        let policy = FetchPolicy::no_retry();
        assert_eq!(policy.max_attempts, 1);
        let breaker = CircuitBreaker::for_policy(&policy);
        assert_eq!(breaker.attempts_before_open("x"), u32::MAX);
    }

    #[test]
    fn breaker_opens_at_threshold_and_half_opens_after_cooldown() {
        let mut breaker = CircuitBreaker::new(3, 10);
        let key = "http://ex.org/a";
        assert!(breaker.allow(key, 0));
        breaker.record_failure(key, 0);
        breaker.record_failure(key, 1);
        assert_eq!(breaker.state(key), BreakerState::Closed);
        breaker.record_failure(key, 2);
        assert_eq!(breaker.state(key), BreakerState::Open);
        assert_eq!(breaker.times_opened(), 1);
        assert_eq!(breaker.open_peers(), 1);

        // Denied during cooldown, half-open probe afterwards.
        assert!(!breaker.allow(key, 5));
        assert!(breaker.allow(key, 12));
        assert_eq!(breaker.state(key), BreakerState::HalfOpen);

        // A failed probe re-opens immediately.
        breaker.record_failure(key, 12);
        assert_eq!(breaker.state(key), BreakerState::Open);
        assert_eq!(breaker.times_opened(), 2);

        // A successful probe closes.
        assert!(breaker.allow(key, 30));
        breaker.record_success(key);
        assert_eq!(breaker.state(key), BreakerState::Closed);
        assert_eq!(breaker.consecutive_failures(key), 0);
        assert_eq!(
            breaker.transitions().last(),
            Some(&(key.to_owned(), BreakerState::Closed))
        );
    }

    #[test]
    fn attempts_before_open_caps_retry_loops() {
        let mut breaker = CircuitBreaker::new(4, 10);
        let key = "http://ex.org/b";
        assert_eq!(breaker.attempts_before_open(key), 4);
        breaker.record_failure(key, 0);
        breaker.record_failure(key, 0);
        assert_eq!(breaker.attempts_before_open(key), 2);
        breaker.record_failure(key, 0);
        breaker.record_failure(key, 0);
        assert_eq!(breaker.state(key), BreakerState::Open);
        assert_eq!(breaker.attempts_before_open(key), 1);
    }

    #[test]
    fn successes_keep_the_breaker_closed_forever() {
        let mut breaker = CircuitBreaker::new(2, 10);
        let key = "http://ex.org/c";
        for now in 0..20 {
            breaker.record_failure(key, now);
            breaker.record_success(key);
        }
        assert_eq!(breaker.state(key), BreakerState::Closed);
        assert_eq!(breaker.times_opened(), 0);
    }
}
