//! Weblog mining (§4): implicit product votes from hyperlinks.
//!
//! "Some crawlers extract certain hyperlinks from weblogs and analyze their
//! makeup and content. Hereby, those referring to product pages from large
//! catalogs like Amazon count as implicit votes for these goods. Mappings
//! between hyperlinks and some sort of unique identifier are required."
//!
//! This module renders simple HTML weblog pages with Amazon-style product
//! links and mines them back: every hyperlink that resolves to a valid ISBN
//! becomes an implicit positive vote.

use semrec_core::Community;
use semrec_trust::AgentId;

use crate::isbn::{extract_isbn, Isbn10};

/// One weblog entry: free text plus linked products.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeblogEntry {
    /// Entry title.
    pub title: String,
    /// Entry body text.
    pub body: String,
    /// ISBNs of products linked from the entry.
    pub linked_products: Vec<Isbn10>,
}

/// Renders a weblog page (title + entries) to minimal HTML.
pub fn render_weblog(author: &str, entries: &[WeblogEntry]) -> String {
    let mut html = String::new();
    html.push_str("<!DOCTYPE html>\n<html><head><title>");
    html.push_str(&escape(author));
    html.push_str("'s weblog</title></head>\n<body>\n");
    for entry in entries {
        html.push_str("<article>\n<h2>");
        html.push_str(&escape(&entry.title));
        html.push_str("</h2>\n<p>");
        html.push_str(&escape(&entry.body));
        html.push_str("</p>\n<ul>\n");
        for isbn in &entry.linked_products {
            html.push_str(&format!(
                "<li><a href=\"http://www.amazon.com/exec/obidos/ASIN/{}/ref=nosim\">a book I read</a></li>\n",
                isbn.as_str()
            ));
        }
        html.push_str("</ul>\n</article>\n");
    }
    html.push_str("</body></html>\n");
    html
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// All `href` attribute values in an HTML document (naïve but sufficient
/// scanner: `href="..."` / `href='...'`).
pub fn extract_hrefs(html: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = html.as_bytes();
    let needle = b"href=";
    let mut i = 0;
    while i + needle.len() < bytes.len() {
        if &bytes[i..i + needle.len()] == needle {
            let quote = bytes[i + needle.len()];
            if quote == b'"' || quote == b'\'' {
                let start = i + needle.len() + 1;
                if let Some(end) = html[start..].find(quote as char) {
                    out.push(html[start..start + end].to_owned());
                    i = start + end;
                }
            }
        }
        i += 1;
    }
    out
}

/// Mines implicit product votes from a weblog page: hyperlinks that resolve
/// to valid ISBNs, deduplicated, in first-appearance order.
pub fn mine_weblog(html: &str) -> Vec<Isbn10> {
    let mut seen = std::collections::HashSet::new();
    extract_hrefs(html)
        .iter()
        .filter_map(|href| extract_isbn(href))
        .filter(|isbn| seen.insert(isbn.clone()))
        .collect()
}

/// Applies mined weblog votes as implicit positive ratings (§4: links to
/// product pages "count as implicit votes for these goods").
///
/// Votes whose ISBN resolves in the catalog become ratings of 1.0 unless the
/// agent already rated the product explicitly (explicit beats implicit).
/// Returns `(applied, unknown_products, already_rated)`.
pub fn apply_weblog_votes(
    community: &mut Community,
    author: AgentId,
    votes: &[Isbn10],
) -> (usize, usize, usize) {
    let mut applied = 0;
    let mut unknown = 0;
    let mut already = 0;
    for isbn in votes {
        match community.catalog.by_identifier(&isbn.to_urn()) {
            Some(product) => {
                if community.rating(author, product).is_some() {
                    already += 1;
                } else {
                    community
                        .set_rating(author, product, 1.0)
                        .expect("author and product validated");
                    applied += 1;
                }
            }
            None => unknown += 1,
        }
    }
    (applied, unknown, already)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn isbn(s: &str) -> Isbn10 {
        Isbn10::parse(s).unwrap()
    }

    #[test]
    fn render_and_mine_round_trip() {
        let entries = vec![
            WeblogEntry {
                title: "Books & <math>".into(),
                body: "Read two great ones".into(),
                linked_products: vec![isbn("0471958697"), isbn("155860832X")],
            },
            WeblogEntry {
                title: "Re-read".into(),
                body: "Still great".into(),
                linked_products: vec![isbn("0471958697")], // duplicate vote
            },
        ];
        let html = render_weblog("alice", &entries);
        assert!(html.contains("&amp;"));
        assert!(html.contains("&lt;math&gt;"));
        let mined = mine_weblog(&html);
        assert_eq!(mined, vec![isbn("0471958697"), isbn("155860832X")]);
    }

    #[test]
    fn extract_hrefs_handles_both_quote_styles() {
        let html = r#"<a href="http://a.example/x">x</a><a href='http://b.example/y'>y</a>"#;
        assert_eq!(extract_hrefs(html), vec!["http://a.example/x", "http://b.example/y"]);
    }

    #[test]
    fn non_product_links_are_ignored() {
        let html = r#"
            <a href="http://www.amazon.com/exec/obidos/ASIN/0471958697/ref=x">book</a>
            <a href="http://example.org/blog">blog</a>
            <a href="http://www.amazon.com/exec/obidos/ASIN/B00005A1J3/">gadget</a>
        "#;
        let mined = mine_weblog(html);
        assert_eq!(mined, vec![isbn("0471958697")]);
    }

    #[test]
    fn empty_and_malformed_html() {
        assert!(mine_weblog("").is_empty());
        assert!(mine_weblog("<a href=>x</a> href=\"unterminated").is_empty());
        assert!(extract_hrefs("href=\"dangling").is_empty());
    }

    #[test]
    fn votes_become_implicit_ratings() {
        use semrec_taxonomy::{Catalog, Taxonomy, TopicId};
        let mut b = Taxonomy::builder("Books");
        let topic = b.add_topic("Fiction", TopicId::TOP).unwrap();
        let t = b.build();
        let mut catalog = Catalog::new();
        let known = catalog
            .add_product(&t, "urn:isbn:0471958697", "A known book", vec![topic])
            .unwrap();
        let rated = catalog
            .add_product(&t, "urn:isbn:155860832X", "Already rated", vec![topic])
            .unwrap();
        let mut community = Community::new(t, catalog);
        let author = community.add_agent("http://ex.org/blogger#me").unwrap();
        community.set_rating(author, rated, -0.5).unwrap();

        let votes = vec![
            isbn("0471958697"),
            isbn("155860832X"),
            isbn("0201896834"), // valid ISBN, not in catalog
        ];
        let (applied, unknown, already) = apply_weblog_votes(&mut community, author, &votes);
        assert_eq!((applied, unknown, already), (1, 1, 1));
        assert_eq!(community.rating(author, known), Some(1.0));
        // Explicit dislike survives the implicit vote.
        assert_eq!(community.rating(author, rated), Some(-0.5));
    }

    #[test]
    fn empty_weblog_renders() {
        let html = render_weblog("bob", &[]);
        assert!(html.contains("bob's weblog"));
        assert!(mine_weblog(&html).is_empty());
    }
}
