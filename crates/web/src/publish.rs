//! Publishing machine-readable homepages (§4).
//!
//! "FOAF defines machine-readable homepages based upon RDF and allows
//! weaving acquaintance networks. Golbeck has proposed some modifications
//! making FOAF support 'real' trust relationships instead of mere
//! acquaintanceship." Each agent's homepage carries:
//!
//! * a `foaf:Person` description with `foaf:knows` acquaintance links,
//! * reified `trust:Statement`s with continuous values (the Golbeck-style
//!   extension, §3.1's `t_i`),
//! * reified `rec:Rating`s with `urn:isbn:` product URIs (BLAM!-style
//!   machine-readable weblog ratings, §3.1's `r_i`),
//! * `rdfs:seeAlso` links to peers' homepage documents, which is what makes
//!   the network crawlable.

use semrec_core::Community;
use semrec_rdf::{vocab, BlankNode, Graph, Iri, Literal, Triple};
use semrec_trust::AgentId;

/// Derives the homepage *document* URI from an agent URI (fragment stripped).
pub fn homepage_uri(agent_uri: &str) -> String {
    match agent_uri.find('#') {
        Some(pos) => agent_uri[..pos].to_owned(),
        None => agent_uri.to_owned(),
    }
}

/// Builds the RDF graph of one agent's homepage.
pub fn homepage_graph(community: &Community, agent: AgentId) -> Graph {
    let info = community.agent(agent).expect("agent exists");
    let me = Iri::new_unchecked(info.uri.clone());
    let mut g = Graph::new();
    g.insert(Triple::new(me.clone(), vocab::rdf::type_(), vocab::foaf::person()));
    g.insert(Triple::new(
        me.clone(),
        vocab::foaf::nick(),
        Literal::simple(format!("agent-{}", agent.index())),
    ));

    for (i, &(peer, weight)) in community.trust.out_edges(agent).iter().enumerate() {
        let peer_uri = &community.agent(peer).expect("peer exists").uri;
        let peer_iri = Iri::new_unchecked(peer_uri.clone());
        g.insert(Triple::new(me.clone(), vocab::foaf::knows(), peer_iri.clone()));
        g.insert(Triple::new(
            me.clone(),
            vocab::rdfs::see_also(),
            Iri::new_unchecked(homepage_uri(peer_uri)),
        ));
        let stmt = BlankNode::new(format!("t{}_{i}", agent.index())).expect("valid label");
        g.insert(Triple::new(stmt.clone(), vocab::rdf::type_(), vocab::trust::statement()));
        g.insert(Triple::new(stmt.clone(), vocab::trust::truster(), me.clone()));
        g.insert(Triple::new(stmt.clone(), vocab::trust::trustee(), peer_iri));
        g.insert(Triple::new(stmt, vocab::trust::value(), Literal::decimal(weight)));
    }

    for (i, &(product, score)) in community.ratings_of(agent).iter().enumerate() {
        let identifier = &community.catalog.product(product).identifier;
        let rating = BlankNode::new(format!("r{}_{i}", agent.index())).expect("valid label");
        g.insert(Triple::new(rating.clone(), vocab::rdf::type_(), vocab::rec::rating()));
        g.insert(Triple::new(rating.clone(), vocab::rec::rater(), me.clone()));
        g.insert(Triple::new(
            rating.clone(),
            vocab::rec::product(),
            Iri::new_unchecked(identifier.clone()),
        ));
        g.insert(Triple::new(rating, vocab::rec::score(), Literal::decimal(score)));
    }
    g
}

/// Serializes one agent's homepage to Turtle.
pub fn homepage_turtle(community: &Community, agent: AgentId) -> String {
    semrec_rdf::writer::to_turtle(&homepage_graph(community, agent))
}

/// Serializes one agent's homepage to RDF/XML — the syntax FOAF actually
/// shipped in when the paper was written.
pub fn homepage_rdfxml(community: &Community, agent: AgentId) -> String {
    semrec_rdf::rdfxml::to_rdfxml(&homepage_graph(community, agent))
        .expect("homepage vocabularies serialize to RDF/XML")
}

/// The serialization an agent publishes their homepage in. "Messages are
/// exchanged by publishing or updating documents encoded in RDF, OWL, or
/// similar formats" (§2) — the crawler handles both transparently.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DocumentFormat {
    /// Turtle (`text/turtle`).
    #[default]
    Turtle,
    /// RDF/XML (`application/rdf+xml`), the 2004-era FOAF syntax.
    RdfXml,
}

impl DocumentFormat {
    /// The media type published with documents in this format.
    pub fn content_type(self) -> &'static str {
        match self {
            DocumentFormat::Turtle => "text/turtle",
            DocumentFormat::RdfXml => "application/rdf+xml",
        }
    }
}

/// Publishes every agent's homepage into a [`crate::store::DocumentWeb`].
///
/// Returns the number of documents published.
pub fn publish_community(community: &Community, web: &crate::store::DocumentWeb) -> usize {
    publish_community_as(community, web, DocumentFormat::Turtle)
}

/// Like [`publish_community`], with an explicit serialization format.
pub fn publish_community_as(
    community: &Community,
    web: &crate::store::DocumentWeb,
    format: DocumentFormat,
) -> usize {
    let mut count = 0;
    for agent in community.agents() {
        let uri = homepage_uri(&community.agent(agent).expect("agent exists").uri);
        let body = match format {
            DocumentFormat::Turtle => homepage_turtle(community, agent),
            DocumentFormat::RdfXml => homepage_rdfxml(community, agent),
        };
        web.publish(uri, body, format.content_type());
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_rdf::{turtle, Subject, Term};
    use semrec_taxonomy::fixtures::example1;

    fn community() -> (Community, Vec<AgentId>) {
        let e = example1();
        let products: Vec<_> = e.catalog.iter().collect();
        let mut c = Community::new(e.fig.taxonomy, e.catalog);
        let alice = c.add_agent("http://ex.org/alice#me").unwrap();
        let bob = c.add_agent("http://ex.org/bob#me").unwrap();
        c.trust.set_trust(alice, bob, 0.75).unwrap();
        c.set_rating(alice, products[0], 1.0).unwrap();
        c.set_rating(alice, products[2], -0.5).unwrap();
        (c, vec![alice, bob])
    }

    #[test]
    fn homepage_uri_strips_fragment() {
        assert_eq!(homepage_uri("http://ex.org/alice#me"), "http://ex.org/alice");
        assert_eq!(homepage_uri("http://ex.org/alice"), "http://ex.org/alice");
    }

    #[test]
    fn homepage_contains_person_trust_and_ratings() {
        let (c, agents) = community();
        let g = homepage_graph(&c, agents[0]);
        let me: Subject = Iri::new("http://ex.org/alice#me").unwrap().into();
        assert_eq!(
            g.object_for(&me, &vocab::rdf::type_()),
            Some(Term::Iri(vocab::foaf::person()))
        );
        assert_eq!(
            g.triples_matching(None, Some(&vocab::trust::value()), None).count(),
            1
        );
        assert_eq!(
            g.triples_matching(None, Some(&vocab::rec::score()), None).count(),
            2
        );
        // seeAlso points at bob's homepage document.
        assert_eq!(
            g.object_for(&me, &vocab::rdfs::see_also()),
            Some(Term::Iri(Iri::new("http://ex.org/bob").unwrap()))
        );
    }

    #[test]
    fn turtle_output_parses_back() {
        let (c, agents) = community();
        let doc = homepage_turtle(&c, agents[0]);
        let parsed = turtle::parse(&doc).unwrap();
        assert_eq!(parsed, homepage_graph(&c, agents[0]));
    }

    #[test]
    fn publish_community_covers_every_agent() {
        let (c, _) = community();
        let web = crate::store::DocumentWeb::new();
        let n = publish_community(&c, &web);
        assert_eq!(n, 2);
        assert_eq!(web.len(), 2);
        let doc = web.fetch("http://ex.org/alice").unwrap();
        assert_eq!(doc.content_type, "text/turtle");
        assert!(doc.body.contains("foaf:Person"));
    }
}
