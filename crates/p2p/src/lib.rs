//! # semrec-p2p — gossip-based neighborhood formation, peer to peer
//!
//! §2 frames the Semantic Web as an *asynchronous, data-centric*
//! environment with no central crawler; ROADMAP item 4 (after Diaz-Aviles,
//! Schmidt-Thieme & Ziegler, *Emergence of Spontaneous Order Through
//! Neighborhood Formation in Peer-to-Peer Recommender Systems*) asks what
//! happens when every agent runs its own node. This crate simulates exactly
//! that: N peers on the shared virtual-tick axis, each one a self-contained
//! composition of subsystems that already exist —
//!
//! * a **bounded local crawl** of its own homepage surroundings
//!   (`semrec-web`: [`FaultPlan`](semrec_web::fault::FaultPlan) faults,
//!   [`FetchPolicy`](semrec_web::policy::FetchPolicy) retries, a per-peer
//!   [`CircuitBreaker`](semrec_web::policy::CircuitBreaker) that carries
//!   over from crawling into gossip);
//! * a **local knowledge base** of [`record::AgentRecord`]s — each gossip
//!   candidate is the triple *(agent URI, trust weight, taxonomy-profile
//!   digest)* — merged into a local trust neighborhood with the ordinary
//!   `semrec-trust` ranking machinery;
//! * an optional **per-peer `semrec-store` checkpoint** of the node's
//!   local community slice.
//!
//! Peers exchange candidates through deterministic push/pull gossip rounds
//! ([`sim::P2pSimulation::step`]): seeded partner selection, configurable
//! fan-out, a message-size cap, and a per-record forwarding TTL. Dead or
//! faulty peers simply stop answering; the breaker quarantines them and the
//! rest of the swarm routes around. Convergence of each peer's top-k
//! neighborhood toward the centralized model's is measured by
//! [`measure::centralized_baseline`] / [`sim::P2pSimulation::convergence`]
//! (overlap@k and rank correlation), and every message is accounted under
//! the `p2p.*` metric namespace.
//!
//! The whole simulation is byte-identical across runs and thread counts:
//! every random-looking decision is a stateless
//! [`semrec_hash::stable_hash`] of `(seed, key, round, salt)`, and each
//! round is a lockstep *parallel pure compute → sequential sorted-order
//! merge* cycle, the same pattern the crawler and the sharded exchange use
//! (DESIGN.md §7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod measure;
pub mod peer;
pub mod record;
pub mod sim;

pub use config::GossipConfig;
pub use measure::{centralized_baseline, overlap_at_k, rank_correlation, Baseline, Convergence};
pub use peer::PeerNode;
pub use record::{AgentRecord, Candidate};
pub use sim::{GossipStats, P2pSimulation};

/// Salt for deriving each peer's retry-jitter seed from the gossip seed.
pub(crate) const SALT_POLICY: u64 = 0x8c67_94b1_2a4e_9d63;
/// Salt for gossip partner selection.
pub(crate) const SALT_PARTNER: u64 = 0x51af_27ce_83b5_6f19;
/// Salt for payload rotation (which known records a message carries).
pub(crate) const SALT_PAYLOAD: u64 = 0xe3c1_5a97_44d2_0b8b;
/// Salt for per-round peer availability (transient gossip faults).
pub(crate) const SALT_GOSSIP: u64 = 0x7b6d_f0a3_9c28_e547;
