//! Gossip wire records: what peers know — and tell each other — about
//! agents.
//!
//! A gossip message is a list of [`AgentRecord`]s. Each record describes
//! one agent firsthand (extracted from that agent's homepage by whoever
//! crawled it) and is immutable thereafter, so records are shared between
//! peers as `Arc`s and knowledge merging is pure set union. On the wire,
//! one neighborhood **candidate** is the triple *(agent URI, trust weight,
//! taxonomy-profile digest)*: the record asserts that `uri` — whose
//! profile inputs hash to `digest` — endorses each [`Candidate`] with the
//! stated weight.

use std::sync::Arc;

use semrec_hash::{fnv1a64_continue, FNV1A64_OFFSET};
use semrec_web::extract::ExtractedAgent;

/// One outgoing trust statement inside an [`AgentRecord`]: a neighborhood
/// candidate for any receiver that trusts (transitively) the record's
/// owner.
#[derive(Clone, Debug, PartialEq)]
pub struct Candidate {
    /// The endorsed agent's URI.
    pub uri: Arc<str>,
    /// The trust weight the record's owner stated for it.
    pub weight: f64,
}

/// Everything the gossip layer knows about one agent, learned firsthand
/// from its homepage document.
#[derive(Clone, Debug, PartialEq)]
pub struct AgentRecord {
    /// The described agent's URI.
    pub uri: Arc<str>,
    /// Digest of the agent's taxonomy-profile inputs (its product
    /// ratings): lets receivers detect stale knowledge without shipping
    /// the profile itself.
    pub digest: u64,
    /// The agent's outgoing trust statements, highest weight first as
    /// extracted.
    pub candidates: Vec<Candidate>,
}

impl AgentRecord {
    /// Builds the record for one crawled agent.
    pub fn from_extracted(agent: &ExtractedAgent) -> AgentRecord {
        AgentRecord {
            uri: Arc::from(agent.uri.as_str()),
            digest: profile_digest(agent),
            candidates: agent
                .trust
                .iter()
                .map(|(uri, weight)| Candidate { uri: Arc::from(uri.as_str()), weight: *weight })
                .collect(),
        }
    }

    /// The record's estimated wire size in bytes: URI + digest + one
    /// (URI, f64) pair per candidate + framing. Charged to
    /// `p2p.bytes.sent` whenever the record is delivered.
    pub fn wire_bytes(&self) -> u64 {
        let candidates: u64 =
            self.candidates.iter().map(|c| c.uri.len() as u64 + 8).sum();
        self.uri.len() as u64 + 8 + candidates + 4
    }
}

/// Digest of the inputs an agent's taxonomy profile is generated from
/// (Eq. 3 works off the rating vector): the agent URI followed by every
/// `(product identifier, score bits)` pair, FNV-1a hashed in document
/// order.
pub fn profile_digest(agent: &ExtractedAgent) -> u64 {
    let mut h = fnv1a64_continue(FNV1A64_OFFSET, agent.uri.as_bytes());
    for (identifier, score) in &agent.ratings {
        h = fnv1a64_continue(h, identifier.as_bytes());
        h = fnv1a64_continue(h, &score.to_bits().to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agent() -> ExtractedAgent {
        ExtractedAgent {
            uri: "http://ex.org/alice#me".into(),
            trust: vec![("http://ex.org/bob#me".into(), 0.9)],
            ratings: vec![("urn:isbn:0380789035".into(), 1.0)],
            ..ExtractedAgent::default()
        }
    }

    #[test]
    fn record_captures_uri_digest_and_candidates() {
        let r = AgentRecord::from_extracted(&agent());
        assert_eq!(&*r.uri, "http://ex.org/alice#me");
        assert_eq!(r.candidates.len(), 1);
        assert_eq!(&*r.candidates[0].uri, "http://ex.org/bob#me");
        assert_eq!(r.candidates[0].weight, 0.9);
        assert_ne!(r.digest, 0);
    }

    #[test]
    fn digest_tracks_the_rating_vector() {
        let a = agent();
        let mut b = agent();
        assert_eq!(profile_digest(&a), profile_digest(&b));
        b.ratings.push(("urn:isbn:0586057242".into(), -1.0));
        assert_ne!(profile_digest(&a), profile_digest(&b));
        let mut c = agent();
        c.ratings[0].1 = 0.5;
        assert_ne!(profile_digest(&a), profile_digest(&c));
    }

    #[test]
    fn wire_size_counts_every_candidate() {
        let r = AgentRecord::from_extracted(&agent());
        let lone = AgentRecord { candidates: Vec::new(), ..r.clone() };
        assert!(r.wire_bytes() > lone.wire_bytes());
        assert_eq!(r.wire_bytes() - lone.wire_bytes(), "http://ex.org/bob#me".len() as u64 + 8);
    }
}
