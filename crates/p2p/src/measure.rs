//! Measuring decentralized convergence: how close each peer's gossip-built
//! neighborhood is to what a centralized crawl of the whole community
//! would have produced.
//!
//! The baseline is [`form_neighborhood`] over the *full* trust graph with
//! the same [`NeighborhoodParams`] the peers use, so the two sides run the
//! identical ranking machinery and differ only in what they know. Peer
//! neighborhoods are compared by URI, never by `AgentId` — ids are not
//! stable across independently assembled graphs, identifiers are.

use std::collections::BTreeMap;
use std::sync::Arc;

use semrec_core::Community;
use semrec_trust::neighborhood::{form_neighborhood, NeighborhoodParams};

use crate::sim::P2pSimulation;

/// Centralized top-k neighborhoods for a panel of agents: URI →
/// `(peer URI, trust rank)` sorted by descending rank, at most k entries.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// The neighborhood each panel agent would get from the full model.
    pub neighborhoods: BTreeMap<String, Vec<(String, f64)>>,
    /// The k the baseline was truncated at.
    pub k: usize,
}

/// Computes the centralized baseline for `panel` over the full community.
pub fn centralized_baseline(
    community: &Community,
    params: &NeighborhoodParams,
    panel: &[String],
    k: usize,
) -> Baseline {
    let mut neighborhoods = BTreeMap::new();
    for uri in panel {
        let Some(id) = community.agent_by_uri(uri) else { continue };
        let formed = form_neighborhood(&community.trust, id, params)
            .expect("panel agents are valid community members");
        let top: Vec<(String, f64)> = formed
            .peers
            .iter()
            .take(k)
            .map(|&(peer, rank)| (community.agent(peer).expect("ranked peers exist").uri.clone(), rank))
            .collect();
        neighborhoods.insert(uri.clone(), top);
    }
    Baseline { neighborhoods, k }
}

/// Overlap@k between a peer's local neighborhood and the centralized one:
/// `|top-k(local) ∩ top-k(central)| / |top-k(central)|`. Two empty
/// neighborhoods agree perfectly (1.0); an empty central one with a
/// non-empty local one is total disagreement (0.0).
pub fn overlap_at_k(local: &[(Arc<str>, f64)], central: &[(String, f64)], k: usize) -> f64 {
    let central_top: Vec<&str> = central.iter().take(k).map(|(u, _)| u.as_str()).collect();
    if central_top.is_empty() {
        return if local.is_empty() { 1.0 } else { 0.0 };
    }
    let hits = local
        .iter()
        .take(k)
        .filter(|(u, _)| central_top.contains(&&**u))
        .count();
    hits as f64 / central_top.len() as f64
}

/// Spearman rank correlation over the centralized top-k: each centrally
/// ranked peer's position is compared with its position in the peer's full
/// local ranking; peers the node has not ranked at all sit at the bottom
/// (position k). For a single-entry baseline the correlation degenerates
/// to membership (1.0 if ranked first locally, else 0.0).
pub fn rank_correlation(local: &[(Arc<str>, f64)], central: &[(String, f64)], k: usize) -> f64 {
    let central_top: Vec<&str> = central.iter().take(k).map(|(u, _)| u.as_str()).collect();
    let m = central_top.len();
    if m == 0 {
        return if local.is_empty() { 1.0 } else { 0.0 };
    }
    let local_pos = |uri: &str| {
        local.iter().position(|(u, _)| &**u == uri).unwrap_or(m).min(m)
    };
    if m == 1 {
        return if local_pos(central_top[0]) == 0 { 1.0 } else { 0.0 };
    }
    let d2: f64 = central_top
        .iter()
        .enumerate()
        .map(|(rank, uri)| {
            let d = rank as f64 - local_pos(uri) as f64;
            d * d
        })
        .sum();
    let n = m as f64;
    (1.0 - 6.0 * d2 / (n * (n * n - 1.0))).clamp(-1.0, 1.0)
}

/// Aggregated convergence of a swarm against a [`Baseline`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Convergence {
    /// Mean overlap@k across measured peers.
    pub mean_overlap: f64,
    /// Mean Spearman rank correlation across measured peers.
    pub mean_rho: f64,
    /// Mean records known per measured peer.
    pub mean_known: f64,
    /// Alive panel peers measured (dead nodes are offline and skipped).
    pub peers_measured: usize,
}

impl P2pSimulation {
    /// Measures every alive panel peer's neighborhood against the
    /// baseline, with the simulation's own [`NeighborhoodParams`].
    pub fn convergence(&self, baseline: &Baseline) -> Convergence {
        let params = self.config().neighborhood;
        let mut overlap_sum = 0.0;
        let mut rho_sum = 0.0;
        let mut known_sum = 0usize;
        let mut measured = 0usize;
        for (uri, central) in &baseline.neighborhoods {
            let Some(peer) = self.peer(uri) else { continue };
            if peer.is_dead() {
                continue;
            }
            let local = peer.neighborhood(&params);
            overlap_sum += overlap_at_k(&local, central, baseline.k);
            rho_sum += rank_correlation(&local, central, baseline.k);
            known_sum += peer.known_count();
            measured += 1;
        }
        if measured == 0 {
            return Convergence { mean_overlap: 0.0, mean_rho: 0.0, mean_known: 0.0, peers_measured: 0 };
        }
        Convergence {
            mean_overlap: overlap_sum / measured as f64,
            mean_rho: rho_sum / measured as f64,
            mean_known: known_sum as f64 / measured as f64,
            peers_measured: measured,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local(uris: &[&str]) -> Vec<(Arc<str>, f64)> {
        uris.iter().enumerate().map(|(i, u)| (Arc::from(*u), 1.0 - i as f64 * 0.1)).collect()
    }

    fn central(uris: &[&str]) -> Vec<(String, f64)> {
        uris.iter().enumerate().map(|(i, u)| (u.to_string(), 1.0 - i as f64 * 0.1)).collect()
    }

    #[test]
    fn overlap_counts_set_intersection() {
        let c = central(&["a", "b", "c", "d"]);
        assert_eq!(overlap_at_k(&local(&["a", "b", "c", "d"]), &c, 4), 1.0);
        assert_eq!(overlap_at_k(&local(&["a", "b", "x", "y"]), &c, 4), 0.5);
        assert_eq!(overlap_at_k(&local(&[]), &c, 4), 0.0);
        assert_eq!(overlap_at_k(&local(&[]), &central(&[]), 4), 1.0);
        assert_eq!(overlap_at_k(&local(&["a"]), &central(&[]), 4), 0.0);
    }

    #[test]
    fn correlation_rewards_order_not_just_membership() {
        let c = central(&["a", "b", "c", "d"]);
        assert_eq!(rank_correlation(&local(&["a", "b", "c", "d"]), &c, 4), 1.0);
        let reversed = rank_correlation(&local(&["d", "c", "b", "a"]), &c, 4);
        assert!(reversed < 0.0, "reversed order must anticorrelate, got {reversed}");
        let partial = rank_correlation(&local(&["a", "b"]), &c, 4);
        assert!((0.0..1.0).contains(&partial));
        assert_eq!(rank_correlation(&local(&["a"]), &central(&["a"]), 4), 1.0);
        assert_eq!(rank_correlation(&local(&["b"]), &central(&["a"]), 4), 0.0);
    }
}
