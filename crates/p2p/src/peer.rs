//! One peer node: its knowledge base, its circuit breaker, and the pure
//! per-round decisions (whom to contact, what to send).
//!
//! Everything in this module that feeds the gossip round's parallel
//! compute phase is a pure function of the peer's state at round start
//! plus `(seed, round)` — no RNG streams, no clocks — which is what makes
//! rounds safe to fan out over any number of threads.

use std::collections::BTreeMap;
use std::sync::Arc;

use semrec_hash::stable_hash;
use semrec_trust::graph::TrustGraph;
use semrec_trust::neighborhood::{form_neighborhood, NeighborhoodParams};
use semrec_web::extract::ExtractedAgent;
use semrec_web::policy::CircuitBreaker;

use crate::record::AgentRecord;
use crate::{SALT_PARTNER, SALT_PAYLOAD};

/// A record a peer knows, with its remaining forwarding budget.
#[derive(Clone, Debug)]
pub(crate) struct Known {
    /// The shared, immutable record.
    pub record: Arc<AgentRecord>,
    /// Hops this copy may still be relayed; 0 = merge-only, never forward.
    pub ttl: u32,
}

/// One simulated peer: the node run by a single agent.
#[derive(Debug)]
pub struct PeerNode {
    uri: Arc<str>,
    homepage: String,
    dead: bool,
    known: BTreeMap<Arc<str>, Known>,
    view: Vec<ExtractedAgent>,
    pub(crate) breaker: CircuitBreaker,
}

impl PeerNode {
    pub(crate) fn new(
        uri: Arc<str>,
        homepage: String,
        dead: bool,
        view: Vec<ExtractedAgent>,
        breaker: CircuitBreaker,
        ttl: u32,
    ) -> PeerNode {
        let mut peer =
            PeerNode { uri, homepage, dead, known: BTreeMap::new(), view: Vec::new(), breaker };
        for agent in &view {
            peer.merge(Arc::new(AgentRecord::from_extracted(agent)), ttl);
        }
        peer.view = view;
        peer
    }

    /// The agent URI this node belongs to.
    pub fn uri(&self) -> &str {
        &self.uri
    }

    /// The node's homepage document URI — the key faults and breakers use.
    pub fn homepage(&self) -> &str {
        &self.homepage
    }

    /// Whether the node is permanently offline under the world's fault
    /// plan. Dead peers never crawl, never gossip and never answer.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// How many agent records the peer currently knows.
    pub fn known_count(&self) -> usize {
        self.known.len()
    }

    /// The peer's circuit breaker (bootstrap-crawl state included).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The agents the peer extracted firsthand during its bootstrap crawl:
    /// its local community slice, and what a per-peer checkpoint persists.
    pub fn view(&self) -> &[ExtractedAgent] {
        &self.view
    }

    /// Merges one received record copy; returns `true` if the record was
    /// new. Duplicate deliveries only refresh the forwarding TTL upward.
    pub(crate) fn merge(&mut self, record: Arc<AgentRecord>, ttl: u32) -> bool {
        match self.known.entry(record.uri.clone()) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(Known { record, ttl });
                true
            }
            std::collections::btree_map::Entry::Occupied(mut slot) => {
                let known = slot.get_mut();
                known.ttl = known.ttl.max(ttl);
                false
            }
        }
    }

    /// Selects this round's gossip partners: `fanout` distinct agents the
    /// peer has heard of (a record *or* a candidate mention — an address
    /// is enough to knock; never itself), each drawn by hashing
    /// `(seed, own URI, round, slot)` over the sorted address list. Dead
    /// addressees simply fail the exchange and feed the breaker. Pure —
    /// breaker gating happens in the sequential merge phase.
    pub(crate) fn select_partners(&self, seed: u64, round: u64, fanout: usize) -> Vec<Arc<str>> {
        let mut pool: Vec<Arc<str>> = Vec::new();
        for known in self.known.values() {
            pool.push(known.record.uri.clone());
            for candidate in &known.record.candidates {
                pool.push(candidate.uri.clone());
            }
        }
        pool.sort_unstable();
        pool.dedup();
        pool.retain(|uri| *uri != self.uri);
        if pool.is_empty() || fanout == 0 {
            return Vec::new();
        }
        if fanout >= pool.len() {
            return pool;
        }
        let mut taken = vec![false; pool.len()];
        let mut partners = Vec::with_capacity(fanout);
        for slot in 0..fanout {
            let h = stable_hash(seed, &self.uri, round, SALT_PARTNER.wrapping_add(slot as u64));
            let mut idx = (h % pool.len() as u64) as usize;
            while taken[idx] {
                idx = (idx + 1) % pool.len();
            }
            taken[idx] = true;
            partners.push(pool[idx].clone());
        }
        partners
    }

    /// Assembles this round's message: the peer's own record first (always
    /// fresh, full TTL), then a deterministically rotating window of its
    /// still-forwardable knowledge, capped at `max_records`. The rotation
    /// offset is hashed from `(seed, own URI, round)`, so successive
    /// rounds sweep the whole knowledge base even under a tight cap.
    pub(crate) fn assemble_payload(
        &self,
        seed: u64,
        round: u64,
        max_records: usize,
    ) -> Vec<(Arc<AgentRecord>, u32)> {
        let mut payload: Vec<(Arc<AgentRecord>, u32)> = Vec::new();
        if let Some(own) = self.known.get(&self.uri) {
            payload.push((own.record.clone(), own.ttl));
        }
        let forwardable: Vec<&Known> = self
            .known
            .values()
            .filter(|k| k.ttl > 0 && k.record.uri != self.uri)
            .collect();
        if forwardable.is_empty() || payload.len() >= max_records {
            payload.truncate(max_records);
            return payload;
        }
        let window = max_records.saturating_sub(payload.len()).min(forwardable.len());
        let start = (stable_hash(seed, &self.uri, round, SALT_PAYLOAD)
            % forwardable.len() as u64) as usize;
        for i in 0..window {
            let k = forwardable[(start + i) % forwardable.len()];
            payload.push((k.record.clone(), k.ttl));
        }
        payload
    }

    /// The peer's local trust graph: every known agent plus every endorsed
    /// candidate as nodes (inserted in sorted URI order, the same order a
    /// centralized assembly of the full community uses), every known trust
    /// statement as an edge.
    pub(crate) fn local_graph(&self) -> (Vec<Arc<str>>, TrustGraph) {
        let mut uris: Vec<Arc<str>> = Vec::with_capacity(self.known.len() + 1);
        uris.push(self.uri.clone());
        for known in self.known.values() {
            uris.push(known.record.uri.clone());
            for candidate in &known.record.candidates {
                uris.push(candidate.uri.clone());
            }
        }
        uris.sort_unstable();
        uris.dedup();
        let mut graph = TrustGraph::with_agents(uris.len());
        let id_of = |uri: &Arc<str>| {
            semrec_trust::agent::AgentId::from_index(
                uris.binary_search(uri).expect("every edge endpoint was inserted"),
            )
        };
        for known in self.known.values() {
            let truster = id_of(&known.record.uri);
            for candidate in &known.record.candidates {
                let _ = graph.set_trust(truster, id_of(&candidate.uri), candidate.weight);
            }
        }
        (uris, graph)
    }

    /// The peer's current top-k trust neighborhood, formed over its local
    /// graph with the *same* ranking machinery the centralized model uses
    /// ([`form_neighborhood`]): `(peer URI, trust rank)` sorted by
    /// descending rank. Once the peer has learned the full graph this is
    /// identical to the centralized answer.
    pub fn neighborhood(&self, params: &NeighborhoodParams) -> Vec<(Arc<str>, f64)> {
        let (uris, graph) = self.local_graph();
        let source = semrec_trust::agent::AgentId::from_index(
            uris.binary_search(&self.uri).expect("own URI is always a node"),
        );
        let formed = form_neighborhood(&graph, source, params)
            .expect("source is a valid agent of its own local graph");
        formed
            .peers
            .iter()
            .map(|&(id, rank)| (uris[id.index()].clone(), rank))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_web::policy::FetchPolicy;

    fn extracted(uri: &str, trust: &[(&str, f64)]) -> ExtractedAgent {
        ExtractedAgent {
            uri: uri.into(),
            trust: trust.iter().map(|&(u, w)| (u.into(), w)).collect(),
            ..ExtractedAgent::default()
        }
    }

    fn peer(view: Vec<ExtractedAgent>) -> PeerNode {
        PeerNode::new(
            Arc::from("http://ex.org/a"),
            "http://ex.org/a/home".into(),
            false,
            view,
            CircuitBreaker::for_policy(&FetchPolicy::default()),
            8,
        )
    }

    #[test]
    fn bootstrap_view_becomes_firsthand_knowledge() {
        let p = peer(vec![
            extracted("http://ex.org/a", &[("http://ex.org/b", 0.8)]),
            extracted("http://ex.org/b", &[("http://ex.org/c", 0.6)]),
        ]);
        assert_eq!(p.known_count(), 2);
        assert_eq!(p.view().len(), 2);
    }

    #[test]
    fn partner_selection_is_deterministic_distinct_and_excludes_self() {
        let p = peer(vec![
            extracted("http://ex.org/a", &[]),
            extracted("http://ex.org/b", &[]),
            extracted("http://ex.org/c", &[]),
            extracted("http://ex.org/d", &[]),
        ]);
        for round in 0..16 {
            let chosen = p.select_partners(7, round, 2);
            assert_eq!(chosen, p.select_partners(7, round, 2));
            assert_eq!(chosen.len(), 2);
            assert!(chosen.iter().all(|u| &**u != "http://ex.org/a"));
            assert_ne!(chosen[0], chosen[1]);
        }
        // Fanout beyond the pool takes everyone.
        assert_eq!(p.select_partners(7, 0, 10).len(), 3);
    }

    #[test]
    fn payload_leads_with_own_record_and_respects_the_cap() {
        let p = peer(vec![
            extracted("http://ex.org/a", &[]),
            extracted("http://ex.org/b", &[]),
            extracted("http://ex.org/c", &[]),
            extracted("http://ex.org/d", &[]),
        ]);
        let msg = p.assemble_payload(7, 0, 3);
        assert_eq!(msg.len(), 3);
        assert_eq!(&*msg[0].0.uri, "http://ex.org/a");
        // The rotation sweeps every record across rounds.
        let mut seen: std::collections::BTreeSet<Arc<str>> = Default::default();
        for round in 0..8 {
            for (record, _) in p.assemble_payload(7, round, 2) {
                seen.insert(record.uri.clone());
            }
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn merge_is_set_union_with_ttl_refresh() {
        let mut p = peer(vec![extracted("http://ex.org/a", &[])]);
        let r = Arc::new(AgentRecord::from_extracted(&extracted("http://ex.org/z", &[])));
        assert!(p.merge(r.clone(), 2));
        assert!(!p.merge(r.clone(), 5));
        assert_eq!(p.known_count(), 2);
    }

    #[test]
    fn neighborhood_ranks_over_learned_candidates() {
        let p = peer(vec![
            extracted("http://ex.org/a", &[("http://ex.org/b", 0.9), ("http://ex.org/c", 0.4)]),
            extracted("http://ex.org/b", &[("http://ex.org/d", 0.8)]),
        ]);
        let nb = p.neighborhood(&NeighborhoodParams::default());
        assert!(!nb.is_empty());
        assert!(nb.windows(2).all(|w| w[0].1 >= w[1].1));
        let uris: Vec<&str> = nb.iter().map(|(u, _)| &**u).collect();
        assert!(uris.contains(&"http://ex.org/b"));
        assert!(uris.contains(&"http://ex.org/d"), "gossiped candidates join the neighborhood");
    }
}
