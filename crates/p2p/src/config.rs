//! Configuration of the gossip protocol and the per-peer bootstrap.

use semrec_trust::neighborhood::NeighborhoodParams;
use semrec_web::policy::FetchPolicy;

/// Everything a [`crate::sim::P2pSimulation`] needs besides the world
/// itself: the gossip protocol's knobs and the per-peer crawl/retry
/// template.
///
/// All pseudo-randomness (partner selection, payload rotation, per-peer
/// jitter seeds) derives from `seed` through stateless hashes, so two
/// simulations with equal configs over equal worlds are byte-identical.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GossipConfig {
    /// Seed every gossip-level decision derives from.
    pub seed: u64,
    /// Partners each peer contacts per round (push/pull fan-out).
    pub fanout: usize,
    /// Message-size cap: at most this many candidate records per message
    /// (the sender's own record plus a rotating window of its knowledge).
    pub max_records: usize,
    /// Forwarding budget: a firsthand record starts with this TTL and each
    /// relay hop decrements it; records at TTL 0 are still merged by their
    /// receiver but no longer forwarded.
    pub ttl: u32,
    /// Range of the bootstrap crawl around each peer's own homepage
    /// (0 = own homepage only, 1 = homepage + direct trustees, …).
    pub crawl_range: u32,
    /// Worker threads for the parallel compute phase of each round (and
    /// the bootstrap crawls). Any value yields identical results.
    pub threads: usize,
    /// Virtual ticks one gossip round advances the shared clock by;
    /// breaker cooldowns are measured against this axis.
    pub round_ticks: u64,
    /// Neighborhood formation parameters — the *same* parameters the
    /// centralized baseline uses, so convergence is apples to apples.
    pub neighborhood: NeighborhoodParams,
    /// Retry/backoff/breaker template for the bootstrap crawl. Each peer
    /// re-derives `jitter_seed` from `(seed, peer URI)` so retry schedules
    /// decorrelate across peers; the breaker configured here is the one
    /// that later gates that peer's gossip exchanges.
    pub policy: FetchPolicy,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            seed: 0,
            fanout: 3,
            max_records: 32,
            ttl: 32,
            crawl_range: 1,
            threads: 4,
            round_ticks: 16,
            neighborhood: NeighborhoodParams::default(),
            policy: FetchPolicy::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = GossipConfig::default();
        assert!(c.fanout >= 1);
        assert!(c.max_records >= 2, "a message must fit more than the sender itself");
        assert!(c.ttl >= 1);
        assert!(c.round_ticks >= 1);
    }
}
