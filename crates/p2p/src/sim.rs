//! The peer swarm: bootstrap crawls, lockstep gossip rounds, and per-peer
//! persistence.
//!
//! ## Determinism contract
//!
//! Every round is one *lockstep* cycle (DESIGN.md §7):
//!
//! 1. **Parallel compute** — each alive peer's partner list and message
//!    payload are pure functions of its state at round start plus
//!    `(seed, round)`; they are fanned over scoped threads in index
//!    chunks, results landing in per-peer slots.
//! 2. **Sequential merge** — exchanges execute one peer at a time in
//!    sorted URI order: breaker gating, fault rolls, knowledge merging and
//!    every `p2p.*` counter all mutate single-threaded.
//!
//! No step reads a wall clock or a shared RNG, so runs are byte-identical
//! across repetitions and thread counts — counters included.

use std::collections::BTreeMap;
use std::sync::Arc;

use semrec_core::{Recommender, RecommenderConfig};
use semrec_hash::{stable_hash, unit};
use semrec_store::{CheckpointReport, Store};
use semrec_taxonomy::{Catalog, Taxonomy};
use semrec_web::crawler::{assemble_community, crawl_resilient, CrawlConfig};
use semrec_web::fault::{FaultPlan, FaultyWeb};
use semrec_web::publish::homepage_uri;
use semrec_web::store::DocumentWeb;

use crate::config::GossipConfig;
use crate::peer::PeerNode;
use crate::record::AgentRecord;
use crate::{SALT_GOSSIP, SALT_POLICY};

/// Cumulative gossip traffic accounting, mirrored into the global `p2p.*`
/// counters; kept on the simulation too so experiments can attribute
/// traffic to one sub-run without diffing registry snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GossipStats {
    /// Messages dispatched onto the (virtual) wire: push requests plus
    /// pull replies.
    pub messages_sent: u64,
    /// Exchanges that failed because the partner was dead or unavailable
    /// this round.
    pub messages_failed: u64,
    /// Exchanges suppressed locally by an open circuit breaker (these
    /// never hit the wire).
    pub messages_suppressed: u64,
    /// Records merged as new knowledge.
    pub records_merged: u64,
    /// Record deliveries the receiver already knew.
    pub records_duplicate: u64,
    /// Estimated payload bytes delivered.
    pub bytes_sent: u64,
    /// Circuit breakers opened during gossip (bootstrap-crawl opens not
    /// included).
    pub breaker_opens: u64,
}

/// N peer nodes over one document web, gossiping in lockstep rounds.
#[derive(Debug)]
pub struct P2pSimulation {
    config: GossipConfig,
    plan: FaultPlan,
    peers: Vec<PeerNode>,
    index: BTreeMap<Arc<str>, usize>,
    round: u32,
    clock: u64,
    stats: GossipStats,
}

impl P2pSimulation {
    /// Boots one node per agent URI: each alive peer runs a bounded
    /// resilient crawl around its own homepage (range
    /// [`GossipConfig::crawl_range`]) through the world's [`FaultPlan`],
    /// seeding its knowledge base firsthand; peers whose homepage the plan
    /// marks dead come up offline and empty. Crawls are independent, so
    /// they fan out over [`GossipConfig::threads`].
    pub fn bootstrap(
        web: &DocumentWeb,
        agent_uris: &[String],
        plan: FaultPlan,
        config: GossipConfig,
    ) -> P2pSimulation {
        let mut uris: Vec<&String> = agent_uris.iter().collect();
        uris.sort_unstable();
        uris.dedup();

        let threads = config.threads.max(1).min(uris.len().max(1));
        let chunk = uris.len().div_ceil(threads).max(1);
        let peers: Vec<PeerNode> = std::thread::scope(|scope| {
            let handles: Vec<_> = uris
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || {
                        part.iter().map(|uri| bootstrap_peer(web, uri, &plan, &config)).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("bootstrap worker panicked")).collect()
        });

        let index = peers
            .iter()
            .enumerate()
            .map(|(i, p)| (Arc::from(p.uri()), i))
            .collect::<BTreeMap<Arc<str>, usize>>();
        let dead = peers.iter().filter(|p| p.is_dead()).count() as u64;
        let clock = peers.iter().map(|p| p.breaker.now()).max().unwrap_or(0);
        semrec_obs::counter("p2p.peers").add(peers.len() as u64);
        semrec_obs::counter("p2p.peers.dead").add(dead);
        P2pSimulation { config, plan, peers, index, round: 0, clock, stats: GossipStats::default() }
    }

    /// The active configuration.
    pub fn config(&self) -> &GossipConfig {
        &self.config
    }

    /// The world's fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// All peers, sorted by agent URI.
    pub fn peers(&self) -> &[PeerNode] {
        &self.peers
    }

    /// The peer owned by `uri`, if simulated.
    pub fn peer(&self, uri: &str) -> Option<&PeerNode> {
        self.index.get(uri).map(|&i| &self.peers[i])
    }

    /// Gossip rounds executed so far.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// The shared virtual clock, in ticks.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Cumulative traffic accounting.
    pub fn stats(&self) -> GossipStats {
        self.stats
    }

    /// Executes `rounds` gossip rounds.
    pub fn run(&mut self, rounds: u32) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Executes one push/pull gossip round (see the module docs for the
    /// two-phase structure). Bumps `p2p.gossip.rounds` and advances the
    /// virtual clock by [`GossipConfig::round_ticks`].
    pub fn step(&mut self) {
        let round = u64::from(self.round);
        let seed = self.config.seed;
        let fanout = self.config.fanout;
        let cap = self.config.max_records;

        // Phase 1: pure per-peer decisions, fanned over scoped threads.
        struct RoundPlan {
            partners: Vec<Arc<str>>,
            payload: Vec<(Arc<AgentRecord>, u32)>,
        }
        let peers = &self.peers;
        let threads = self.config.threads.max(1).min(peers.len().max(1));
        let chunk = peers.len().div_ceil(threads).max(1);
        let plans: Vec<Option<RoundPlan>> = std::thread::scope(|scope| {
            let handles: Vec<_> = peers
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || {
                        part.iter()
                            .map(|peer| {
                                if peer.is_dead() {
                                    return None;
                                }
                                Some(RoundPlan {
                                    partners: peer.select_partners(seed, round, fanout),
                                    payload: peer.assemble_payload(seed, round, cap),
                                })
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("gossip worker panicked")).collect()
        });

        // Phase 2: sequential merge in sorted peer order.
        let sent = semrec_obs::counter("p2p.messages.sent");
        let failed = semrec_obs::counter("p2p.messages.failed");
        let suppressed = semrec_obs::counter("p2p.messages.suppressed");
        let opened = semrec_obs::counter("p2p.breaker.open");
        for i in 0..self.peers.len() {
            let Some(plan_i) = &plans[i] else { continue };
            for partner in &plan_i.partners {
                // A known agent that runs no node behaves exactly like a
                // dead peer: nobody answers, and the breaker learns it.
                let j = self.index.get(partner).copied();
                let partner_home =
                    j.map_or_else(|| homepage_uri(partner), |j| self.peers[j].homepage().to_owned());
                if !self.peers[i].breaker.allow(&partner_home, self.clock) {
                    suppressed.inc();
                    self.stats.messages_suppressed += 1;
                    continue;
                }
                sent.inc();
                self.stats.messages_sent += 1;
                let unavailable = self.plan.transient_rate > 0.0
                    && unit(stable_hash(self.plan.seed, &partner_home, round, SALT_GOSSIP))
                        < self.plan.transient_rate;
                if j.is_none() || self.peers[j.unwrap()].is_dead() || unavailable {
                    failed.inc();
                    self.stats.messages_failed += 1;
                    let before = self.peers[i].breaker.times_opened();
                    self.peers[i].breaker.record_failure(&partner_home, self.clock);
                    if self.peers[i].breaker.times_opened() > before {
                        opened.inc();
                        self.stats.breaker_opens += 1;
                    }
                    continue;
                }
                let j = j.expect("unsimulated partners were handled as failures above");
                self.peers[i].breaker.record_success(&partner_home);
                // Push: sender's payload lands at the partner…
                self.deliver(&plan_i.payload, j);
                // …pull: the partner replies with its own payload.
                sent.inc();
                self.stats.messages_sent += 1;
                if let Some(plan_j) = &plans[j] {
                    self.deliver(&plan_j.payload, i);
                }
            }
        }

        self.round += 1;
        self.clock += self.config.round_ticks;
        for peer in &mut self.peers {
            peer.breaker.advance_to(self.clock);
        }
        semrec_obs::counter("p2p.gossip.rounds").inc();
    }

    fn deliver(&mut self, payload: &[(Arc<AgentRecord>, u32)], to: usize) {
        let merged = semrec_obs::counter("p2p.records.merged");
        let duplicate = semrec_obs::counter("p2p.records.duplicate");
        let bytes = semrec_obs::counter("p2p.bytes.sent");
        for (record, ttl) in payload {
            let size = record.wire_bytes();
            bytes.add(size);
            self.stats.bytes_sent += size;
            if self.peers[to].merge(record.clone(), ttl.saturating_sub(1)) {
                merged.inc();
                self.stats.records_merged += 1;
            } else {
                duplicate.inc();
                self.stats.records_duplicate += 1;
            }
        }
    }

    /// Persists one peer's local community slice — the agents it crawled
    /// firsthand — as a `semrec-store` checkpoint in `store`: the node's
    /// crash-recoverable warm start, written with the same snapshot format
    /// the centralized engine uses.
    pub fn checkpoint_peer(
        &self,
        uri: &str,
        store: &Store,
        taxonomy: Taxonomy,
        catalog: Catalog,
        epoch: u64,
    ) -> semrec_store::Result<CheckpointReport> {
        let peer = self.peer(uri).ok_or(semrec_store::Error::NoSnapshot)?;
        let (community, _) = assemble_community(peer.view(), taxonomy, catalog);
        let engine = Recommender::new(community, RecommenderConfig::default());
        store.checkpoint(&engine, peer.view(), epoch)
    }
}

/// Boots one peer (pure per-peer work; runs on bootstrap worker threads).
fn bootstrap_peer(
    web: &DocumentWeb,
    uri: &str,
    plan: &FaultPlan,
    config: &GossipConfig,
) -> PeerNode {
    let homepage = homepage_uri(uri);
    let dead = plan.is_dead(&homepage);
    let mut policy = config.policy;
    policy.jitter_seed = stable_hash(config.seed, uri, 0, SALT_POLICY);
    if dead {
        // An offline machine runs nothing: no crawl, no knowledge.
        return PeerNode::new(
            Arc::from(uri),
            homepage,
            true,
            Vec::new(),
            semrec_web::policy::CircuitBreaker::for_policy(&policy),
            config.ttl,
        );
    }
    let faulty = FaultyWeb::new(web, *plan);
    let crawl_config = CrawlConfig { max_range: config.crawl_range, threads: 1, ..CrawlConfig::default() };
    let (result, breaker) = crawl_resilient(&faulty, std::slice::from_ref(&homepage), &crawl_config, &policy);
    semrec_obs::counter("p2p.crawl.records").add(result.agents.len() as u64);
    PeerNode::new(Arc::from(uri), homepage, false, result.agents, breaker, config.ttl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::centralized_baseline;
    use semrec_datagen::community::{generate_community, CommunityGenConfig};
    use semrec_web::publish::publish_community;

    fn world(seed: u64) -> (semrec_core::Community, DocumentWeb, Vec<String>) {
        let community = generate_community(&CommunityGenConfig::small(seed)).community;
        let web = DocumentWeb::new();
        publish_community(&community, &web);
        let mut uris: Vec<String> =
            community.agents().map(|a| community.agent(a).unwrap().uri.clone()).collect();
        uris.sort();
        (community, web, uris)
    }

    #[test]
    fn fault_free_swarm_converges_to_the_centralized_neighborhoods() {
        let (community, web, uris) = world(42);
        let config = GossipConfig { seed: 42, ..GossipConfig::default() };
        let mut sim = P2pSimulation::bootstrap(&web, &uris, FaultPlan::none(), config);
        let panel: Vec<String> = uris.iter().step_by(5).cloned().collect();
        let baseline = centralized_baseline(&community, &config.neighborhood, &panel, 10);
        let before = sim.convergence(&baseline);
        let mut prev = before.mean_overlap;
        for round in 1..=12 {
            sim.step();
            let c = sim.convergence(&baseline);
            println!(
                "round {round}: overlap {:.3} rho {:.3} known {:.1} msgs {}",
                c.mean_overlap, c.mean_rho, c.mean_known, sim.stats().messages_sent
            );
            assert!(c.mean_overlap >= prev - 1e-12, "overlap regressed at round {round}");
            prev = c.mean_overlap;
        }
        assert!(prev >= 0.9, "fault-free swarm must reach overlap >= 0.9, got {prev}");
        assert!(before.mean_overlap < prev, "gossip must improve on the bootstrap crawl alone");
    }
}
