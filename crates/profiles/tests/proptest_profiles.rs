//! Property tests: Eq. 3 conservation, similarity bounds, and vector algebra
//! over randomly grown taxonomies, catalogs and rating histories.

use proptest::prelude::*;
use semrec_profiles::generation::{descriptor_scores, generate_profile, ProfileParams};
use semrec_profiles::{similarity, ProductVector, ProfileVector};
use semrec_taxonomy::{Catalog, ProductId, Taxonomy, TopicId};

/// Random tree taxonomy plus catalog with 1–4 descriptors per product.
fn world(
    parents: &[usize],
    products: &[(usize, usize)],
) -> (Taxonomy, Catalog) {
    let mut b = Taxonomy::builder("Top");
    let mut topics = vec![TopicId::TOP];
    for (i, &p) in parents.iter().enumerate() {
        let id = b.add_topic(format!("t{i}"), topics[p % topics.len()]).unwrap();
        topics.push(id);
    }
    let t = b.build();
    let mut c = Catalog::new();
    for (i, &(d0, extra)) in products.iter().enumerate() {
        let mut descriptors = vec![topics[d0 % topics.len()]];
        for k in 0..(extra % 3) {
            descriptors.push(topics[(d0 + k + 1) % topics.len()]);
        }
        c.add_product(&t, format!("urn:isbn:{i:010}"), format!("Book {i}"), descriptors)
            .unwrap();
    }
    (t, c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn profile_mass_is_conserved(
        parents in prop::collection::vec(0usize..50, 1..40),
        products in prop::collection::vec((0usize..50, 0usize..5), 1..20),
        likes in prop::collection::vec((0usize..20, 0.01f64..1.0), 1..15),
    ) {
        let (t, c) = world(&parents, &products);
        let ratings: Vec<(ProductId, f64)> = likes
            .iter()
            .map(|&(p, r)| (ProductId::from_index(p % c.len()), r))
            .collect();
        for rating_weighted in [false, true] {
            let params = ProfileParams { rating_weighted, ..Default::default() };
            let profile = generate_profile(&t, &c, &ratings, &params);
            prop_assert!((profile.total() - params.total_score).abs() < 1e-6,
                "mass {} != s", profile.total());
            for (_, s) in profile.iter() {
                prop_assert!(s > 0.0);
            }
        }
    }

    #[test]
    fn descriptor_scores_sum_to_allotment(
        parents in prop::collection::vec(0usize..50, 1..40),
        topic in 0usize..40,
        allotment in 0.1f64..500.0,
    ) {
        let (t, _) = world(&parents, &[(0, 0)]);
        let id = TopicId::from_index(topic % t.len());
        let scores = descriptor_scores(&t, id, allotment);
        let sum: f64 = scores.iter().map(|&(_, s)| s).sum();
        prop_assert!((sum - allotment).abs() < 1e-9);
        // The descriptor itself always gets the largest share on a tree.
        let own = scores.iter().find(|&&(d, _)| d == id).unwrap().1;
        for &(_, s) in &scores {
            prop_assert!(own >= s - 1e-12);
        }
    }

    #[test]
    fn ancestors_receive_less_than_descendants_on_paths(
        parents in prop::collection::vec(0usize..50, 2..40),
        topic in 0usize..40,
    ) {
        let (t, _) = world(&parents, &[(0, 0)]);
        let id = TopicId::from_index(topic % t.len());
        let scores = descriptor_scores(&t, id, 100.0);
        // Along the (single) root path, scores are non-increasing upward.
        let path = &t.paths_from_top(id)[0];
        let by_topic = |want: TopicId| scores.iter().find(|&&(d, _)| d == want).unwrap().1;
        for w in path.windows(2) {
            prop_assert!(by_topic(w[1]) >= by_topic(w[0]) - 1e-12,
                "child must out-score parent");
        }
    }

    #[test]
    fn similarity_bounds_hold(
        xs in prop::collection::vec((0usize..60, -100.0f64..100.0), 1..30),
        ys in prop::collection::vec((0usize..60, -100.0f64..100.0), 1..30),
    ) {
        let a = ProfileVector::from_pairs(xs.iter().map(|&(i, s)| (TopicId::from_index(i), s)));
        let b = ProfileVector::from_pairs(ys.iter().map(|&(i, s)| (TopicId::from_index(i), s)));
        if let Some(c) = similarity::cosine(&a, &b) {
            prop_assert!((-1.0..=1.0).contains(&c));
            // Symmetry.
            prop_assert!((c - similarity::cosine(&b, &a).unwrap()).abs() < 1e-12);
        }
        if let Some(p) = similarity::pearson(&a, &b) {
            prop_assert!((-1.0..=1.0).contains(&p));
            prop_assert!((p - similarity::pearson(&b, &a).unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn vector_algebra_add_scaled_matches_pointwise(
        xs in prop::collection::vec((0usize..40, -50.0f64..50.0), 0..20),
        ys in prop::collection::vec((0usize..40, -50.0f64..50.0), 0..20),
        factor in -3.0f64..3.0,
    ) {
        let a = ProfileVector::from_pairs(xs.iter().map(|&(i, s)| (TopicId::from_index(i), s)));
        let b = ProfileVector::from_pairs(ys.iter().map(|&(i, s)| (TopicId::from_index(i), s)));
        let mut sum = a.clone();
        sum.add_scaled(&b, factor);
        for i in 0..40 {
            let t = TopicId::from_index(i);
            let want = a.get(t) + factor * b.get(t);
            prop_assert!((sum.get(t) - want).abs() < 1e-9);
        }
    }

    #[test]
    fn product_pearson_symmetry_and_bounds(
        xs in prop::collection::vec((0usize..25, -1.0f64..1.0), 0..20),
        ys in prop::collection::vec((0usize..25, -1.0f64..1.0), 0..20),
    ) {
        let to_v = |zs: &[(usize, f64)]| {
            let ratings: Vec<_> = zs.iter().map(|&(i, r)| (ProductId::from_index(i), r)).collect();
            ProductVector::from_ratings(&ratings)
        };
        let a = to_v(&xs);
        let b = to_v(&ys);
        match (a.pearson(&b), b.pearson(&a)) {
            (Some(x), Some(y)) => {
                prop_assert!((x - y).abs() < 1e-12);
                prop_assert!((-1.0..=1.0).contains(&x));
            }
            (None, None) => {}
            other => prop_assert!(false, "asymmetric definedness: {other:?}"),
        }
    }
}
