//! Contiguous structure-of-arrays storage for many profiles.
//!
//! A [`ProfileSlab`] packs every agent's interest profile into three flat
//! arenas: one `u32` offset array (CSR-style, `len + 1` entries), one `u32`
//! topic array, and one parallel `f64` score array. Agent `i`'s profile is
//! the half-open range `offsets[i]..offsets[i + 1]` of the topic/score
//! arenas, surfaced as a borrowed [`ProfileView`].
//!
//! This is the in-memory layout *and* the snapshot-v2 wire layout: a
//! checkpoint writes the three arenas verbatim, and recovery rebuilds the
//! slab with one validated bulk copy per arena — no per-profile decode.

use crate::vector::{ProfileVector, ProfileView};

/// Flat arena storage for a sequence of profiles.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileSlab {
    /// CSR offsets into `topics`/`scores`; `offsets.len() == len() + 1`.
    offsets: Vec<u32>,
    /// Sorted topic indexes, concatenated per profile.
    topics: Vec<u32>,
    /// Scores parallel to `topics`.
    scores: Vec<f64>,
}

impl ProfileSlab {
    /// An empty slab (zero profiles).
    pub fn new() -> Self {
        ProfileSlab { offsets: vec![0], topics: Vec::new(), scores: Vec::new() }
    }

    /// An empty slab with arena capacity reserved for roughly `profiles`
    /// profiles of `entries` total entries.
    pub fn with_capacity(profiles: usize, entries: usize) -> Self {
        let mut offsets = Vec::with_capacity(profiles + 1);
        offsets.push(0);
        ProfileSlab {
            offsets,
            topics: Vec::with_capacity(entries),
            scores: Vec::with_capacity(entries),
        }
    }

    /// Builds a slab by copying each vector's arenas in order.
    pub fn from_vectors<'a>(vectors: impl IntoIterator<Item = &'a ProfileVector>) -> Self {
        let mut slab = ProfileSlab::new();
        for v in vectors {
            slab.push_view(v.as_view());
        }
        slab
    }

    /// Appends one profile (copies its topic/score slices).
    pub fn push_view(&mut self, view: ProfileView<'_>) {
        self.topics.extend_from_slice(view.topics());
        self.scores.extend_from_slice(view.scores());
        self.offsets.push(
            u32::try_from(self.topics.len()).expect("profile slab exceeds u32 entries"),
        );
    }

    /// Appends profile `index` of another slab wholesale (the clean-region
    /// fast path of incremental advance).
    pub fn push_from(&mut self, other: &ProfileSlab, index: usize) {
        self.push_view(other.view(index));
    }

    /// Reassembles a slab from raw arenas, validating every invariant the
    /// accessors rely on. Returns a static description of the first
    /// violation found (snapshot decode maps it to a corruption error).
    pub fn from_parts(
        offsets: Vec<u32>,
        topics: Vec<u32>,
        scores: Vec<f64>,
    ) -> Result<Self, &'static str> {
        if topics.len() != scores.len() {
            return Err("topic and score arenas differ in length");
        }
        let Some(&last) = offsets.last() else {
            return Err("offset arena is empty");
        };
        if offsets[0] != 0 {
            return Err("offset arena does not start at zero");
        }
        if last as usize != topics.len() {
            return Err("offset arena does not span the topic arena");
        }
        // Full monotone check before any range is sliced: a single spiked
        // offset ([0, huge, len]) must not index out of bounds in the
        // window preceding the violation.
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offset arena is not monotone");
        }
        for w in offsets.windows(2) {
            let range = w[0] as usize..w[1] as usize;
            if !topics[range].windows(2).all(|t| t[0] < t[1]) {
                return Err("profile topics are not strictly sorted");
            }
        }
        if scores.iter().any(|s| s.is_nan()) {
            return Err("profile score is NaN");
        }
        Ok(ProfileSlab { offsets, topics, scores })
    }

    /// Number of profiles stored.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if the slab holds no profiles.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The view of profile `index`.
    ///
    /// # Panics
    /// If `index >= len()`.
    pub fn view(&self, index: usize) -> ProfileView<'_> {
        let range = self.offsets[index] as usize..self.offsets[index + 1] as usize;
        ProfileView::from_raw(&self.topics[range.clone()], &self.scores[range])
    }

    /// Iterates all profile views in index order.
    pub fn iter(&self) -> impl Iterator<Item = ProfileView<'_>> {
        (0..self.len()).map(|i| self.view(i))
    }

    /// The raw arenas `(offsets, topics, scores)` — the snapshot-v2 body.
    pub fn arenas(&self) -> (&[u32], &[u32], &[f64]) {
        (&self.offsets, &self.topics, &self.scores)
    }

    /// Bytes of resident arena storage (lengths, not capacities).
    pub fn resident_bytes(&self) -> usize {
        self.offsets.len() * 4 + self.topics.len() * 4 + self.scores.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_taxonomy::TopicId;

    fn t(i: usize) -> TopicId {
        TopicId::from_index(i)
    }

    fn vectors() -> Vec<ProfileVector> {
        vec![
            ProfileVector::from_pairs([(t(1), 1.5), (t(4), -2.0)]),
            ProfileVector::new(),
            ProfileVector::from_pairs([(t(0), 3.0), (t(2), 0.5), (t(9), 7.0)]),
        ]
    }

    #[test]
    fn slab_views_match_source_vectors() {
        let vs = vectors();
        let slab = ProfileSlab::from_vectors(&vs);
        assert_eq!(slab.len(), 3);
        for (i, v) in vs.iter().enumerate() {
            assert_eq!(slab.view(i).to_vector(), *v);
            assert_eq!(slab.view(i), v.as_view());
        }
        assert!(slab.view(1).is_empty());
    }

    #[test]
    fn parts_round_trip() {
        let slab = ProfileSlab::from_vectors(&vectors());
        let (o, tp, s) = slab.arenas();
        let rebuilt =
            ProfileSlab::from_parts(o.to_vec(), tp.to_vec(), s.to_vec()).expect("valid arenas");
        assert_eq!(rebuilt, slab);
    }

    #[test]
    fn corrupt_parts_are_rejected() {
        let slab = ProfileSlab::from_vectors(&vectors());
        let (o, tp, s) = slab.arenas();
        // Mismatched arena lengths.
        assert!(ProfileSlab::from_parts(o.to_vec(), tp.to_vec(), vec![0.0]).is_err());
        // Non-monotone offsets.
        let mut bad = o.to_vec();
        bad[1] = bad[2] + 1;
        assert!(ProfileSlab::from_parts(bad, tp.to_vec(), s.to_vec()).is_err());
        // Unsorted topics within a profile.
        let mut bad_t = tp.to_vec();
        bad_t.swap(0, 1);
        assert!(ProfileSlab::from_parts(o.to_vec(), bad_t, s.to_vec()).is_err());
        // Offsets not spanning the arena.
        let mut short = o.to_vec();
        *short.last_mut().unwrap() -= 1;
        assert!(ProfileSlab::from_parts(short, tp.to_vec(), s.to_vec()).is_err());
        // Empty offsets.
        assert!(ProfileSlab::from_parts(vec![], vec![], vec![]).is_err());
        // NaN score.
        let mut bad_s = s.to_vec();
        bad_s[0] = f64::NAN;
        assert!(ProfileSlab::from_parts(o.to_vec(), tp.to_vec(), bad_s).is_err());
    }

    #[test]
    fn push_from_copies_ranges_wholesale() {
        let src = ProfileSlab::from_vectors(&vectors());
        let mut dst = ProfileSlab::new();
        dst.push_from(&src, 2);
        dst.push_from(&src, 0);
        assert_eq!(dst.len(), 2);
        assert_eq!(dst.view(0), src.view(2));
        assert_eq!(dst.view(1), src.view(0));
    }

    #[test]
    fn resident_bytes_counts_arenas() {
        let slab = ProfileSlab::from_vectors(&vectors());
        // 4 offsets * 4 + 5 topics * 4 + 5 scores * 8.
        assert_eq!(slab.resident_bytes(), 16 + 20 + 40);
        assert_eq!(ProfileSlab::new().resident_bytes(), 4);
    }

    #[test]
    fn iter_yields_all_views() {
        let slab = ProfileSlab::from_vectors(&vectors());
        assert_eq!(slab.iter().count(), 3);
        assert!(!slab.is_empty());
        assert!(ProfileSlab::new().is_empty());
    }
}
