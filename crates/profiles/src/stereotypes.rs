//! Automated stereotype generation (§6 future work): "we are currently
//! investigating applicability of taxonomy-based profile generation for
//! automated stereotype generation and efficient behavior modelling."
//!
//! Taxonomy profiles live in one shared topic space, so user populations
//! cluster naturally: a *stereotype* is the normalized mean profile of a
//! cluster. Clustering is spherical k-means (cosine distance) with
//! deterministic farthest-point seeding — no RNG, same input → same model.
//! Stereotypes compress a community's behavior (ref \[14\]'s motivation) and
//! give cold-start users a usable surrogate profile.

use crate::similarity;
use crate::vector::ProfileVector;

/// A fitted stereotype model.
#[derive(Clone, Debug)]
pub struct StereotypeModel {
    /// Cluster centroids (unit-normalized mean profiles).
    pub centroids: Vec<ProfileVector>,
    /// Per input profile: its cluster index, or `None` for empty profiles.
    pub assignment: Vec<Option<usize>>,
    /// Iterations until the assignment stabilized.
    pub iterations: usize,
}

impl StereotypeModel {
    /// Members of one cluster (indexes into the input profile slice).
    pub fn members(&self, cluster: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| (c == Some(cluster)).then_some(i))
            .collect()
    }

    /// Number of stereotypes.
    pub fn len(&self) -> usize {
        self.centroids.len()
    }

    /// True if the model has no stereotypes.
    pub fn is_empty(&self) -> bool {
        self.centroids.is_empty()
    }

    /// Assigns an unseen profile to its best stereotype (highest cosine);
    /// `None` for empty profiles.
    pub fn assign(&self, profile: &ProfileVector) -> Option<usize> {
        best_cluster(&self.centroids, profile)
    }
}

fn best_cluster(centroids: &[ProfileVector], profile: &ProfileVector) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, centroid) in centroids.iter().enumerate() {
        if let Some(sim) = similarity::cosine(centroid, profile) {
            if best.is_none_or(|(_, b)| sim > b) {
                best = Some((i, sim));
            }
        }
    }
    best.map(|(i, _)| i)
}

/// Normalized mean of the given member profiles.
fn centroid_of(profiles: &[ProfileVector], members: &[usize]) -> ProfileVector {
    let mut sum = ProfileVector::new();
    for &m in members {
        // Normalize members so prolific raters don't dominate the centroid.
        let norm = profiles[m].norm();
        if norm > 0.0 {
            sum.add_scaled(&profiles[m], 1.0 / norm);
        }
    }
    let norm = sum.norm();
    if norm > 0.0 {
        sum.scale(1.0 / norm);
    }
    sum
}

/// Fits `k` stereotypes to the given profiles with spherical k-means.
///
/// Deterministic: the first non-empty profile seeds cluster 0 and each next
/// seed is the profile farthest (lowest max-cosine) from existing seeds.
pub fn cluster(profiles: &[ProfileVector], k: usize, max_iterations: usize) -> StereotypeModel {
    let non_empty: Vec<usize> =
        (0..profiles.len()).filter(|&i| !profiles[i].is_empty()).collect();
    let k = k.min(non_empty.len()).max(usize::from(!non_empty.is_empty()));
    if non_empty.is_empty() || k == 0 {
        return StereotypeModel {
            centroids: Vec::new(),
            assignment: vec![None; profiles.len()],
            iterations: 0,
        };
    }

    // Farthest-point seeding.
    let mut seeds = vec![non_empty[0]];
    while seeds.len() < k {
        let mut farthest = (non_empty[0], f64::INFINITY);
        for &candidate in &non_empty {
            if seeds.contains(&candidate) {
                continue;
            }
            let closest = seeds
                .iter()
                .filter_map(|&s| similarity::cosine(&profiles[s], &profiles[candidate]))
                .fold(f64::NEG_INFINITY, f64::max);
            if closest < farthest.1 {
                farthest = (candidate, closest);
            }
        }
        if seeds.contains(&farthest.0) {
            break; // ran out of distinct profiles
        }
        seeds.push(farthest.0);
    }
    let mut centroids: Vec<ProfileVector> = seeds
        .iter()
        .map(|&s| {
            let mut c = profiles[s].clone();
            let n = c.norm();
            if n > 0.0 {
                c.scale(1.0 / n);
            }
            c
        })
        .collect();

    let mut assignment: Vec<Option<usize>> = vec![None; profiles.len()];
    let mut iterations = 0;
    for _ in 0..max_iterations {
        iterations += 1;
        let mut changed = false;
        for &i in &non_empty {
            let new = best_cluster(&centroids, &profiles[i]);
            if new != assignment[i] {
                assignment[i] = new;
                changed = true;
            }
        }
        if !changed && iterations > 1 {
            break;
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<usize> = non_empty
                .iter()
                .copied()
                .filter(|&i| assignment[i] == Some(c))
                .collect();
            if !members.is_empty() {
                *centroid = centroid_of(profiles, &members);
            }
        }
    }

    StereotypeModel { centroids, assignment, iterations }
}

/// Mean intra-cluster vs inter-cluster cosine — the clustering quality
/// diagnostic E13 reports. Returns `(intra, inter)`.
pub fn separation(profiles: &[ProfileVector], model: &StereotypeModel) -> (f64, f64) {
    let mut intra = (0.0, 0usize);
    let mut inter = (0.0, 0usize);
    for i in 0..profiles.len() {
        let Some(ci) = model.assignment[i] else { continue };
        for j in (i + 1)..profiles.len() {
            let Some(cj) = model.assignment[j] else { continue };
            let Some(sim) = similarity::cosine(&profiles[i], &profiles[j]) else { continue };
            if ci == cj {
                intra.0 += sim;
                intra.1 += 1;
            } else {
                inter.0 += sim;
                inter.1 += 1;
            }
        }
    }
    (
        if intra.1 > 0 { intra.0 / intra.1 as f64 } else { 0.0 },
        if inter.1 > 0 { inter.0 / inter.1 as f64 } else { 0.0 },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_taxonomy::TopicId;

    fn t(i: usize) -> TopicId {
        TopicId::from_index(i)
    }

    /// Two obvious groups: topics {1,2,3} vs topics {10,11,12}.
    fn two_groups() -> Vec<ProfileVector> {
        let mut profiles = Vec::new();
        for offset in [0usize, 1, 2] {
            profiles.push(ProfileVector::from_pairs([
                (t(1), 5.0 + offset as f64),
                (t(2), 3.0),
                (t(3), 1.0),
            ]));
        }
        for offset in [0usize, 1, 2] {
            profiles.push(ProfileVector::from_pairs([
                (t(10), 4.0),
                (t(11), 2.0 + offset as f64),
                (t(12), 1.0),
            ]));
        }
        profiles
    }

    #[test]
    fn recovers_obvious_clusters() {
        let profiles = two_groups();
        let model = cluster(&profiles, 2, 50);
        assert_eq!(model.len(), 2);
        let a = model.assignment[0].unwrap();
        let b = model.assignment[3].unwrap();
        assert_ne!(a, b, "the two groups must separate");
        assert_eq!(model.assignment[1], Some(a));
        assert_eq!(model.assignment[2], Some(a));
        assert_eq!(model.assignment[4], Some(b));
        assert_eq!(model.assignment[5], Some(b));
    }

    #[test]
    fn separation_is_clean_on_disjoint_groups() {
        let profiles = two_groups();
        let model = cluster(&profiles, 2, 50);
        let (intra, inter) = separation(&profiles, &model);
        assert!(intra > 0.9, "intra {intra}");
        assert!(inter < 0.1, "inter {inter}");
    }

    #[test]
    fn assigns_unseen_profiles() {
        let profiles = two_groups();
        let model = cluster(&profiles, 2, 50);
        let newcomer = ProfileVector::from_pairs([(t(10), 1.0), (t(12), 0.5)]);
        assert_eq!(model.assign(&newcomer), model.assignment[3]);
        assert_eq!(model.assign(&ProfileVector::new()), None);
    }

    #[test]
    fn empty_profiles_stay_unassigned() {
        let mut profiles = two_groups();
        profiles.push(ProfileVector::new());
        let model = cluster(&profiles, 2, 50);
        assert_eq!(model.assignment[6], None);
        assert_eq!(model.members(0).len() + model.members(1).len(), 6);
    }

    #[test]
    fn k_larger_than_population_shrinks() {
        let profiles = two_groups();
        let model = cluster(&profiles, 100, 10);
        assert!(model.len() <= 6);
    }

    #[test]
    fn deterministic() {
        let profiles = two_groups();
        let a = cluster(&profiles, 3, 50);
        let b = cluster(&profiles, 3, 50);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn degenerate_inputs() {
        let model = cluster(&[], 4, 10);
        assert!(model.is_empty());
        let empties = vec![ProfileVector::new(), ProfileVector::new()];
        let model = cluster(&empties, 2, 10);
        assert!(model.is_empty());
        assert_eq!(model.assignment, vec![None, None]);
    }

    #[test]
    fn centroids_are_unit_norm() {
        let profiles = two_groups();
        let model = cluster(&profiles, 2, 50);
        for c in &model.centroids {
            assert!((c.norm() - 1.0).abs() < 1e-9);
        }
    }
}
