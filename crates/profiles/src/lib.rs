//! # semrec-profiles — taxonomy-driven interest profiles and similarity
//!
//! The second pillar of the paper (§3.3): overcoming low profile overlap by
//! *taxonomy-based profile generation*. Rated products push interest score
//! onto their topic descriptors and — discounted per Eq. 3 — onto every
//! super-topic, so "one may establish high user similarity for users which
//! have not even rated one single product in common".
//!
//! * [`vector`] — sparse topic score vectors;
//! * [`generation`] — Eq. 3 profile generation (reproduces Example 1);
//! * [`similarity`] — Pearson and cosine over profile vectors;
//! * [`flat`] — the category-based CF baseline (ref \[14\], no propagation);
//! * [`productvec`] — the plain product-vector CF baseline (§2's strawman);
//! * [`stereotypes`] — §6's automated stereotype generation (spherical
//!   k-means over profiles).
//!
//! ```
//! use semrec_profiles::{generation::{generate_profile, ProfileParams}, similarity};
//! use semrec_taxonomy::fixtures::example1;
//!
//! let e = example1();
//! let ratings = vec![(e.matrix_analysis, 1.0), (e.fermats_enigma, 1.0)];
//! let profile = generate_profile(&e.fig.taxonomy, &e.catalog, &ratings,
//!                                &ProfileParams::default());
//! assert!((profile.total() - 1000.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flat;
pub mod generation;
pub mod productvec;
pub mod similarity;
pub mod slab;
pub mod stereotypes;
pub mod vector;

pub use generation::{generate_profile, ProfileParams};
pub use productvec::ProductVector;
pub use slab::ProfileSlab;
pub use vector::{ProfileVector, ProfileView};
