//! Similarity computation between interest profiles (§3.3).
//!
//! "For our approach, we apply common nearest-neighbor techniques, namely
//! Pearson's coefficient and cosine distance from Information Retrieval.
//! Hereby, profile vectors map category score vectors from C instead of
//! plain product-rating vectors. High similarity evolves from interest in
//! many identical or related branches."

use crate::vector::{ProfileVector, ProfileView};

/// Cosine similarity in `[-1, 1]`; `None` if either vector is zero.
pub fn cosine(a: &ProfileVector, b: &ProfileVector) -> Option<f64> {
    cosine_view(a.as_view(), b.as_view())
}

/// [`cosine`] over borrowed profile views — the slab-backed hot path.
pub fn cosine_view(a: ProfileView<'_>, b: ProfileView<'_>) -> Option<f64> {
    semrec_obs::counter("profiles.similarity.cosine").inc();
    let na = a.norm();
    let nb = b.norm();
    if na == 0.0 || nb == 0.0 {
        return None;
    }
    Some((a.dot(b) / (na * nb)).clamp(-1.0, 1.0))
}

/// Pearson correlation over the union of both supports, in `[-1, 1]`.
///
/// Dimensions scored by neither profile carry no information (both users are
/// indifferent), so means and deviations are taken over the union of
/// non-zero topics — the convention of the profile-similarity literature.
/// `None` when fewer than 2 union dimensions exist or either side has zero
/// variance.
pub fn pearson(a: &ProfileVector, b: &ProfileVector) -> Option<f64> {
    pearson_view(a.as_view(), b.as_view())
}

/// [`pearson`] over borrowed profile views — the slab-backed hot path.
pub fn pearson_view(a: ProfileView<'_>, b: ProfileView<'_>) -> Option<f64> {
    semrec_obs::counter("profiles.similarity.pearson").inc();
    let union = union_values(a, b);
    let n = union.len();
    if n < 2 {
        return None;
    }
    let mean_a: f64 = union.iter().map(|&(x, _)| x).sum::<f64>() / n as f64;
    let mean_b: f64 = union.iter().map(|&(_, y)| y).sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for &(x, y) in &union {
        let dx = x - mean_a;
        let dy = y - mean_b;
        cov += dx * dy;
        var_a += dx * dx;
        var_b += dy * dy;
    }
    if var_a == 0.0 || var_b == 0.0 {
        return None;
    }
    Some((cov / (var_a.sqrt() * var_b.sqrt())).clamp(-1.0, 1.0))
}

/// Paired `(score_a, score_b)` values over the union of supports.
///
/// Walks the two sorted topic arenas directly; the merge order (and thus
/// every downstream float operation) is identical to the historical
/// entry-pair walk.
fn union_values(a: ProfileView<'_>, b: ProfileView<'_>) -> Vec<(f64, f64)> {
    let mut out = Vec::with_capacity(a.support() + b.support());
    let (at, asc) = (a.topics(), a.scores());
    let (bt, bsc) = (b.topics(), b.scores());
    let (mut i, mut j) = (0, 0);
    while i < at.len() || j < bt.len() {
        match (at.get(i), bt.get(j)) {
            (Some(&ta), Some(&tb)) => {
                if ta == tb {
                    out.push((asc[i], bsc[j]));
                    i += 1;
                    j += 1;
                } else if ta < tb {
                    out.push((asc[i], 0.0));
                    i += 1;
                } else {
                    out.push((0.0, bsc[j]));
                    j += 1;
                }
            }
            (Some(_), None) => {
                out.push((asc[i], 0.0));
                i += 1;
            }
            (None, Some(_)) => {
                out.push((0.0, bsc[j]));
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_taxonomy::TopicId;

    fn t(i: usize) -> TopicId {
        TopicId::from_index(i)
    }

    fn v(pairs: &[(usize, f64)]) -> ProfileVector {
        ProfileVector::from_pairs(pairs.iter().map(|&(i, s)| (t(i), s)))
    }

    #[test]
    fn identical_profiles_have_similarity_one() {
        let a = v(&[(1, 3.0), (2, 4.0), (5, 1.0)]);
        assert!((cosine(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_profiles_have_zero_cosine() {
        let a = v(&[(1, 3.0), (2, 4.0)]);
        let b = v(&[(5, 1.0), (7, 2.0)]);
        assert_eq!(cosine(&a, &b).unwrap(), 0.0);
        // Pearson over the union is negative: where one is high the other is 0.
        assert!(pearson(&a, &b).unwrap() < 0.0);
    }

    #[test]
    fn scaling_invariance() {
        let a = v(&[(1, 1.0), (2, 2.0), (3, 3.0)]);
        let mut b = a.clone();
        b.scale(42.0);
        assert!((cosine(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_vectors_are_undefined() {
        let a = v(&[(1, 1.0)]);
        let z = ProfileVector::new();
        assert_eq!(cosine(&a, &z), None);
        assert_eq!(cosine(&z, &z), None);
        assert_eq!(pearson(&z, &z), None);
    }

    #[test]
    fn single_shared_dimension_pearson_is_undefined() {
        let a = v(&[(1, 1.0)]);
        let b = v(&[(1, 2.0)]);
        // Union has one dimension: no variance to correlate.
        assert_eq!(pearson(&a, &b), None);
        assert!(cosine(&a, &b).is_some());
    }

    #[test]
    fn partial_overlap_lands_between_zero_and_one() {
        let a = v(&[(1, 5.0), (2, 5.0), (3, 5.0)]);
        let b = v(&[(2, 5.0), (3, 5.0), (4, 5.0)]);
        let c = cosine(&a, &b).unwrap();
        assert!(c > 0.5 && c < 1.0, "got {c}");
    }

    #[test]
    fn branch_overlap_raises_similarity_more_than_distant_topics() {
        // Users sharing mid-branch mass (taxonomy propagation's effect) score
        // higher than users with completely disjoint branches.
        let shared_branch_a = v(&[(10, 20.0), (2, 10.0), (1, 5.0)]);
        let shared_branch_b = v(&[(11, 20.0), (2, 10.0), (1, 5.0)]);
        let disjoint = v(&[(30, 20.0), (31, 10.0), (32, 5.0)]);
        let near = cosine(&shared_branch_a, &shared_branch_b).unwrap();
        let far = cosine(&shared_branch_a, &disjoint).unwrap();
        assert!(near > far);
    }

    #[test]
    fn results_stay_in_bounds() {
        let a = v(&[(1, 1e9), (2, -1e9)]);
        let b = v(&[(1, 1e-9), (2, 1e9)]);
        for s in [cosine(&a, &b), pearson(&a, &b)].into_iter().flatten() {
            assert!((-1.0..=1.0).contains(&s));
        }
    }
}
