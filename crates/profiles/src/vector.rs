//! Sparse score vectors over taxonomy topics.
//!
//! Interest profiles map category score vectors from the taxonomy `C`
//! "instead of plain product-rating vectors" (§3.3). Profiles are sparse —
//! a user's score mass concentrates in a few branches — so they are stored
//! as sorted topic/score pairs with merge-based vector operations.
//!
//! Since the arena refactor the pairs live in structure-of-arrays form:
//! one sorted `u32` topic array and one parallel `f64` score array. That
//! makes an owned [`ProfileVector`] and a borrowed [`ProfileView`] into a
//! [`ProfileSlab`](crate::slab::ProfileSlab) range the *same shape*, so
//! every read operation (norms, dots, merges) is written once against the
//! view and traverses both layouts in the identical order — results are
//! bit-for-bit the same wherever the floats happen to live.

use semrec_taxonomy::TopicId;

/// A sparse vector of topic scores, sorted by topic id (owned storage).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileVector {
    topics: Vec<u32>,
    scores: Vec<f64>,
}

/// A borrowed, `Copy` view of a profile: the sorted topic ids and their
/// parallel scores. This is what [`ProfileStore`](`crate`)-style slabs
/// hand out per agent, and what all similarity math consumes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProfileView<'a> {
    topics: &'a [u32],
    scores: &'a [f64],
}

impl ProfileVector {
    /// Creates an empty (all-zero) vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a vector from unsorted `(topic, score)` pairs, summing duplicates
    /// and dropping zeros.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (TopicId, f64)>) -> Self {
        let mut entries: Vec<(u32, f64)> =
            pairs.into_iter().map(|(t, s)| (t.index() as u32, s)).collect();
        entries.sort_by_key(|&(t, _)| t);
        let mut topics: Vec<u32> = Vec::with_capacity(entries.len());
        let mut scores: Vec<f64> = Vec::with_capacity(entries.len());
        for (t, s) in entries {
            match topics.last() {
                Some(&last) if last == t => *scores.last_mut().expect("parallel arrays") += s,
                _ => {
                    topics.push(t);
                    scores.push(s);
                }
            }
        }
        let mut merged = ProfileVector { topics, scores };
        merged.retain_nonzero();
        merged
    }

    /// Rebuilds an owned vector from a view (e.g. out of a slab).
    pub fn from_view(view: ProfileView<'_>) -> Self {
        ProfileVector { topics: view.topics.to_vec(), scores: view.scores.to_vec() }
    }

    /// The borrowed view of this vector — the type all read math runs on.
    pub fn as_view(&self) -> ProfileView<'_> {
        ProfileView { topics: &self.topics, scores: &self.scores }
    }

    fn retain_nonzero(&mut self) {
        let mut keep = 0;
        for i in 0..self.scores.len() {
            if self.scores[i] != 0.0 {
                self.topics[keep] = self.topics[i];
                self.scores[keep] = self.scores[i];
                keep += 1;
            }
        }
        self.topics.truncate(keep);
        self.scores.truncate(keep);
    }

    /// Number of topics with non-zero score.
    pub fn support(&self) -> usize {
        self.topics.len()
    }

    /// True if all scores are zero.
    pub fn is_empty(&self) -> bool {
        self.topics.is_empty()
    }

    /// The score of a topic (0 when absent).
    pub fn get(&self, topic: TopicId) -> f64 {
        self.as_view().get(topic)
    }

    /// Adds `score` to a topic.
    pub fn add(&mut self, topic: TopicId, score: f64) {
        if score == 0.0 {
            return;
        }
        let t = topic.index() as u32;
        match self.topics.binary_search(&t) {
            Ok(pos) => {
                self.scores[pos] += score;
                if self.scores[pos] == 0.0 {
                    self.topics.remove(pos);
                    self.scores.remove(pos);
                }
            }
            Err(pos) => {
                self.topics.insert(pos, t);
                self.scores.insert(pos, score);
            }
        }
    }

    /// Adds `other * factor` into `self` (merge-based, O(n + m)).
    pub fn add_scaled(&mut self, other: &ProfileVector, factor: f64) {
        if factor == 0.0 || other.is_empty() {
            return;
        }
        let mut topics = Vec::with_capacity(self.topics.len() + other.topics.len());
        let mut scores = Vec::with_capacity(self.topics.len() + other.topics.len());
        let (mut i, mut j) = (0, 0);
        while i < self.topics.len() || j < other.topics.len() {
            match (self.topics.get(i), other.topics.get(j)) {
                (Some(&ta), Some(&tb)) => {
                    if ta == tb {
                        let v = self.scores[i] + other.scores[j] * factor;
                        if v != 0.0 {
                            topics.push(ta);
                            scores.push(v);
                        }
                        i += 1;
                        j += 1;
                    } else if ta < tb {
                        topics.push(ta);
                        scores.push(self.scores[i]);
                        i += 1;
                    } else {
                        topics.push(tb);
                        scores.push(other.scores[j] * factor);
                        j += 1;
                    }
                }
                (Some(&ta), None) => {
                    topics.push(ta);
                    scores.push(self.scores[i]);
                    i += 1;
                }
                (None, Some(&tb)) => {
                    topics.push(tb);
                    scores.push(other.scores[j] * factor);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.topics = topics;
        self.scores = scores;
    }

    /// Multiplies every score by a factor.
    pub fn scale(&mut self, factor: f64) {
        if factor == 0.0 {
            self.topics.clear();
            self.scores.clear();
            return;
        }
        for s in &mut self.scores {
            *s *= factor;
        }
    }

    /// Total score mass `Σ_k score(d_k)`.
    pub fn total(&self) -> f64 {
        self.as_view().total()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.as_view().norm()
    }

    /// Dot product (merge-based).
    pub fn dot(&self, other: &ProfileVector) -> f64 {
        self.as_view().dot(other.as_view())
    }

    /// Number of topics present in both vectors.
    pub fn overlap(&self, other: &ProfileVector) -> usize {
        self.as_view().overlap(other.as_view())
    }

    /// Iterates `(topic, score)` pairs in topic order.
    pub fn iter(&self) -> impl Iterator<Item = (TopicId, f64)> + '_ {
        self.topics
            .iter()
            .zip(&self.scores)
            .map(|(&t, &s)| (TopicId::from_index(t as usize), s))
    }

    /// The highest-scored topics, descending.
    pub fn top_topics(&self, k: usize) -> Vec<(TopicId, f64)> {
        self.as_view().top_topics(k)
    }
}

impl<'a> ProfileView<'a> {
    /// A view over raw parallel arrays. `topics` must be strictly sorted
    /// and the arrays must have equal length (slab construction and
    /// snapshot validation guarantee this).
    pub fn from_raw(topics: &'a [u32], scores: &'a [f64]) -> Self {
        debug_assert_eq!(topics.len(), scores.len());
        ProfileView { topics, scores }
    }

    /// An empty view.
    pub fn empty() -> ProfileView<'static> {
        ProfileView { topics: &[], scores: &[] }
    }

    /// The sorted topic-index array.
    pub fn topics(&self) -> &'a [u32] {
        self.topics
    }

    /// The score array parallel to [`ProfileView::topics`].
    pub fn scores(&self) -> &'a [f64] {
        self.scores
    }

    /// Number of topics with non-zero score.
    pub fn support(&self) -> usize {
        self.topics.len()
    }

    /// True if all scores are zero.
    pub fn is_empty(&self) -> bool {
        self.topics.is_empty()
    }

    /// The score of a topic (0 when absent).
    pub fn get(&self, topic: TopicId) -> f64 {
        self.topics
            .binary_search(&(topic.index() as u32))
            .map_or(0.0, |pos| self.scores[pos])
    }

    /// Total score mass `Σ_k score(d_k)`.
    pub fn total(&self) -> f64 {
        self.scores.iter().sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.scores.iter().map(|&s| s * s).sum::<f64>().sqrt()
    }

    /// Dot product (merge-based over the sorted topic arrays).
    pub fn dot(&self, other: ProfileView<'_>) -> f64 {
        let (mut i, mut j) = (0, 0);
        let mut sum = 0.0;
        while i < self.topics.len() && j < other.topics.len() {
            let ta = self.topics[i];
            let tb = other.topics[j];
            if ta == tb {
                sum += self.scores[i] * other.scores[j];
                i += 1;
                j += 1;
            } else if ta < tb {
                i += 1;
            } else {
                j += 1;
            }
        }
        sum
    }

    /// Number of topics present in both vectors.
    pub fn overlap(&self, other: ProfileView<'_>) -> usize {
        let (mut i, mut j) = (0, 0);
        let mut count = 0;
        while i < self.topics.len() && j < other.topics.len() {
            let ta = self.topics[i];
            let tb = other.topics[j];
            if ta == tb {
                count += 1;
                i += 1;
                j += 1;
            } else if ta < tb {
                i += 1;
            } else {
                j += 1;
            }
        }
        count
    }

    /// Iterates `(topic, score)` pairs in topic order.
    pub fn iter(&self) -> impl Iterator<Item = (TopicId, f64)> + 'a {
        self.topics
            .iter()
            .zip(self.scores)
            .map(|(&t, &s)| (TopicId::from_index(t as usize), s))
    }

    /// Copies the view into an owned [`ProfileVector`].
    pub fn to_vector(&self) -> ProfileVector {
        ProfileVector::from_view(*self)
    }

    /// The highest-scored topics, descending.
    pub fn top_topics(&self, k: usize) -> Vec<(TopicId, f64)> {
        let mut sorted: Vec<(TopicId, f64)> = self.iter().collect();
        sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        sorted.truncate(k);
        sorted
    }
}

impl FromIterator<(TopicId, f64)> for ProfileVector {
    fn from_iter<I: IntoIterator<Item = (TopicId, f64)>>(iter: I) -> Self {
        Self::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> TopicId {
        TopicId::from_index(i)
    }

    #[test]
    fn from_pairs_merges_and_sorts() {
        let v = ProfileVector::from_pairs([(t(3), 1.0), (t(1), 2.0), (t(3), 0.5), (t(2), 0.0)]);
        assert_eq!(v.support(), 2);
        assert_eq!(v.get(t(1)), 2.0);
        assert_eq!(v.get(t(3)), 1.5);
        assert_eq!(v.get(t(2)), 0.0);
        let topics: Vec<_> = v.iter().map(|(t, _)| t).collect();
        assert_eq!(topics, vec![t(1), t(3)]);
    }

    #[test]
    fn add_and_cancel() {
        let mut v = ProfileVector::new();
        v.add(t(5), 2.0);
        v.add(t(5), -2.0);
        assert!(v.is_empty());
        v.add(t(5), 0.0);
        assert!(v.is_empty());
    }

    #[test]
    fn add_scaled_merges_disjoint_and_shared() {
        let mut a = ProfileVector::from_pairs([(t(1), 1.0), (t(3), 2.0)]);
        let b = ProfileVector::from_pairs([(t(2), 4.0), (t(3), 1.0)]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.get(t(1)), 1.0);
        assert_eq!(a.get(t(2)), 2.0);
        assert_eq!(a.get(t(3)), 2.5);
        assert_eq!(a.support(), 3);
    }

    #[test]
    fn totals_and_norms() {
        let v = ProfileVector::from_pairs([(t(0), 3.0), (t(1), 4.0)]);
        assert_eq!(v.total(), 7.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(ProfileVector::new().norm(), 0.0);
    }

    #[test]
    fn dot_and_overlap() {
        let a = ProfileVector::from_pairs([(t(1), 1.0), (t(2), 2.0), (t(4), 3.0)]);
        let b = ProfileVector::from_pairs([(t(2), 5.0), (t(3), 7.0), (t(4), 1.0)]);
        assert_eq!(a.dot(&b), 2.0 * 5.0 + 3.0 * 1.0);
        assert_eq!(a.overlap(&b), 2);
        assert_eq!(a.dot(&ProfileVector::new()), 0.0);
    }

    #[test]
    fn scale() {
        let mut v = ProfileVector::from_pairs([(t(1), 2.0)]);
        v.scale(2.5);
        assert_eq!(v.get(t(1)), 5.0);
        v.scale(0.0);
        assert!(v.is_empty());
    }

    #[test]
    fn top_topics_sorted_desc() {
        let v = ProfileVector::from_pairs([(t(1), 1.0), (t(2), 9.0), (t(3), 5.0)]);
        let top = v.top_topics(2);
        assert_eq!(top, vec![(t(2), 9.0), (t(3), 5.0)]);
        assert_eq!(v.top_topics(10).len(), 3);
    }

    #[test]
    fn view_matches_owned_vector_on_every_read_op() {
        let a = ProfileVector::from_pairs([(t(1), 1.5), (t(2), -2.0), (t(7), 3.25)]);
        let b = ProfileVector::from_pairs([(t(2), 5.0), (t(7), 7.0), (t(9), 1.0)]);
        let (va, vb) = (a.as_view(), b.as_view());
        assert_eq!(va.support(), a.support());
        assert_eq!(va.total().to_bits(), a.total().to_bits());
        assert_eq!(va.norm().to_bits(), a.norm().to_bits());
        assert_eq!(va.dot(vb).to_bits(), a.dot(&b).to_bits());
        assert_eq!(va.overlap(vb), a.overlap(&b));
        assert_eq!(va.get(t(2)), a.get(t(2)));
        assert_eq!(va.top_topics(2), a.top_topics(2));
        let round_trip = va.to_vector();
        assert_eq!(round_trip, a);
    }

    #[test]
    fn view_from_raw_arrays() {
        let topics = [1u32, 4, 9];
        let scores = [0.5, -1.0, 2.0];
        let view = ProfileView::from_raw(&topics, &scores);
        assert_eq!(view.get(t(4)), -1.0);
        assert_eq!(view.get(t(5)), 0.0);
        assert_eq!(view.to_vector().support(), 3);
        assert!(ProfileView::empty().is_empty());
    }
}
