//! Sparse score vectors over taxonomy topics.
//!
//! Interest profiles map category score vectors from the taxonomy `C`
//! "instead of plain product-rating vectors" (§3.3). Profiles are sparse —
//! a user's score mass concentrates in a few branches — so they are stored
//! as sorted `(topic, score)` pairs with merge-based vector operations.

use semrec_taxonomy::TopicId;

/// A sparse vector of topic scores, sorted by topic id.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileVector {
    entries: Vec<(TopicId, f64)>,
}

impl ProfileVector {
    /// Creates an empty (all-zero) vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a vector from unsorted `(topic, score)` pairs, summing duplicates
    /// and dropping zeros.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (TopicId, f64)>) -> Self {
        let mut entries: Vec<(TopicId, f64)> = pairs.into_iter().collect();
        entries.sort_by_key(|&(t, _)| t);
        let mut merged: Vec<(TopicId, f64)> = Vec::with_capacity(entries.len());
        for (t, s) in entries {
            match merged.last_mut() {
                Some((last, acc)) if *last == t => *acc += s,
                _ => merged.push((t, s)),
            }
        }
        merged.retain(|&(_, s)| s != 0.0);
        ProfileVector { entries: merged }
    }

    /// Number of topics with non-zero score.
    pub fn support(&self) -> usize {
        self.entries.len()
    }

    /// True if all scores are zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The score of a topic (0 when absent).
    pub fn get(&self, topic: TopicId) -> f64 {
        self.entries
            .binary_search_by_key(&topic, |&(t, _)| t)
            .map_or(0.0, |pos| self.entries[pos].1)
    }

    /// Adds `score` to a topic.
    pub fn add(&mut self, topic: TopicId, score: f64) {
        if score == 0.0 {
            return;
        }
        match self.entries.binary_search_by_key(&topic, |&(t, _)| t) {
            Ok(pos) => {
                self.entries[pos].1 += score;
                if self.entries[pos].1 == 0.0 {
                    self.entries.remove(pos);
                }
            }
            Err(pos) => self.entries.insert(pos, (topic, score)),
        }
    }

    /// Adds `other * factor` into `self` (merge-based, O(n + m)).
    pub fn add_scaled(&mut self, other: &ProfileVector, factor: f64) {
        if factor == 0.0 || other.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() || j < other.entries.len() {
            match (self.entries.get(i), other.entries.get(j)) {
                (Some(&(ta, sa)), Some(&(tb, sb))) => {
                    if ta == tb {
                        let v = sa + sb * factor;
                        if v != 0.0 {
                            merged.push((ta, v));
                        }
                        i += 1;
                        j += 1;
                    } else if ta < tb {
                        merged.push((ta, sa));
                        i += 1;
                    } else {
                        merged.push((tb, sb * factor));
                        j += 1;
                    }
                }
                (Some(&(ta, sa)), None) => {
                    merged.push((ta, sa));
                    i += 1;
                }
                (None, Some(&(tb, sb))) => {
                    merged.push((tb, sb * factor));
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.entries = merged;
    }

    /// Multiplies every score by a factor.
    pub fn scale(&mut self, factor: f64) {
        if factor == 0.0 {
            self.entries.clear();
            return;
        }
        for (_, s) in &mut self.entries {
            *s *= factor;
        }
    }

    /// Total score mass `Σ_k score(d_k)`.
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|&(_, s)| s).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|&(_, s)| s * s).sum::<f64>().sqrt()
    }

    /// Dot product (merge-based).
    pub fn dot(&self, other: &ProfileVector) -> f64 {
        let (mut i, mut j) = (0, 0);
        let mut sum = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            let (ta, sa) = self.entries[i];
            let (tb, sb) = other.entries[j];
            if ta == tb {
                sum += sa * sb;
                i += 1;
                j += 1;
            } else if ta < tb {
                i += 1;
            } else {
                j += 1;
            }
        }
        sum
    }

    /// Number of topics present in both vectors.
    pub fn overlap(&self, other: &ProfileVector) -> usize {
        let (mut i, mut j) = (0, 0);
        let mut count = 0;
        while i < self.entries.len() && j < other.entries.len() {
            let ta = self.entries[i].0;
            let tb = other.entries[j].0;
            if ta == tb {
                count += 1;
                i += 1;
                j += 1;
            } else if ta < tb {
                i += 1;
            } else {
                j += 1;
            }
        }
        count
    }

    /// Iterates `(topic, score)` pairs in topic order.
    pub fn iter(&self) -> impl Iterator<Item = (TopicId, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// The highest-scored topics, descending.
    pub fn top_topics(&self, k: usize) -> Vec<(TopicId, f64)> {
        let mut sorted = self.entries.clone();
        sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        sorted.truncate(k);
        sorted
    }
}

impl FromIterator<(TopicId, f64)> for ProfileVector {
    fn from_iter<I: IntoIterator<Item = (TopicId, f64)>>(iter: I) -> Self {
        Self::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> TopicId {
        TopicId::from_index(i)
    }

    #[test]
    fn from_pairs_merges_and_sorts() {
        let v = ProfileVector::from_pairs([(t(3), 1.0), (t(1), 2.0), (t(3), 0.5), (t(2), 0.0)]);
        assert_eq!(v.support(), 2);
        assert_eq!(v.get(t(1)), 2.0);
        assert_eq!(v.get(t(3)), 1.5);
        assert_eq!(v.get(t(2)), 0.0);
        let topics: Vec<_> = v.iter().map(|(t, _)| t).collect();
        assert_eq!(topics, vec![t(1), t(3)]);
    }

    #[test]
    fn add_and_cancel() {
        let mut v = ProfileVector::new();
        v.add(t(5), 2.0);
        v.add(t(5), -2.0);
        assert!(v.is_empty());
        v.add(t(5), 0.0);
        assert!(v.is_empty());
    }

    #[test]
    fn add_scaled_merges_disjoint_and_shared() {
        let mut a = ProfileVector::from_pairs([(t(1), 1.0), (t(3), 2.0)]);
        let b = ProfileVector::from_pairs([(t(2), 4.0), (t(3), 1.0)]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.get(t(1)), 1.0);
        assert_eq!(a.get(t(2)), 2.0);
        assert_eq!(a.get(t(3)), 2.5);
        assert_eq!(a.support(), 3);
    }

    #[test]
    fn totals_and_norms() {
        let v = ProfileVector::from_pairs([(t(0), 3.0), (t(1), 4.0)]);
        assert_eq!(v.total(), 7.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(ProfileVector::new().norm(), 0.0);
    }

    #[test]
    fn dot_and_overlap() {
        let a = ProfileVector::from_pairs([(t(1), 1.0), (t(2), 2.0), (t(4), 3.0)]);
        let b = ProfileVector::from_pairs([(t(2), 5.0), (t(3), 7.0), (t(4), 1.0)]);
        assert_eq!(a.dot(&b), 2.0 * 5.0 + 3.0 * 1.0);
        assert_eq!(a.overlap(&b), 2);
        assert_eq!(a.dot(&ProfileVector::new()), 0.0);
    }

    #[test]
    fn scale() {
        let mut v = ProfileVector::from_pairs([(t(1), 2.0)]);
        v.scale(2.5);
        assert_eq!(v.get(t(1)), 5.0);
        v.scale(0.0);
        assert!(v.is_empty());
    }

    #[test]
    fn top_topics_sorted_desc() {
        let v = ProfileVector::from_pairs([(t(1), 1.0), (t(2), 9.0), (t(3), 5.0)]);
        let top = v.top_topics(2);
        assert_eq!(top, vec![(t(2), 9.0), (t(3), 5.0)]);
        assert_eq!(v.top_topics(10).len(), 3);
    }
}
