//! Plain product-rating vector profiles — the classic CF baseline (§2).
//!
//! "Interest profiles are generally represented by vectors indicating the
//! user's opinion for every product." The paper's *low profile overlap*
//! research issue is exactly this representation's failure mode: in a large
//! catalog two users have likely rated no products in common, so Pearson
//! over co-rated items is undefined. Experiments E5/E8 quantify that against
//! the taxonomy-based representation.

use semrec_taxonomy::ProductId;

/// A sparse product-rating vector, sorted by product id.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProductVector {
    entries: Vec<(ProductId, f64)>,
}

impl ProductVector {
    /// Builds from `(product, rating)` pairs; later duplicates overwrite.
    pub fn from_ratings(ratings: &[(ProductId, f64)]) -> Self {
        let mut entries: Vec<(ProductId, f64)> = ratings.to_vec();
        entries.sort_by_key(|&(p, _)| p);
        entries.dedup_by_key(|&mut (p, _)| p);
        ProductVector { entries }
    }

    /// Number of rated products.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no products are rated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The rating for a product, or `None` for `⊥`.
    pub fn get(&self, product: ProductId) -> Option<f64> {
        self.entries
            .binary_search_by_key(&product, |&(p, _)| p)
            .ok()
            .map(|pos| self.entries[pos].1)
    }

    /// Iterates `(product, rating)` pairs in product order.
    pub fn iter(&self) -> impl Iterator<Item = (ProductId, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Products rated by both users, with both ratings.
    pub fn co_rated(&self, other: &ProductVector) -> Vec<(ProductId, f64, f64)> {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.entries.len() && j < other.entries.len() {
            let (pa, ra) = self.entries[i];
            let (pb, rb) = other.entries[j];
            if pa == pb {
                out.push((pa, ra, rb));
                i += 1;
                j += 1;
            } else if pa < pb {
                i += 1;
            } else {
                j += 1;
            }
        }
        out
    }

    /// Classic CF Pearson correlation over co-rated products only.
    ///
    /// `None` when fewer than 2 co-rated products exist or a side has zero
    /// variance — the overlap failure the paper's §2 describes.
    pub fn pearson(&self, other: &ProductVector) -> Option<f64> {
        let co = self.co_rated(other);
        let n = co.len();
        if n < 2 {
            return None;
        }
        let mean_a: f64 = co.iter().map(|&(_, a, _)| a).sum::<f64>() / n as f64;
        let mean_b: f64 = co.iter().map(|&(_, _, b)| b).sum::<f64>() / n as f64;
        let mut cov = 0.0;
        let mut var_a = 0.0;
        let mut var_b = 0.0;
        for &(_, a, b) in &co {
            cov += (a - mean_a) * (b - mean_b);
            var_a += (a - mean_a) * (a - mean_a);
            var_b += (b - mean_b) * (b - mean_b);
        }
        if var_a == 0.0 || var_b == 0.0 {
            return None;
        }
        Some((cov / (var_a.sqrt() * var_b.sqrt())).clamp(-1.0, 1.0))
    }

    /// Cosine similarity over the full rating vectors; `None` on zero norms.
    pub fn cosine(&self, other: &ProductVector) -> Option<f64> {
        let na: f64 = self.entries.iter().map(|&(_, r)| r * r).sum::<f64>().sqrt();
        let nb: f64 = other.entries.iter().map(|&(_, r)| r * r).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            return None;
        }
        let dot: f64 = self.co_rated(other).iter().map(|&(_, a, b)| a * b).sum();
        Some((dot / (na * nb)).clamp(-1.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProductId {
        ProductId::from_index(i)
    }

    fn v(pairs: &[(usize, f64)]) -> ProductVector {
        let ratings: Vec<_> = pairs.iter().map(|&(i, r)| (p(i), r)).collect();
        ProductVector::from_ratings(&ratings)
    }

    #[test]
    fn construction_and_lookup() {
        let a = v(&[(3, 1.0), (1, -0.5)]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(p(1)), Some(-0.5));
        assert_eq!(a.get(p(2)), None);
    }

    #[test]
    fn co_rated_intersection() {
        let a = v(&[(1, 1.0), (2, 0.5), (4, -1.0)]);
        let b = v(&[(2, 1.0), (3, 0.5), (4, 1.0)]);
        let co = a.co_rated(&b);
        assert_eq!(co.len(), 2);
        assert_eq!(co[0], (p(2), 0.5, 1.0));
        assert_eq!(co[1], (p(4), -1.0, 1.0));
    }

    #[test]
    fn pearson_requires_overlap() {
        let a = v(&[(1, 1.0), (2, 0.5)]);
        let b = v(&[(3, 1.0), (4, 0.5)]);
        assert_eq!(a.pearson(&b), None); // no co-rated products: ⊥
        let c = v(&[(1, 1.0), (3, 0.5)]);
        assert_eq!(a.pearson(&c), None); // one co-rated product: still ⊥
    }

    #[test]
    fn pearson_perfect_agreement() {
        let a = v(&[(1, 1.0), (2, 0.5), (3, -1.0)]);
        let b = v(&[(1, 0.8), (2, 0.3), (3, -1.0)]);
        let r = a.pearson(&b).unwrap();
        assert!(r > 0.9, "got {r}");
        let anti = v(&[(1, -1.0), (2, -0.5), (3, 1.0)]);
        assert!(a.pearson(&anti).unwrap() < -0.9);
    }

    #[test]
    fn pearson_zero_variance_is_undefined() {
        let a = v(&[(1, 0.5), (2, 0.5)]);
        let b = v(&[(1, 1.0), (2, 0.0)]);
        assert_eq!(a.pearson(&b), None);
    }

    #[test]
    fn cosine_of_identical_is_one() {
        let a = v(&[(1, 1.0), (2, 0.5)]);
        assert!((a.cosine(&a).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(a.cosine(&ProductVector::default()), None);
    }

    #[test]
    fn duplicate_ratings_keep_first() {
        let ratings = vec![(p(1), 0.5), (p(1), 0.9)];
        let a = ProductVector::from_ratings(&ratings);
        assert_eq!(a.len(), 1);
    }
}
