//! Taxonomy-based interest profile generation (§3.3, Eq. 3, Example 1).
//!
//! Each product a user likes infers interest score for its topic descriptors
//! `f(b)`, *and fractional interest for all super-topics*, with remote
//! super-topics accorded less than near ones. Along the path
//! `(p_0 = ⊤, …, p_q = d)` scores obey the sibling-discount recurrence
//!
//! ```text
//! sco(p_m) = sco(p_{m+1}) / (sib(p_{m+1}) + 1)          (Eq. 3)
//! ```
//!
//! and the whole profile is normalized so all topic score sums to a fixed
//! value `s` — "high product ratings from agents with short product rating
//! histories have higher impact … than product ratings from persons issuing
//! rife ratings". `s` is divided evenly among all contributing products.
//!
//! Example 1 (reproduced in experiment E1 and the tests below): 4 books,
//! `s = 1000`, *Matrix Analysis* with 5 descriptors → its Algebra descriptor
//! is allotted `1000/(4·5) = 50`, which Eq. 3 spreads along
//! Algebra → Pure → Mathematics → Science → Books as
//! 29.09 / 14.55 / 4.85 / 1.21 / 0.30.

use semrec_taxonomy::{Catalog, ProductId, Taxonomy, TopicId};

use crate::vector::ProfileVector;

/// Parameters of profile generation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProfileParams {
    /// The fixed total score `s` every profile is normalized to.
    pub total_score: f64,
    /// Minimum rating for a product to count as "liked" and contribute.
    /// The paper's All Consuming data is implicit (mentions = likes), which
    /// corresponds to ratings of 1.0 and a threshold of 0.
    pub min_rating: f64,
    /// Extension: weight each product's share of `s` by its rating value
    /// instead of dividing evenly. Off by default (paper behaviour).
    pub rating_weighted: bool,
}

impl Default for ProfileParams {
    fn default() -> Self {
        ProfileParams { total_score: 1000.0, min_rating: 0.0, rating_weighted: false }
    }
}

/// Distributes `allotment` along one root path per Eq. 3 into `out`.
///
/// The leaf keeps the largest share κ and each ancestor level divides by
/// `sib + 1`; κ is chosen so the path total equals the allotment.
fn distribute_along_path(path: &[TopicId], taxonomy: &Taxonomy, allotment: f64, out: &mut ProfileVector) {
    debug_assert!(!path.is_empty());
    if path.len() == 1 {
        // Descriptor is ⊤ itself.
        out.add(path[0], allotment);
        return;
    }
    // factor[m] relative to the leaf's κ: factor[q] = 1,
    // factor[m] = factor[m+1] / (sib(p_{m+1}) + 1).
    let q = path.len() - 1;
    let mut factors = vec![0.0; path.len()];
    factors[q] = 1.0;
    for m in (0..q).rev() {
        let child = path[m + 1];
        let parent = path[m];
        let sib = taxonomy.siblings_under(child, parent) as f64;
        factors[m] = factors[m + 1] / (sib + 1.0);
    }
    let sum: f64 = factors.iter().sum();
    let kappa = allotment / sum;
    for (m, &topic) in path.iter().enumerate() {
        out.add(topic, kappa * factors[m]);
    }
}

/// Generates the taxonomy-based interest profile of a user from their
/// rated products.
///
/// Products below `min_rating` are skipped; if nothing qualifies the profile
/// is empty. The result always satisfies `profile.total() == total_score`
/// (up to floating point) when non-empty.
pub fn generate_profile(
    taxonomy: &Taxonomy,
    catalog: &Catalog,
    ratings: &[(ProductId, f64)],
    params: &ProfileParams,
) -> ProfileVector {
    let liked: Vec<(ProductId, f64)> = ratings
        .iter()
        .copied()
        .filter(|&(_, r)| r > params.min_rating)
        .collect();
    if liked.is_empty() {
        return ProfileVector::new();
    }

    let weight_sum: f64 = if params.rating_weighted {
        liked.iter().map(|&(_, r)| r).sum()
    } else {
        liked.len() as f64
    };

    let mut profile = ProfileVector::new();
    for &(product, rating) in &liked {
        let share = if params.rating_weighted { rating } else { 1.0 };
        let product_allotment = params.total_score * share / weight_sum;
        let descriptors = catalog.descriptors(product);
        let per_descriptor = product_allotment / descriptors.len() as f64;
        for &descriptor in descriptors {
            let paths = taxonomy.paths_from_top(descriptor);
            let per_path = per_descriptor / paths.len() as f64;
            for path in &paths {
                distribute_along_path(path, taxonomy, per_path, &mut profile);
            }
        }
    }
    profile
}

/// The per-topic scores Eq. 3 accords to a single descriptor allotment,
/// reported per path topic — the exact computation of Example 1.
pub fn descriptor_scores(
    taxonomy: &Taxonomy,
    descriptor: TopicId,
    allotment: f64,
) -> Vec<(TopicId, f64)> {
    let mut v = ProfileVector::new();
    let paths = taxonomy.paths_from_top(descriptor);
    let per_path = allotment / paths.len() as f64;
    for path in &paths {
        distribute_along_path(path, taxonomy, per_path, &mut v);
    }
    let mut out: Vec<_> = v.iter().collect();
    // Deepest (most specific) topic first, mirroring Example 1's narration.
    out.sort_by_key(|&(t, _)| std::cmp::Reverse(taxonomy.depth(t)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_taxonomy::fixtures::{example1, figure1};

    #[test]
    fn example_1_exact_scores() {
        // "Suppose that s=1000 … the score assigned to descriptor Algebra
        // amounts to s/(4·5)=50. … Score 29.087 becomes accorded to topic
        // Algebra. Likewise, we get 14.543 for Pure, 4.848 for Mathematics,
        // 1.212 for Science, and 0.303 for Books."
        let f = figure1();
        let scores = descriptor_scores(&f.taxonomy, f.algebra, 50.0);
        let labels: Vec<(&str, f64)> =
            scores.iter().map(|&(t, s)| (f.taxonomy.label(t), s)).collect();
        assert_eq!(labels.len(), 5);
        let expect = [
            ("Algebra", 29.09),
            ("Pure", 14.55),
            ("Mathematics", 4.85),
            ("Science", 1.21),
            ("Books", 0.30),
        ];
        for ((label, score), (want_label, want)) in labels.iter().zip(expect) {
            assert_eq!(*label, want_label);
            // The paper prints 29.087/14.543/4.848/1.212/0.303 — identical up
            // to its own rounding of κ (±0.004).
            assert!(
                (score - want).abs() < 0.01,
                "{label}: got {score}, expected ≈{want}"
            );
        }
        // The path total is exactly the descriptor's allotment.
        let sum: f64 = scores.iter().map(|&(_, s)| s).sum();
        assert!((sum - 50.0).abs() < 1e-9);
    }

    #[test]
    fn matrix_analysis_allotment_is_fifty() {
        // 4 books, 5 descriptors on Matrix Analysis → 1000/(4·5) = 50.
        let e = example1();
        let ratings: Vec<(ProductId, f64)> =
            e.catalog.iter().map(|p| (p, 1.0)).collect();
        assert_eq!(ratings.len(), 4);
        let params = ProfileParams::default();
        let n_desc = e.catalog.descriptors(e.matrix_analysis).len() as f64;
        let allotment = params.total_score / (4.0 * n_desc);
        assert_eq!(allotment, 50.0);
    }

    #[test]
    fn profile_mass_equals_s() {
        let e = example1();
        let ratings: Vec<(ProductId, f64)> = e.catalog.iter().map(|p| (p, 1.0)).collect();
        let profile =
            generate_profile(&e.fig.taxonomy, &e.catalog, &ratings, &ProfileParams::default());
        assert!((profile.total() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn example1_full_profile_scores_algebra_as_reported() {
        let e = example1();
        let ratings: Vec<(ProductId, f64)> = e.catalog.iter().map(|p| (p, 1.0)).collect();
        let profile =
            generate_profile(&e.fig.taxonomy, &e.catalog, &ratings, &ProfileParams::default());
        // Algebra receives score only from the Algebra descriptor of
        // Matrix Analysis: ≈29.09.
        assert!((profile.get(e.fig.algebra) - 29.0909).abs() < 0.01);
        // Books (⊤) accumulates the top-level residue from all 4 books.
        assert!(profile.get(semrec_taxonomy::TopicId::TOP) > 0.0);
    }

    #[test]
    fn disliked_products_do_not_contribute() {
        let e = example1();
        let ratings = vec![(e.matrix_analysis, 1.0), (e.snow_crash, -0.8)];
        let profile =
            generate_profile(&e.fig.taxonomy, &e.catalog, &ratings, &ProfileParams::default());
        assert_eq!(profile.get(e.fig.cyberpunk), 0.0);
        assert!((profile.total() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn empty_ratings_yield_empty_profile() {
        let e = example1();
        let profile =
            generate_profile(&e.fig.taxonomy, &e.catalog, &[], &ProfileParams::default());
        assert!(profile.is_empty());
        let all_disliked = vec![(e.snow_crash, -1.0)];
        let profile = generate_profile(
            &e.fig.taxonomy,
            &e.catalog,
            &all_disliked,
            &ProfileParams::default(),
        );
        assert!(profile.is_empty());
    }

    #[test]
    fn fewer_ratings_mean_higher_per_product_impact() {
        // "high product ratings from agents with short product rating
        // histories have higher impact on profile generation".
        let e = example1();
        let one = generate_profile(
            &e.fig.taxonomy,
            &e.catalog,
            &[(e.snow_crash, 1.0)],
            &ProfileParams::default(),
        );
        let two = generate_profile(
            &e.fig.taxonomy,
            &e.catalog,
            &[(e.snow_crash, 1.0), (e.matrix_analysis, 1.0)],
            &ProfileParams::default(),
        );
        assert!(one.get(e.fig.cyberpunk) > two.get(e.fig.cyberpunk));
        assert!((one.total() - two.total()).abs() < 1e-6); // both normalized to s
    }

    #[test]
    fn rating_weighted_variant_shifts_mass() {
        let e = example1();
        let ratings = vec![(e.snow_crash, 1.0), (e.matrix_analysis, 0.25)];
        let even = generate_profile(
            &e.fig.taxonomy,
            &e.catalog,
            &ratings,
            &ProfileParams::default(),
        );
        let weighted = generate_profile(
            &e.fig.taxonomy,
            &e.catalog,
            &ratings,
            &ProfileParams { rating_weighted: true, ..Default::default() },
        );
        assert!(weighted.get(e.fig.cyberpunk) > even.get(e.fig.cyberpunk));
        assert!((weighted.total() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn top_descriptor_takes_whole_allotment() {
        let f = figure1();
        let scores = descriptor_scores(&f.taxonomy, semrec_taxonomy::TopicId::TOP, 10.0);
        assert_eq!(scores.len(), 1);
        assert_eq!(scores[0].1, 10.0);
    }

    #[test]
    fn sibling_free_chain_splits_half_per_level() {
        // Top → A → B with no siblings anywhere: sib+1 = 1 at every level, so
        // every topic on the path receives the same score.
        let mut b = semrec_taxonomy::Taxonomy::builder("Top");
        let a = b.add_topic("A", semrec_taxonomy::TopicId::TOP).unwrap();
        let bb = b.add_topic("B", a).unwrap();
        let t = b.build();
        let scores = descriptor_scores(&t, bb, 30.0);
        for &(_, s) in &scores {
            assert!((s - 10.0).abs() < 1e-9);
        }
    }
}
