//! Flat category-based profiles — the Sollenborn & Funk baseline (ref \[14\]).
//!
//! "Category-based collaborative filtering and related methods reduce
//! dimensionality by generating vectors containing categories … However,
//! the more fine-grained latter categories are defined, the less profile
//! overlap we may expect. Furthermore, relationships and mutual impact
//! between categories become lost."
//!
//! This baseline assigns each product's score only to its *descriptor
//! topics themselves* — no upward propagation — so it keeps Eq. 3's
//! normalization discipline but discards the taxonomy structure. E8/E10
//! compare it against the taxonomy-based generator.

use semrec_taxonomy::{Catalog, ProductId};

use crate::generation::ProfileParams;
use crate::vector::ProfileVector;

/// Generates a flat category profile: descriptor topics only, no ancestors.
pub fn generate_flat_profile(
    catalog: &Catalog,
    ratings: &[(ProductId, f64)],
    params: &ProfileParams,
) -> ProfileVector {
    let liked: Vec<(ProductId, f64)> = ratings
        .iter()
        .copied()
        .filter(|&(_, r)| r > params.min_rating)
        .collect();
    if liked.is_empty() {
        return ProfileVector::new();
    }
    let weight_sum: f64 = if params.rating_weighted {
        liked.iter().map(|&(_, r)| r).sum()
    } else {
        liked.len() as f64
    };
    let mut profile = ProfileVector::new();
    for &(product, rating) in &liked {
        let share = if params.rating_weighted { rating } else { 1.0 };
        let allotment = params.total_score * share / weight_sum;
        let descriptors = catalog.descriptors(product);
        let per_descriptor = allotment / descriptors.len() as f64;
        for &d in descriptors {
            profile.add(d, per_descriptor);
        }
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generation::generate_profile;
    use semrec_taxonomy::fixtures::example1;

    #[test]
    fn flat_profile_mass_equals_s() {
        let e = example1();
        let ratings: Vec<_> = e.catalog.iter().map(|p| (p, 1.0)).collect();
        let flat = generate_flat_profile(&e.catalog, &ratings, &ProfileParams::default());
        assert!((flat.total() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn flat_profiles_score_no_ancestors() {
        let e = example1();
        let ratings = vec![(e.matrix_analysis, 1.0)];
        let flat = generate_flat_profile(&e.catalog, &ratings, &ProfileParams::default());
        // Only the 5 descriptors themselves carry score.
        assert_eq!(flat.support(), 5);
        assert_eq!(flat.get(e.fig.science), 0.0);
        assert_eq!(flat.get(semrec_taxonomy::TopicId::TOP), 0.0);
        assert!((flat.get(e.fig.algebra) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn taxonomy_profiles_overlap_where_flat_ones_do_not() {
        // Two users reading sibling leaf topics: flat profiles are disjoint,
        // taxonomy profiles share the whole ancestor chain — the paper's
        // core argument for Eq. 3.
        let e = example1();
        let t = &e.fig.taxonomy;
        let params = ProfileParams::default();

        // One reads Algebra-only books (Matrix Analysis), the other Number
        // Theory (Fermat's Enigma) — different leaves under Mathematics.
        let ra = vec![(e.matrix_analysis, 1.0)];
        let rb = vec![(e.fermats_enigma, 1.0)];

        let flat_a = generate_flat_profile(&e.catalog, &ra, &params);
        let flat_b = generate_flat_profile(&e.catalog, &rb, &params);
        assert_eq!(flat_a.overlap(&flat_b), 0);

        let tax_a = generate_profile(t, &e.catalog, &ra, &params);
        let tax_b = generate_profile(t, &e.catalog, &rb, &params);
        assert!(tax_a.overlap(&tax_b) >= 3, "shared ancestors must overlap");
        let sim = crate::similarity::cosine(&tax_a, &tax_b).unwrap();
        assert!(sim > 0.0);
    }

    #[test]
    fn empty_when_nothing_liked() {
        let e = example1();
        let flat = generate_flat_profile(
            &e.catalog,
            &[(e.snow_crash, -1.0)],
            &ProfileParams::default(),
        );
        assert!(flat.is_empty());
    }
}
