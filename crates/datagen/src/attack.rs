//! Attack injection — the §2 security issue made concrete.
//!
//! "Collaborative filtering tends to be highly susceptive to manipulation.
//! For instance, malicious agents a_j can accomplish high similarity with
//! a_i by simply copying its profile." This module injects the standard
//! shilling-attack taxonomy:
//!
//! * [`AttackStrategy::ProfileCopy`] — the paper's own example: sybils
//!   clone the victim's rating history (maximal targeted similarity);
//! * [`AttackStrategy::Bandwagon`] — sybils rate globally popular products
//!   (high similarity to *many* users without knowing any victim);
//! * [`AttackStrategy::Random`] — sybils rate random products (the weakest
//!   baseline attack).
//!
//! All sybils additionally rate the pushed product 1.0. Experiment E7
//! measures how often the pushed product reaches the victim's top-N under
//! plain CF versus the trust-filtered hybrid.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use semrec_core::Community;
use semrec_taxonomy::ProductId;
use semrec_trust::AgentId;

/// How sybils construct their cover profiles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AttackStrategy {
    /// Clone the victim's positive ratings (the paper's §3.2 example).
    #[default]
    ProfileCopy,
    /// Rate the most popular products (similarity to many users at once).
    Bandwagon,
    /// Rate random products.
    Random,
}

/// Configuration of a sybil (shilling) attack.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttackConfig {
    /// Number of sybil accounts to create.
    pub sybils: usize,
    /// The product the attacker wants recommended.
    pub pushed_product: ProductId,
    /// The agent whose profile is copied (and who is to be manipulated).
    pub victim: AgentId,
    /// Sybils issue mutual trust statements (a clique), mimicking real
    /// reputations — harmless against local trust but cheap to do.
    pub build_clique: bool,
    /// RNG seed (used for sybil trust weights).
    pub seed: u64,
}

/// Injects a sybil attack with the chosen cover-profile strategy, returning
/// the sybil agent ids. Cover profiles match the victim's history length.
pub fn inject_attack(
    community: &mut Community,
    config: &AttackConfig,
    strategy: AttackStrategy,
) -> Vec<AgentId> {
    match strategy {
        AttackStrategy::ProfileCopy => inject_profile_copy_attack(community, config),
        AttackStrategy::Bandwagon | AttackStrategy::Random => {
            inject_generic(community, config, strategy)
        }
    }
}

fn inject_generic(
    community: &mut Community,
    config: &AttackConfig,
    strategy: AttackStrategy,
) -> Vec<AgentId> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let cover_size = community
        .ratings_of(config.victim)
        .iter()
        .filter(|&&(_, r)| r > 0.0)
        .count()
        .max(3);

    // Cover product pool: popularity-ranked for bandwagon, shuffled for random.
    let mut pool: Vec<(ProductId, usize)> = community
        .catalog
        .iter()
        .map(|p| {
            let raters = community
                .agents()
                .filter(|&a| community.rating(a, p).is_some_and(|r| r > 0.0))
                .count();
            (p, raters)
        })
        .collect();
    match strategy {
        AttackStrategy::Bandwagon => {
            pool.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        }
        _ => {
            for i in (1..pool.len()).rev() {
                let j = rng.random_range(0..=i);
                pool.swap(i, j);
            }
        }
    }
    let cover: Vec<ProductId> = pool
        .iter()
        .map(|&(p, _)| p)
        .filter(|&p| p != config.pushed_product)
        .take(cover_size)
        .collect();

    let sybils: Vec<AgentId> = (0..config.sybils)
        .map(|i| {
            community
                .add_agent(format!(
                    "http://sybil.example.org/{strategy:?}/{seed}/{i}#me",
                    seed = config.seed
                ))
                .expect("sybil URIs are unique")
        })
        .collect();
    for &sybil in &sybils {
        for &product in &cover {
            community.set_rating(sybil, product, 1.0).expect("cover rating valid");
        }
        community
            .set_rating(sybil, config.pushed_product, 1.0)
            .expect("pushed rating valid");
    }
    if config.build_clique {
        build_clique(community, &sybils, &mut rng);
    }
    sybils
}

fn build_clique(community: &mut Community, sybils: &[AgentId], rng: &mut StdRng) {
    for &a in sybils {
        for &b in sybils {
            if a != b {
                let w = 0.8 + 0.2 * rng.random::<f64>();
                community.trust.set_trust(a, b, w).expect("clique edge valid");
            }
        }
    }
}

/// Injects the attack, returning the sybil agent ids.
///
/// Sybils copy every *positive* rating of the victim (maximizing profile
/// similarity) and rate the pushed product with 1.0. No honest agent trusts
/// them — exactly the situation the paper's trust filtering is built for.
pub fn inject_profile_copy_attack(
    community: &mut Community,
    config: &AttackConfig,
) -> Vec<AgentId> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let victim_ratings: Vec<(ProductId, f64)> = community
        .ratings_of(config.victim)
        .iter()
        .copied()
        .filter(|&(_, r)| r > 0.0)
        .collect();

    let sybils: Vec<AgentId> = (0..config.sybils)
        .map(|i| {
            community
                .add_agent(format!(
                    "http://sybil.example.org/{seed}/{i}#me",
                    seed = config.seed
                ))
                .expect("sybil URIs are unique")
        })
        .collect();

    for &sybil in &sybils {
        for &(product, rating) in &victim_ratings {
            community.set_rating(sybil, product, rating).expect("copied rating valid");
        }
        community
            .set_rating(sybil, config.pushed_product, 1.0)
            .expect("pushed rating valid");
    }

    if config.build_clique {
        build_clique(community, &sybils, &mut rng);
    }

    sybils
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::community::{generate_community, CommunityGenConfig};

    #[test]
    fn sybils_clone_the_victim_and_push() {
        let mut g = generate_community(&CommunityGenConfig::small(5));
        let victim = g.community.agents().next().unwrap();
        let pushed = ProductId::from_index(0);
        let positives = g
            .community
            .ratings_of(victim)
            .iter()
            .filter(|&&(p, r)| r > 0.0 && p != pushed)
            .count();
        let before_agents = g.community.agent_count();
        let sybils = inject_profile_copy_attack(
            &mut g.community,
            &AttackConfig {
                sybils: 10,
                pushed_product: pushed,
                victim,
                build_clique: true,
                seed: 1,
            },
        );
        assert_eq!(sybils.len(), 10);
        assert_eq!(g.community.agent_count(), before_agents + 10);
        for &s in &sybils {
            assert_eq!(g.community.rating(s, pushed), Some(1.0));
            let copied = g
                .community
                .ratings_of(s)
                .iter()
                .filter(|&&(p, r)| r > 0.0 && p != pushed)
                .count();
            assert_eq!(copied, positives);
        }
    }

    #[test]
    fn clique_edges_but_no_honest_trust() {
        let mut g = generate_community(&CommunityGenConfig::small(6));
        let victim = g.community.agents().next().unwrap();
        let honest: Vec<_> = g.community.agents().collect();
        let sybils = inject_profile_copy_attack(
            &mut g.community,
            &AttackConfig {
                sybils: 5,
                pushed_product: ProductId::from_index(3),
                victim,
                build_clique: true,
                seed: 2,
            },
        );
        // Full clique: 5 * 4 edges among sybils.
        for &a in &sybils {
            let out: Vec<_> = g.community.trust.out_edges(a).to_vec();
            assert_eq!(out.len(), 4);
            assert!(out.iter().all(|&(t, _)| sybils.contains(&t)));
        }
        // No honest agent trusts a sybil.
        for &h in &honest {
            for &(t, _) in g.community.trust.out_edges(h) {
                assert!(!sybils.contains(&t));
            }
        }
    }

    #[test]
    fn bandwagon_sybils_rate_popular_cover_products() {
        let mut g = generate_community(&CommunityGenConfig::small(8));
        let victim = g.community.agents().next().unwrap();
        let pushed = ProductId::from_index(0);
        // The most-rated product before the attack.
        let most_popular = g
            .community
            .catalog
            .iter()
            .filter(|&p| p != pushed)
            .max_by_key(|&p| {
                g.community
                    .agents()
                    .filter(|&a| g.community.rating(a, p).is_some_and(|r| r > 0.0))
                    .count()
            })
            .unwrap();
        let sybils = inject_attack(
            &mut g.community,
            &AttackConfig {
                sybils: 4,
                pushed_product: pushed,
                victim,
                build_clique: false,
                seed: 4,
            },
            AttackStrategy::Bandwagon,
        );
        for &s in &sybils {
            assert_eq!(g.community.rating(s, pushed), Some(1.0));
            assert_eq!(
                g.community.rating(s, most_popular),
                Some(1.0),
                "bandwagon cover must include the popularity head"
            );
        }
    }

    #[test]
    fn random_sybils_differ_from_profile_copies() {
        let mut a = generate_community(&CommunityGenConfig::small(9));
        let mut b = a.clone();
        let victim = a.community.agents().next().unwrap();
        let config = AttackConfig {
            sybils: 1,
            pushed_product: ProductId::from_index(2),
            victim,
            build_clique: false,
            seed: 5,
        };
        let copy = inject_attack(&mut a.community, &config, AttackStrategy::ProfileCopy);
        let random = inject_attack(&mut b.community, &config, AttackStrategy::Random);
        let ratings = |c: &semrec_core::Community, s: AgentId| -> Vec<ProductId> {
            c.ratings_of(s).iter().map(|&(p, _)| p).collect()
        };
        assert_ne!(
            ratings(&a.community, copy[0]),
            ratings(&b.community, random[0]),
            "random cover must not equal the victim clone"
        );
    }

    #[test]
    fn no_clique_mode() {
        let mut g = generate_community(&CommunityGenConfig::small(7));
        let victim = g.community.agents().next().unwrap();
        let sybils = inject_profile_copy_attack(
            &mut g.community,
            &AttackConfig {
                sybils: 3,
                pushed_product: ProductId::from_index(1),
                victim,
                build_clique: false,
                seed: 3,
            },
        );
        for &s in &sybils {
            assert!(g.community.trust.out_edges(s).is_empty());
        }
    }
}
