//! # semrec-datagen — synthetic decentralized communities
//!
//! The paper's experiments ran on data crawled from All Consuming and
//! Advogato (≈9,100 users, 9,953 Amazon-categorized books, §4.1). That
//! infrastructure no longer exists, so this crate generates communities
//! with the same statistical structure — sparse homophilous trust networks,
//! latent-interest-driven implicit ratings, Zipf popularity, Amazon-shaped
//! taxonomies — with every knob the experiments sweep exposed and seeded
//! determinism throughout. See DESIGN.md §1 for the substitution argument.
//!
//! ```
//! use semrec_datagen::community::{generate_community, CommunityGenConfig};
//!
//! let generated = generate_community(&CommunityGenConfig::small(42));
//! assert_eq!(generated.community.agent_count(), 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod catalog_gen;
pub mod community;
pub mod taxonomy_gen;
pub mod zipf;

pub use attack::{inject_attack, inject_profile_copy_attack, AttackConfig, AttackStrategy};
pub use community::{generate_community, CommunityGenConfig, GeneratedCommunity};
pub use taxonomy_gen::{generate_taxonomy, TaxonomyGenConfig};
pub use zipf::Zipf;
