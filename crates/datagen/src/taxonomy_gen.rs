//! Random taxonomy generation.
//!
//! Substitutes for Amazon's real taxonomies (§4: ">20,000 topics" for books,
//! "more topics … though being less deep" for DVDs). Shape is controlled by
//! a depth bias: parents for new topics are drawn with weight
//! `exp(depth_bias · depth)`, so positive bias grows deep, narrow,
//! book-taxonomy-like trees and negative bias grows broad, shallow,
//! DVD-taxonomy-like ones. Experiment E10 uses exactly these two presets.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use semrec_taxonomy::{Taxonomy, TopicId};

/// Configuration of the taxonomy generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaxonomyGenConfig {
    /// Number of topics to generate (including ⊤).
    pub topics: usize,
    /// Depth bias β: parent weight `∝ exp(β · depth)`.
    pub depth_bias: f64,
    /// Hard depth cap (topics never exceed this depth).
    pub max_depth: u32,
    /// RNG seed.
    pub seed: u64,
}

impl TaxonomyGenConfig {
    /// Book-like shape: deep and narrow (Amazon book taxonomy flavor).
    pub fn book_like(topics: usize, seed: u64) -> Self {
        TaxonomyGenConfig { topics, depth_bias: 0.15, max_depth: 10, seed }
    }

    /// DVD-like shape: broad and shallow (Amazon DVD taxonomy flavor).
    pub fn dvd_like(topics: usize, seed: u64) -> Self {
        TaxonomyGenConfig { topics, depth_bias: -2.0, max_depth: 4, seed }
    }
}

/// Generates a random tree taxonomy.
pub fn generate_taxonomy(config: &TaxonomyGenConfig) -> Taxonomy {
    assert!(config.topics >= 1, "a taxonomy has at least its top element");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = Taxonomy::builder("Top");
    let mut nodes: Vec<(TopicId, u32)> = vec![(TopicId::TOP, 0)];
    // Incremental weighted parent choice: keep cumulative weights in sync.
    let mut weights: Vec<f64> = vec![1.0];
    let mut total_weight = 1.0;

    for i in 1..config.topics {
        // Weighted sample over current nodes.
        let mut pick = rng.random::<f64>() * total_weight;
        let mut chosen = 0usize;
        for (idx, &w) in weights.iter().enumerate() {
            if pick < w {
                chosen = idx;
                break;
            }
            pick -= w;
            chosen = idx;
        }
        let (parent, parent_depth) = nodes[chosen];
        let depth = parent_depth + 1;
        let id = builder
            .add_topic(format!("Topic {i}"), parent)
            .expect("generated labels are unique");
        nodes.push((id, depth));
        let w = if depth >= config.max_depth {
            0.0 // never a parent again
        } else {
            (config.depth_bias * f64::from(depth)).exp()
        };
        weights.push(w);
        total_weight += w;
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_taxonomy::stats;

    #[test]
    fn generates_requested_topic_count() {
        let t = generate_taxonomy(&TaxonomyGenConfig::book_like(500, 42));
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_taxonomy(&TaxonomyGenConfig::book_like(200, 7));
        let b = generate_taxonomy(&TaxonomyGenConfig::book_like(200, 7));
        for id in a.iter() {
            assert_eq!(a.parents(id), b.parents(id));
        }
        let c = generate_taxonomy(&TaxonomyGenConfig::book_like(200, 8));
        let differs = a.iter().any(|id| a.parents(id) != c.parents(id));
        assert!(differs, "different seeds should give different trees");
    }

    #[test]
    fn book_like_is_deeper_than_dvd_like() {
        let book = generate_taxonomy(&TaxonomyGenConfig::book_like(2000, 1));
        let dvd = generate_taxonomy(&TaxonomyGenConfig::dvd_like(2000, 1));
        let sb = stats(&book);
        let sd = stats(&dvd);
        assert!(
            sb.mean_leaf_depth > sd.mean_leaf_depth + 1.0,
            "book {} vs dvd {}",
            sb.mean_leaf_depth,
            sd.mean_leaf_depth
        );
        assert!(sd.mean_branching > sb.mean_branching);
    }

    #[test]
    fn max_depth_is_honored() {
        let t = generate_taxonomy(&TaxonomyGenConfig {
            topics: 3000,
            depth_bias: 2.0, // aggressively deep
            max_depth: 5,
            seed: 3,
        });
        assert!(t.max_depth() <= 5);
    }

    #[test]
    fn single_topic_taxonomy() {
        let t = generate_taxonomy(&TaxonomyGenConfig { topics: 1, depth_bias: 0.0, max_depth: 3, seed: 0 });
        assert_eq!(t.len(), 1);
    }
}
