//! Random product catalog generation.
//!
//! Substitutes for the 9,953 Amazon-categorized books of §4.1: every product
//! gets 1–5 topic descriptors (Amazon's subject descriptors) drawn with a
//! locality bias — descriptors of one product cluster taxonomically, like
//! real subject headings do — plus a Zipf popularity rank used later by the
//! rating sampler.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use semrec_taxonomy::{Catalog, Taxonomy, TopicId};

/// Configuration of the catalog generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CatalogGenConfig {
    /// Number of products `m = |B|`.
    pub products: usize,
    /// Maximum descriptors per product (≥ 1); counts are geometric-ish.
    pub max_descriptors: usize,
    /// Probability that an extra descriptor stays in the first descriptor's
    /// taxonomic vicinity (sibling or parent) rather than being random.
    pub descriptor_locality: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CatalogGenConfig {
    fn default() -> Self {
        CatalogGenConfig { products: 1000, max_descriptors: 5, descriptor_locality: 0.7, seed: 0 }
    }
}

/// Generates a catalog over the given taxonomy.
///
/// Descriptors are drawn uniformly over *leaf* topics first (specific
/// categories, like Amazon's), with extra descriptors placed nearby.
pub fn generate_catalog(taxonomy: &Taxonomy, config: &CatalogGenConfig) -> Catalog {
    assert!(config.max_descriptors >= 1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let leaves: Vec<TopicId> = taxonomy.leaves().collect();
    let all: Vec<TopicId> = taxonomy.iter().collect();
    let pool = if leaves.is_empty() { &all } else { &leaves };

    let mut catalog = Catalog::new();
    for i in 0..config.products {
        let first = pool[rng.random_range(0..pool.len())];
        let mut descriptors = vec![first];
        // Geometric-ish descriptor count: each extra slot filled with p=0.5.
        while descriptors.len() < config.max_descriptors && rng.random::<f64>() < 0.5 {
            let extra = if rng.random::<f64>() < config.descriptor_locality {
                nearby(taxonomy, first, &mut rng)
            } else {
                pool[rng.random_range(0..pool.len())]
            };
            descriptors.push(extra);
        }
        catalog
            .add_product(taxonomy, synthetic_isbn(i), format!("Product {i}"), descriptors)
            .expect("generated identifiers are unique");
    }
    catalog
}

/// A topic taxonomically close to `origin`: a sibling, its parent, or itself.
fn nearby(taxonomy: &Taxonomy, origin: TopicId, rng: &mut StdRng) -> TopicId {
    let parents = taxonomy.parents(origin);
    if parents.is_empty() {
        return origin;
    }
    let parent = parents[rng.random_range(0..parents.len())];
    let siblings = taxonomy.children(parent);
    if rng.random::<f64>() < 0.3 || siblings.is_empty() {
        parent
    } else {
        siblings[rng.random_range(0..siblings.len())]
    }
}

/// A deterministic `urn:isbn:` identifier with a valid ISBN-10 check digit.
pub fn synthetic_isbn(index: usize) -> String {
    let body = format!("{:09}", index % 1_000_000_000);
    let mut sum = 0u32;
    for (i, c) in body.chars().enumerate() {
        sum += (10 - i as u32) * c.to_digit(10).unwrap();
    }
    let check = (11 - sum % 11) % 11;
    let check_char = if check == 10 { 'X'.to_string() } else { check.to_string() };
    format!("urn:isbn:{body}{check_char}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy_gen::{generate_taxonomy, TaxonomyGenConfig};

    fn taxonomy() -> Taxonomy {
        generate_taxonomy(&TaxonomyGenConfig::book_like(300, 11))
    }

    #[test]
    fn generates_requested_products() {
        let t = taxonomy();
        let c = generate_catalog(&t, &CatalogGenConfig { products: 250, ..Default::default() });
        assert_eq!(c.len(), 250);
    }

    #[test]
    fn every_product_has_descriptors_in_bounds() {
        let t = taxonomy();
        let config = CatalogGenConfig { products: 300, max_descriptors: 4, ..Default::default() };
        let c = generate_catalog(&t, &config);
        for p in c.iter() {
            let d = c.descriptors(p);
            assert!(!d.is_empty());
            assert!(d.len() <= 4);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let t = taxonomy();
        let a = generate_catalog(&t, &CatalogGenConfig { seed: 5, ..Default::default() });
        let b = generate_catalog(&t, &CatalogGenConfig { seed: 5, ..Default::default() });
        for p in a.iter() {
            assert_eq!(a.descriptors(p), b.descriptors(p));
        }
    }

    #[test]
    fn isbn_check_digits_are_valid() {
        for i in [0usize, 1, 42, 123_456_789, 999] {
            let isbn = synthetic_isbn(i);
            let digits = isbn.strip_prefix("urn:isbn:").unwrap();
            assert_eq!(digits.len(), 10);
            let sum: u32 = digits
                .chars()
                .enumerate()
                .map(|(pos, c)| {
                    let v = if c == 'X' { 10 } else { c.to_digit(10).unwrap() };
                    (10 - pos as u32) * v
                })
                .sum();
            assert_eq!(sum % 11, 0, "invalid check digit in {isbn}");
        }
    }

    #[test]
    fn identifiers_are_unique_and_resolvable() {
        let t = taxonomy();
        let c = generate_catalog(&t, &CatalogGenConfig { products: 100, ..Default::default() });
        for p in c.iter() {
            let ident = &c.product(p).identifier;
            assert_eq!(c.by_identifier(ident), Some(p));
        }
    }
}
