//! Synthetic community generation — the §4.1 dataset substitution.
//!
//! The paper mined ≈9,100 users from All Consuming and Advogato with trust
//! statements and implicit book ratings, plus Amazon's taxonomy and
//! categorization for 9,953 books. This generator reproduces the statistical
//! structure those crawls exhibit and the algorithms are sensitive to:
//!
//! * **latent interests** — each agent favors a few taxonomy subtrees, and
//!   ratings fall inside them with configurable fidelity;
//! * **heavy-tailed popularity** — products are picked through a Zipf law;
//! * **sparse, homophilous trust** — trust edges prefer agents with shared
//!   interests (knob `homophily`, the mechanism behind the trust ↔
//!   similarity correlation of ref \[5\]; set it to 0 to ablate) blended with
//!   preferential attachment (scale-free in-degree, Advogato-like);
//! * **implicit, mostly positive ratings** — mentions are likes, with an
//!   optional fraction of explicit dislikes and distrust statements.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use semrec_core::Community;
use semrec_taxonomy::{ProductId, TopicId};
use semrec_trust::AgentId;

use crate::catalog_gen::{generate_catalog, CatalogGenConfig};
use crate::taxonomy_gen::{generate_taxonomy, TaxonomyGenConfig};
use crate::zipf::Zipf;

/// Configuration of the community generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommunityGenConfig {
    /// Number of agents `n = |A|`.
    pub agents: usize,
    /// Taxonomy shape.
    pub taxonomy: TaxonomyGenConfig,
    /// Catalog shape.
    pub catalog: CatalogGenConfig,
    /// Latent interest subtrees per agent (inclusive bounds).
    pub min_interests: usize,
    /// Maximum latent interests per agent.
    pub max_interests: usize,
    /// Depth at which interest roots are anchored.
    pub interest_depth: u32,
    /// Mean ratings per agent (counts are geometric, minimum 1).
    pub mean_ratings: f64,
    /// Probability that a rating falls inside one of the agent's interests.
    pub interest_fidelity: f64,
    /// Zipf exponent for product popularity.
    pub zipf_exponent: f64,
    /// Fraction of ratings that are explicit dislikes.
    pub dislike_fraction: f64,
    /// Mean trust statements per agent.
    pub mean_trust_edges: f64,
    /// Homophily `h ∈ [0, 1]`: weight of interest overlap (vs preferential
    /// attachment) when choosing whom to trust.
    pub homophily: f64,
    /// Fraction of trust statements that are distrust (negative).
    pub distrust_fraction: f64,
    /// Probability a trust edge is reciprocated.
    pub reciprocity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CommunityGenConfig {
    /// A laptop-fast community for tests: 200 agents, 400 products.
    pub fn small(seed: u64) -> Self {
        CommunityGenConfig {
            agents: 200,
            taxonomy: TaxonomyGenConfig::book_like(600, seed ^ 0xA1),
            catalog: CatalogGenConfig { products: 400, seed: seed ^ 0xB2, ..Default::default() },
            min_interests: 1,
            max_interests: 3,
            interest_depth: 2,
            mean_ratings: 8.0,
            interest_fidelity: 0.8,
            zipf_exponent: 1.0,
            dislike_fraction: 0.05,
            mean_trust_edges: 6.0,
            homophily: 0.7,
            distrust_fraction: 0.03,
            reciprocity: 0.4,
            seed,
        }
    }

    /// A mid-size community: 1,000 agents, 2,000 products.
    pub fn medium(seed: u64) -> Self {
        CommunityGenConfig {
            agents: 1000,
            taxonomy: TaxonomyGenConfig::book_like(3000, seed ^ 0xA1),
            catalog: CatalogGenConfig { products: 2000, seed: seed ^ 0xB2, ..Default::default() },
            ..Self::small(seed)
        }
    }

    /// The §4.1 scale: 9,100 agents, 9,953 books, 20,000 topics.
    pub fn paper_scale(seed: u64) -> Self {
        CommunityGenConfig {
            agents: 9100,
            taxonomy: TaxonomyGenConfig::book_like(20_000, seed ^ 0xA1),
            catalog: CatalogGenConfig { products: 9953, seed: seed ^ 0xB2, ..Default::default() },
            mean_ratings: 12.0,
            mean_trust_edges: 8.0,
            ..Self::small(seed)
        }
    }
}

/// A generated community plus the latent state the generator used — kept for
/// experiment analysis (e.g. checking interest recovery).
#[derive(Clone, Debug)]
pub struct GeneratedCommunity {
    /// The §3.1 information model instance.
    pub community: Community,
    /// Latent interest roots per agent.
    pub interests: Vec<Vec<TopicId>>,
    /// The configuration that produced it.
    pub config: CommunityGenConfig,
}

/// Generates a community.
pub fn generate_community(config: &CommunityGenConfig) -> GeneratedCommunity {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let taxonomy = generate_taxonomy(&config.taxonomy);
    let catalog = generate_catalog(&taxonomy, &config.catalog);
    let popularity = Zipf::new(catalog.len(), config.zipf_exponent);

    // Popularity permutation: Zipf rank r → product id, so "popular" products
    // are spread across the catalog rather than being the low indexes.
    let mut rank_to_product: Vec<ProductId> = catalog.iter().collect();
    for i in (1..rank_to_product.len()).rev() {
        let j = rng.random_range(0..=i);
        rank_to_product.swap(i, j);
    }

    let mut community = Community::new(taxonomy, catalog);
    let agents: Vec<AgentId> = (0..config.agents)
        .map(|i| {
            community
                .add_agent(format!("http://community.example.org/agents/{i}#me"))
                .expect("generated agent URIs are unique")
        })
        .collect();

    // --- latent interests -------------------------------------------------
    let interests: Vec<Vec<TopicId>> = agents
        .iter()
        .map(|_| {
            let count = rng.random_range(config.min_interests..=config.max_interests.max(config.min_interests));
            (0..count)
                .map(|_| interest_root(&community, config.interest_depth, &mut rng))
                .collect()
        })
        .collect();

    // Products under each used interest root, cached.
    let mut pools: HashMap<TopicId, Vec<ProductId>> = HashMap::new();
    for roots in &interests {
        for &root in roots {
            pools.entry(root).or_insert_with(|| {
                community.catalog.products_under(&community.taxonomy, root)
            });
        }
    }

    // --- ratings -----------------------------------------------------------
    for (idx, &agent) in agents.iter().enumerate() {
        let count = 1 + geometric(config.mean_ratings.max(1.0) - 1.0, &mut rng);
        for _ in 0..count {
            let product = if rng.random::<f64>() < config.interest_fidelity {
                let roots = &interests[idx];
                let root = roots[rng.random_range(0..roots.len())];
                let pool = &pools[&root];
                if pool.is_empty() {
                    rank_to_product[popularity.sample(&mut rng)]
                } else {
                    // Prefer popular products within the interest pool.
                    let local = Zipf::new(pool.len(), config.zipf_exponent * 0.5);
                    pool[local.sample(&mut rng)]
                }
            } else {
                rank_to_product[popularity.sample(&mut rng)]
            };
            let rating = if rng.random::<f64>() < config.dislike_fraction {
                -(0.3 + 0.7 * rng.random::<f64>())
            } else {
                0.5 + 0.5 * rng.random::<f64>()
            };
            community.set_rating(agent, product, rating).expect("generated ratings valid");
        }
    }

    // --- trust network -----------------------------------------------------
    let mut in_degree = vec![0usize; config.agents];
    for (idx, &agent) in agents.iter().enumerate() {
        if idx == 0 {
            continue;
        }
        let degree = (1 + geometric(config.mean_trust_edges.max(1.0) - 1.0, &mut rng))
            .min(idx);
        // Candidate pool: a random sample of earlier agents (scored), always
        // including a couple of high-in-degree hubs for the PA component.
        let pool_size = (degree * 6).clamp(8, 48).min(idx);
        let mut candidates: Vec<usize> = (0..pool_size).map(|_| rng.random_range(0..idx)).collect();
        candidates.sort_unstable();
        candidates.dedup();

        let mut scored: Vec<(usize, f64)> = candidates
            .iter()
            .map(|&c| {
                let overlap = interest_overlap(
                    &community,
                    &interests[idx],
                    &interests[c],
                );
                let pa = (in_degree[c] as f64 + 1.0).ln();
                let noise = rng.random::<f64>() * 0.1;
                (c, config.homophily * overlap + (1.0 - config.homophily) * pa / 4.0 + noise)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

        for &(target_idx, _) in scored.iter().take(degree) {
            let target = agents[target_idx];
            let (weight, reciprocal_ok) = if rng.random::<f64>() < config.distrust_fraction {
                (-(0.3 + 0.7 * rng.random::<f64>()), false)
            } else {
                (0.5 + 0.5 * rng.random::<f64>(), true)
            };
            community.trust.set_trust(agent, target, weight).expect("valid trust edge");
            in_degree[target_idx] += 1;
            if reciprocal_ok && rng.random::<f64>() < config.reciprocity {
                let back = 0.5 + 0.5 * rng.random::<f64>();
                community.trust.set_trust(target, agent, back).expect("valid trust edge");
                in_degree[idx] += 1;
            }
        }
    }

    GeneratedCommunity { community, interests, config: *config }
}

/// Samples a geometric count with the given mean (mean 0 → always 0).
fn geometric(mean: f64, rng: &mut StdRng) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let p = 1.0 / (1.0 + mean);
    let mut count = 0;
    while rng.random::<f64>() >= p && count < 10_000 {
        count += 1;
    }
    count
}

/// Picks an interest root: the ancestor at `depth` of a random leaf (or the
/// leaf itself when shallower).
fn interest_root(community: &Community, depth: u32, rng: &mut StdRng) -> TopicId {
    let taxonomy = &community.taxonomy;
    let catalog = &community.catalog;
    // Anchor at a random product descriptor so the subtree is non-empty.
    let product = ProductId::from_index(rng.random_range(0..catalog.len()));
    let descriptors = catalog.descriptors(product);
    let mut node = descriptors[rng.random_range(0..descriptors.len())];
    while taxonomy.depth(node) > depth {
        let parents = taxonomy.parents(node);
        node = parents[0];
    }
    node
}

/// Interest overlap in `[0, 1]`: shared roots count 1, ancestor-related
/// roots count ½, normalized by the smaller interest set.
fn interest_overlap(community: &Community, a: &[TopicId], b: &[TopicId]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let taxonomy = &community.taxonomy;
    let mut score = 0.0;
    for &x in a {
        let mut best: f64 = 0.0;
        for &y in b {
            let s = if x == y {
                1.0
            } else if taxonomy.is_ancestor(x, y) || taxonomy.is_ancestor(y, x) {
                0.5
            } else {
                0.0
            };
            best = best.max(s);
        }
        score += best;
    }
    score / a.len().min(b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_the_requested_shape() {
        let g = generate_community(&CommunityGenConfig::small(42));
        let c = &g.community;
        assert_eq!(c.agent_count(), 200);
        assert_eq!(c.catalog.len(), 400);
        assert_eq!(g.interests.len(), 200);
        assert!(c.rating_count() >= 200, "every agent rates at least once");
        assert!(c.trust.edge_count() > 150, "trust network must be populated");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_community(&CommunityGenConfig::small(7));
        let b = generate_community(&CommunityGenConfig::small(7));
        assert_eq!(a.community.rating_count(), b.community.rating_count());
        assert_eq!(a.community.trust.edge_count(), b.community.trust.edge_count());
        for agent in a.community.agents() {
            assert_eq!(a.community.ratings_of(agent), b.community.ratings_of(agent));
            assert_eq!(a.community.trust.out_edges(agent), b.community.trust.out_edges(agent));
        }
        let c = generate_community(&CommunityGenConfig::small(8));
        assert_ne!(
            a.community.rating_count(),
            c.community.rating_count(),
            "different seeds should differ"
        );
    }

    #[test]
    fn ratings_are_mostly_positive_implicit_mentions() {
        let g = generate_community(&CommunityGenConfig::small(1));
        let c = &g.community;
        let (mut pos, mut neg) = (0usize, 0usize);
        for a in c.agents() {
            for &(_, r) in c.ratings_of(a) {
                assert!((-1.0..=1.0).contains(&r));
                if r > 0.0 {
                    pos += 1;
                } else {
                    neg += 1;
                }
            }
        }
        assert!(pos > neg * 5, "mentions are mostly likes: {pos} vs {neg}");
    }

    #[test]
    fn trust_network_is_sparse_and_mostly_positive() {
        let g = generate_community(&CommunityGenConfig::small(2));
        let c = &g.community;
        let mean = c.trust.mean_out_degree();
        assert!(mean > 1.0 && mean < 30.0, "mean out-degree {mean}");
        let mut neg = 0usize;
        for a in c.agents() {
            neg += c.trust.negative_out_edges(a).count();
        }
        assert!((neg as f64) < 0.15 * c.trust.edge_count() as f64);
    }

    #[test]
    fn homophily_links_similar_agents() {
        let homo = generate_community(&CommunityGenConfig {
            homophily: 0.95,
            ..CommunityGenConfig::small(3)
        });
        let random = generate_community(&CommunityGenConfig {
            homophily: 0.0,
            ..CommunityGenConfig::small(3)
        });
        let mean_edge_overlap = |g: &GeneratedCommunity| {
            let mut sum = 0.0;
            let mut count = 0usize;
            for a in g.community.agents() {
                for &(b, w) in g.community.trust.out_edges(a) {
                    if w > 0.0 {
                        sum += interest_overlap(
                            &g.community,
                            &g.interests[a.index()],
                            &g.interests[b.index()],
                        );
                        count += 1;
                    }
                }
            }
            sum / count as f64
        };
        let h = mean_edge_overlap(&homo);
        let r = mean_edge_overlap(&random);
        assert!(h > r + 0.1, "homophily must matter: {h} vs {r}");
    }

    #[test]
    fn interest_fidelity_concentrates_ratings() {
        let g = generate_community(&CommunityGenConfig {
            interest_fidelity: 1.0,
            ..CommunityGenConfig::small(4)
        });
        let c = &g.community;
        // Sample: most rated products lie under one of the rater's interests.
        let mut inside = 0usize;
        let mut total = 0usize;
        for a in c.agents().take(50) {
            for &(p, _) in c.ratings_of(a) {
                total += 1;
                let under = g.interests[a.index()].iter().any(|&root| {
                    c.catalog
                        .descriptors(p)
                        .iter()
                        .any(|&d| c.taxonomy.is_ancestor(root, d))
                });
                if under {
                    inside += 1;
                }
            }
        }
        assert!(
            inside as f64 > 0.9 * total as f64,
            "fidelity 1.0 should keep ratings inside interests: {inside}/{total}"
        );
    }

    #[test]
    fn geometric_mean_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let mean = 5.0;
        let sum: usize = (0..n).map(|_| geometric(mean, &mut rng)).sum();
        let got = sum as f64 / n as f64;
        assert!((got - mean).abs() < 0.3, "geometric mean {got} ≉ {mean}");
        assert_eq!(geometric(0.0, &mut rng), 0);
    }
}
