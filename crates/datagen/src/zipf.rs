//! Zipf-distributed sampling.
//!
//! Product popularity in real communities (All Consuming book mentions,
//! Amazon sales) is heavy-tailed; the catalog generator draws per-product
//! popularity ranks from a Zipf law so the synthetic rating streams show the
//! same few-hits / long-tail structure the paper's crawled data had.

use rand::{Rng, RngExt};

/// A Zipf(n, s) sampler over `0..n` using a precomputed CDF.
///
/// Item `i` has probability proportional to `1 / (i + 1)^s`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `0..n` with exponent `s ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the domain is empty (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples an index in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability of index `i`.
    pub fn probability(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        let z = Zipf::new(100, 1.0);
        let sum: f64 = (0..100).map(|i| z.probability(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn head_is_heavier_than_tail() {
        let z = Zipf::new(1000, 1.0);
        assert!(z.probability(0) > 10.0 * z.probability(100));
        assert!(z.probability(0) > z.probability(1));
    }

    #[test]
    fn s_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.probability(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_follow_the_law_roughly() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[49] * 5);
        // Every sample is in range (implicitly: no panic) and head ≈ p(0).
        let head_freq = counts[0] as f64 / 20_000.0;
        assert!((head_freq - z.probability(0)).abs() < 0.02);
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(20, 1.0);
        let a: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..10).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..10).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
