//! Test configuration and the deterministic generator driving each test.

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The generator handed to strategies: xoshiro256++ seeded from the test's
/// fully qualified name, so every run of a given test replays the same
/// sequence of cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds a generator from an arbitrary 64-bit value.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        TestRng { s }
    }

    /// Seeds a generator from a test name (FNV-1a hash).
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::seed_from_u64(hash)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_different_streams() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("a");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("b");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }
}
