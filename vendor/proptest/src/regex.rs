//! Generation of strings from a regex subset.
//!
//! Supports what the workspace's string strategies use: concatenations of
//! literal characters, character classes (`[a-z0-9_.-]`, ranges, escapes,
//! `\u{..}`), the `\PC` "printable" category shorthand, and `{n}` / `{m,n}`
//! quantifiers. Anything else is a parse error — loudly, so a new test
//! using an unsupported feature fails at first run rather than silently
//! generating the wrong language.

use crate::test_runner::TestRng;

/// A set of characters, stored as inclusive ranges.
#[derive(Clone, Debug)]
struct CharSet {
    ranges: Vec<(char, char)>,
    /// Total number of characters across `ranges`.
    count: u64,
}

impl CharSet {
    fn from_ranges(ranges: Vec<(char, char)>) -> Result<Self, String> {
        let mut count = 0u64;
        for &(lo, hi) in &ranges {
            if lo > hi {
                return Err(format!("inverted range {lo:?}-{hi:?}"));
            }
            count += u64::from(hi) - u64::from(lo) + 1;
        }
        if count == 0 {
            return Err("empty character class".into());
        }
        Ok(CharSet { ranges, count })
    }

    fn sample(&self, rng: &mut TestRng) -> char {
        let mut pick = rng.below(self.count);
        for &(lo, hi) in &self.ranges {
            let size = u64::from(hi) - u64::from(lo) + 1;
            if pick < size {
                // Ranges never straddle the surrogate gap in our patterns,
                // but be safe: skip unrepresentable scalars forward.
                let mut code = u32::try_from(u64::from(lo) + pick).unwrap();
                while char::from_u32(code).is_none() {
                    code += 1;
                }
                return char::from_u32(code).unwrap();
            }
            pick -= size;
        }
        unreachable!("sample index within total count")
    }
}

/// One quantified element of a pattern.
#[derive(Clone, Debug)]
struct Element {
    set: CharSet,
    min: u32,
    max: u32,
}

/// A parsed generator pattern.
#[derive(Clone, Debug)]
pub struct Pattern {
    elements: Vec<Element>,
}

/// The `\PC` pool: printable characters across several scripts, so fuzzing
/// parsers exercises multi-byte UTF-8 without drowning in unassigned
/// codepoints.
fn printable_ranges() -> Vec<(char, char)> {
    vec![
        (' ', '~'),           // ASCII printable
        ('\u{a1}', '\u{ff}'), // Latin-1 supplement (printables)
        ('\u{391}', '\u{3a9}'), // Greek capitals
        ('\u{4e00}', '\u{4e2f}'), // a slice of CJK
        ('\u{1f600}', '\u{1f60f}'), // emoji (4-byte UTF-8)
    ]
}

impl Pattern {
    /// Parses a pattern; errors describe the unsupported construct.
    pub fn parse(pattern: &str) -> Result<Self, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut elements = Vec::new();
        while i < chars.len() {
            let set = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1)?;
                    i = next;
                    set
                }
                '\\' => {
                    let (c, next) = parse_escape(&chars, i + 1)?;
                    i = next;
                    match c {
                        EscapeResult::Literal(c) => CharSet::from_ranges(vec![(c, c)])?,
                        EscapeResult::Printable => CharSet::from_ranges(printable_ranges())?,
                    }
                }
                '(' | ')' | '|' | '*' | '+' | '?' | '^' | '$' => {
                    return Err(format!("unsupported regex construct {:?}", chars[i]));
                }
                c => {
                    i += 1;
                    CharSet::from_ranges(vec![(c, c)])?
                }
            };
            let (min, max) = if chars.get(i) == Some(&'{') {
                let (min, max, next) = parse_quantifier(&chars, i + 1)?;
                i = next;
                (min, max)
            } else {
                (1, 1)
            };
            elements.push(Element { set, min, max });
        }
        Ok(Pattern { elements })
    }

    /// Generates one matching string.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for element in &self.elements {
            let span = u64::from(element.max - element.min) + 1;
            let n = element.min + rng.below(span) as u32;
            for _ in 0..n {
                out.push(element.set.sample(rng));
            }
        }
        out
    }
}

enum EscapeResult {
    Literal(char),
    Printable,
}

/// Parses the escape after a `\`, returning the result and the next index.
fn parse_escape(chars: &[char], mut i: usize) -> Result<(EscapeResult, usize), String> {
    let Some(&c) = chars.get(i) else {
        return Err("dangling backslash".into());
    };
    i += 1;
    let result = match c {
        'n' => EscapeResult::Literal('\n'),
        't' => EscapeResult::Literal('\t'),
        'r' => EscapeResult::Literal('\r'),
        '0' => EscapeResult::Literal('\0'),
        'P' | 'p' => {
            // `\PC` / `\P{C}`: we approximate every category query with the
            // printable pool — the tests only use it for fuzz input.
            match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .ok_or("unterminated \\P{...}")?;
                    i += close + 1;
                }
                Some(_) => i += 1,
                None => return Err("dangling \\P".into()),
            }
            EscapeResult::Printable
        }
        'u' | 'x' => {
            let (c, next) = parse_codepoint(chars, i)?;
            i = next;
            EscapeResult::Literal(c)
        }
        c if c.is_ascii_alphanumeric() => {
            return Err(format!("unsupported escape \\{c}"));
        }
        c => EscapeResult::Literal(c),
    };
    Ok((result, i))
}

/// Parses `{hex}` after `\u` / `\x`, returning the char and next index.
fn parse_codepoint(chars: &[char], i: usize) -> Result<(char, usize), String> {
    if chars.get(i) != Some(&'{') {
        return Err("expected {hex} after \\u".into());
    }
    let close = chars[i..]
        .iter()
        .position(|&c| c == '}')
        .ok_or("unterminated \\u{...}")?;
    let hex: String = chars[i + 1..i + close].iter().collect();
    let code = u32::from_str_radix(&hex, 16).map_err(|e| format!("bad hex {hex:?}: {e}"))?;
    let c = char::from_u32(code).ok_or(format!("invalid codepoint {code:#x}"))?;
    Ok((c, i + close + 1))
}

/// Parses a class body after `[`, returning the set and the index past `]`.
fn parse_class(chars: &[char], mut i: usize) -> Result<(CharSet, usize), String> {
    if chars.get(i) == Some(&'^') {
        return Err("negated classes are not supported".into());
    }
    let mut ranges: Vec<(char, char)> = Vec::new();
    // One literal char of the class, handling escapes.
    let atom = |i: &mut usize| -> Result<char, String> {
        let c = chars[*i];
        *i += 1;
        if c != '\\' {
            return Ok(c);
        }
        let (esc, next) = parse_escape(chars, *i)?;
        *i = next;
        match esc {
            EscapeResult::Literal(c) => Ok(c),
            EscapeResult::Printable => Err("\\P inside a class is not supported".into()),
        }
    };
    loop {
        let Some(&c) = chars.get(i) else {
            return Err("unterminated character class".into());
        };
        if c == ']' {
            i += 1;
            break;
        }
        let lo = atom(&mut i)?;
        // `x-y` is a range unless `-` is the final char of the class.
        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&c| c != ']') {
            i += 1; // consume '-'
            let hi = atom(&mut i)?;
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    Ok((CharSet::from_ranges(ranges)?, i))
}

/// Parses a quantifier body after `{`, returning `(min, max, next index)`.
fn parse_quantifier(chars: &[char], i: usize) -> Result<(u32, u32, usize), String> {
    let close = chars[i..]
        .iter()
        .position(|&c| c == '}')
        .ok_or("unterminated quantifier")?;
    let body: String = chars[i..i + close].iter().collect();
    let (min, max) = match body.split_once(',') {
        Some((min, max)) => {
            let min = min.trim().parse::<u32>().map_err(|e| e.to_string())?;
            let max = max.trim().parse::<u32>().map_err(|e| e.to_string())?;
            (min, max)
        }
        None => {
            let n = body.trim().parse::<u32>().map_err(|e| e.to_string())?;
            (n, n)
        }
    };
    if min > max {
        return Err(format!("quantifier {{{min},{max}}} is inverted"));
    }
    Ok((min, max, i + close + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, seed: u64) -> String {
        let mut rng = TestRng::seed_from_u64(seed);
        Pattern::parse(pattern).unwrap().generate(&mut rng)
    }

    #[test]
    fn literal_and_class_concatenation() {
        for seed in 0..50 {
            let s = gen("[A-Za-z][A-Za-z0-9_.-]{0,12}", seed);
            let chars: Vec<char> = s.chars().collect();
            assert!(!chars.is_empty() && chars.len() <= 13, "{s:?}");
            assert!(chars[0].is_ascii_alphabetic(), "{s:?}");
            assert!(chars[1..]
                .iter()
                .all(|&c| c.is_ascii_alphanumeric() || "_.-".contains(c)));
        }
    }

    #[test]
    fn exact_quantifier() {
        for seed in 0..20 {
            let s = gen("[a-z]{2}", seed);
            assert_eq!(s.chars().count(), 2);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn class_with_escapes_and_trailing_dash() {
        for seed in 0..50 {
            let s = gen(r#"[@<>"'\\\[\]();,\.a-z0-9:#\u{00e9} \n\t-]{0,200}"#, seed);
            assert!(s.chars().all(|c| {
                "@<>\"'\\[]();,.:#- \n\t\u{e9}".contains(c)
                    || c.is_ascii_lowercase()
                    || c.is_ascii_digit()
            }), "{s:?}");
        }
    }

    #[test]
    fn printable_category_spans_utf8_widths() {
        let mut lens = std::collections::HashSet::new();
        for seed in 0..40 {
            for c in gen("\\PC{0,300}", seed).chars() {
                lens.insert(c.len_utf8());
                assert!(!c.is_control(), "{c:?} is a control char");
            }
        }
        assert!(lens.len() >= 3, "want multi-byte coverage, got {lens:?}");
    }

    #[test]
    fn unsupported_constructs_error() {
        assert!(Pattern::parse("(a|b)").is_err());
        assert!(Pattern::parse("[^a]").is_err());
        assert!(Pattern::parse("a{3,1}").is_err());
        assert!(Pattern::parse("[a").is_err());
    }
}
