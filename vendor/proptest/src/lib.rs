//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the strategy subset the workspace's property tests use:
//! ranges, tuples, `Just`, `any`, regex-shaped string strategies,
//! `prop::collection::vec`, `prop_map` / `prop_flat_map`, `prop_oneof!`,
//! and the `proptest!` macro itself.
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic**: every test's generator is seeded from the test's
//!   name, so a run is reproducible byte-for-byte — no `PROPTEST_` env
//!   knobs, no persisted failure files.
//! * **No shrinking**: a failing case panics with the ordinary assertion
//!   message. Cases are small (the workspace's strategies bound their own
//!   sizes), so unshrunk counterexamples stay readable.
//! * **Regex strategies** support the subset the tests use: concatenations
//!   of literals, character classes (ranges + escapes), `\PC`, and `{m,n}`
//!   quantifiers.

#![forbid(unsafe_code)]

pub mod collection;
pub mod regex;
pub mod strategy;
pub mod test_runner;

/// The glob import test files use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy, StrategyExt};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Chooses uniformly between the given strategies (all must share a value
/// type). The weighted `w => strategy` form of real proptest is not needed
/// by this workspace and is not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($item:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($item)),+])
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}
