//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification: an exact size or a half-open range of sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { min: exact, max: exact + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange { min: range.start, max: range.end }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        let span = (self.max - self.min) as u64;
        self.min + rng.below(span.max(1)) as usize
    }
}

/// Generates a `Vec` of values from `element`, with a length drawn from
/// `size` (an exact `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_respects_range_and_exact_sizes() {
        let mut rng = TestRng::seed_from_u64(5);
        let ranged = vec(0usize..10, 2..6);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(0usize..10, 9usize);
        assert_eq!(exact.generate(&mut rng).len(), 9);
    }
}
