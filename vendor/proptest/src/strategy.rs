//! The [`Strategy`] trait and the built-in strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Object safe: combinators live on [`StrategyExt`] so `prop_oneof!` can box
/// heterogeneous strategies behind `dyn Strategy<Value = T>`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Boxes a strategy for use in [`Union`] (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Combinators, available on every sized strategy.
pub trait StrategyExt: Strategy + Sized {
    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(
        self,
        f: F,
    ) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy> StrategyExt for S {}

/// Strategy returned by [`StrategyExt::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`StrategyExt::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values spanning many magnitudes; avoids NaN/inf which the
        // workspace's tests never want from `any`.
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exponent = (rng.below(61) as i32 - 30) as f64;
        mantissa * exponent.exp2()
    }
}

/// The canonical strategy for `T` (`any::<i64>()`, `any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot generate from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot generate from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot generate from empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot generate from empty range");
        start + rng.unit_f64() * (end - start)
    }
}

/// String literals are regex strategies: `"[a-z]{2}"` generates matching
/// strings. See [`crate::regex`] for the supported subset.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::regex::Pattern::parse(self)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(99)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3usize..7).generate(&mut r);
            assert!((3..7).contains(&v));
            let f = (-1.0f64..=1.0).generate(&mut r);
            assert!((-1.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1usize..4).prop_flat_map(|n| (Just(n), 0usize..n));
        for _ in 0..100 {
            let (n, k) = s.generate(&mut r);
            assert!(k < n);
        }
        let doubled = (0usize..10).prop_map(|x| x * 2);
        assert_eq!(doubled.generate(&mut r) % 2, 0);
    }

    #[test]
    fn union_picks_every_arm() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c) = (0usize..5, 5usize..10, Just("x")).generate(&mut r);
        assert!(a < 5 && (5..10).contains(&b));
        assert_eq!(c, "x");
    }
}
