//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — groups,
//! `bench_with_input`, `iter`/`iter_batched`, throughput annotations — over
//! a simple wall-clock harness: each benchmark is warmed once, then timed
//! for a fixed budget and reported as mean time per iteration. No
//! statistics, plots, or saved baselines; this exists so `cargo bench`
//! still runs (and `cargo test --benches` still compiles) without network
//! access to crates.io.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing collector handed to bench closures.
pub struct Bencher {
    /// Run each closure exactly once (smoke mode, `--test`).
    smoke: bool,
}

impl Bencher {
    fn measure(&mut self, mut one_round: impl FnMut() -> Duration) -> Option<(Duration, u64)> {
        if self.smoke {
            one_round();
            return None;
        }
        // Warm-up round, then iterate until the time budget is spent.
        one_round();
        let budget = Duration::from_millis(300);
        let mut spent = Duration::ZERO;
        let mut iterations = 0u64;
        while spent < budget {
            spent += one_round();
            iterations += 1;
        }
        Some((spent, iterations))
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let result = self.measure(|| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed()
        });
        report(result);
    }

    /// Times `routine` over fresh inputs built by `setup` (setup excluded).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let result = self.measure(|| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        });
        report(result);
    }
}

fn report(result: Option<(Duration, u64)>) {
    if let Some((spent, iterations)) = result {
        let per_iter = spent.as_secs_f64() / iterations as f64;
        println!("    {iterations} iterations, {:.3} ms/iter", per_iter * 1e3);
    }
}

/// Batch sizing hint (ignored; accepted for API compatibility).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Larger inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id naming a function/parameter pair.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Throughput annotation (printed, not analyzed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The top-level harness.
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries with `--test` when running
        // `cargo test --benches`; honor it by running every routine once.
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion { smoke }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("{}", name.into());
        BenchmarkGroup { criterion: self }
    }

    /// Benchmarks a single function.
    pub fn bench_function(
        &mut self,
        name: impl Display,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        println!("  {name}");
        let mut bencher = Bencher { smoke: self.smoke };
        routine(&mut bencher);
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the work per iteration (printed only).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        println!("  throughput: {throughput:?}");
        self
    }

    /// Overrides the sample count (accepted and ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.criterion.bench_function(id, routine);
        self
    }

    /// Benchmarks a function parameterized by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.criterion.bench_function(id.id.clone(), |b| routine(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmarks_run_and_ids_format() {
        let mut c = Criterion { smoke: true };
        let mut ran = 0;
        {
            let mut group = c.benchmark_group("g");
            group.throughput(Throughput::Elements(3));
            group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
            group.bench_function("plain", |b| {
                b.iter_batched(|| 1, |x| x + 1, BatchSize::SmallInput)
            });
            group.finish();
        }
        c.bench_function("top", |b| {
            ran += 1;
            b.iter(|| ())
        });
        assert_eq!(ran, 1);
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
    }
}
