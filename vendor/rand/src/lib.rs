//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) API subset the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`RngExt`] methods `random` and
//! `random_range`. The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic for a given seed across platforms and releases, which is
//! exactly what the reproduction needs (the real `StdRng` explicitly does
//! *not* promise stream stability between versions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A type samplable uniformly from an `Rng`'s raw output.
pub trait Standard: Sized {
    /// Draws one value from `next`, a source of uniform 64-bit words.
    fn from_bits(next: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_bits(next: &mut dyn FnMut() -> u64) -> Self {
        (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_bits(next: &mut dyn FnMut() -> u64) -> Self {
        (next() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_bits(next: &mut dyn FnMut() -> u64) -> Self {
        next() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_bits(next: &mut dyn FnMut() -> u64) -> Self {
        next()
    }
}

impl Standard for u32 {
    fn from_bits(next: &mut dyn FnMut() -> u64) -> Self {
        (next() >> 32) as u32
    }
}

impl Standard for i64 {
    fn from_bits(next: &mut dyn FnMut() -> u64) -> Self {
        next() as i64
    }
}

impl Standard for usize {
    fn from_bits(next: &mut dyn FnMut() -> u64) -> Self {
        next() as usize
    }
}

/// A range samplable uniformly (argument type of `random_range`).
pub trait SampleRange<T> {
    /// Draws one value from the range; panics if the range is empty.
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (next() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (next() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + <f64 as Standard>::from_bits(next) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + <f64 as Standard>::from_bits(next) * (end - start)
    }
}

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly random value of `T` (for `f64`: uniform in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        let mut next = || self.next_u64();
        T::from_bits(&mut next)
    }

    /// A uniformly random value from the range; panics on empty ranges.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut next = || self.next_u64();
        range.sample_from(&mut next)
    }

    /// A boolean that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256++ (Blackman & Vigna), seeded via
    /// SplitMix64. Fast, passes BigCrush, and — unlike the real `StdRng` —
    /// guaranteed stream-stable across releases of this workspace.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0usize..5)] = true;
            let v = rng.random_range(0usize..=4);
            assert!(v <= 4);
        }
        assert!(seen.iter().all(|&s| s));
        let neg = rng.random_range(-10i32..-5);
        assert!((-10..-5).contains(&neg));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(3usize..3);
    }
}
