//! Persistence properties: for *any* random community, a checkpoint must
//! round-trip through the on-disk snapshot format to a byte-identical
//! model, and for *any* random republish sequence appended to the WAL,
//! recovery (snapshot + replay) must land bit-for-bit on the state the
//! never-restarted pipeline computes — the headline guarantee of
//! `semrec-store`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use semrec::core::{Community, Recommender, RecommenderConfig};
use semrec::store::{Checkpoint, Store};
use semrec::taxonomy::fixtures::example1;
use semrec::web::crawler::{crawl, refresh, CommunityBuilder, CrawlConfig};
use semrec::web::publish::{homepage_turtle, homepage_uri, publish_community};
use semrec::web::store::DocumentWeb;
use semrec::{AgentId, ProductId};

/// A unique per-case scratch directory (no external tempfile crate).
fn scratch() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("semrec-proptest-store-{}-{n}", std::process::id()))
}

/// Builds a community over the Example 1 world from generated edge/rating
/// lists (indexes taken modulo the population).
fn build(
    n_agents: usize,
    trust: &[(usize, usize, f64)],
    ratings: &[(usize, usize, f64)],
) -> Community {
    let e = example1();
    let mut c = Community::new(e.fig.taxonomy, e.catalog);
    let agents: Vec<AgentId> = (0..n_agents)
        .map(|i| c.add_agent(format!("http://ex.org/u{i}")).unwrap())
        .collect();
    for &(a, b, w) in trust {
        let (a, b) = (a % n_agents, b % n_agents);
        if a != b {
            c.trust.set_trust(agents[a], agents[b], w).unwrap();
        }
    }
    let m = c.catalog.len();
    for &(a, p, r) in ratings {
        c.set_rating(agents[a % n_agents], ProductId::from_index(p % m), r).unwrap();
    }
    c
}

/// One republish operation against the source community.
#[derive(Clone, Debug)]
enum Op {
    SetRating(usize, usize, f64),
    RemoveRating(usize, usize),
    SetTrust(usize, usize, f64),
    AddAgent(usize, f64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..16, 0usize..4, -1.0f64..=1.0).prop_map(|(a, p, r)| Op::SetRating(a, p, r)),
        (0usize..16, 0usize..4).prop_map(|(a, p)| Op::RemoveRating(a, p)),
        (0usize..16, 0usize..16, -1.0f64..=1.0).prop_map(|(a, b, w)| Op::SetTrust(a, b, w)),
        (0usize..16, 0.1f64..=1.0).prop_map(|(a, w)| Op::AddAgent(a, w)),
    ]
}

/// Applies one op, returning the agents whose homepages changed.
fn apply(source: &mut Community, op: &Op, extra: &mut usize) -> Vec<AgentId> {
    let n = source.agent_count();
    let m = source.catalog.len();
    match *op {
        Op::SetRating(a, p, r) => {
            let a = AgentId::from_index(a % n);
            source.set_rating(a, ProductId::from_index(p % m), r).unwrap();
            vec![a]
        }
        Op::RemoveRating(a, p) => {
            let a = AgentId::from_index(a % n);
            source.remove_rating(a, ProductId::from_index(p % m));
            vec![a]
        }
        Op::SetTrust(a, b, w) => {
            let (a, b) = (AgentId::from_index(a % n), AgentId::from_index(b % n));
            if a == b {
                return Vec::new();
            }
            source.trust.set_trust(a, b, w).unwrap();
            vec![a]
        }
        Op::AddAgent(a, w) => {
            let truster = AgentId::from_index(a % n);
            *extra += 1;
            let added = source.add_agent(format!("http://ex.org/extra{extra}")).unwrap();
            source.trust.set_trust(truster, added, w).unwrap();
            vec![truster, added]
        }
    }
}

/// Renders a community byte-for-byte: URIs in id order, trust weights and
/// rating values down to the bit.
fn render(c: &Community) -> String {
    let mut out = String::new();
    for agent in c.agents() {
        out.push_str(&c.agent(agent).unwrap().uri);
        out.push(':');
        for &(t, w) in c.trust.out_edges(agent) {
            out.push_str(&format!(" t{}={}", t.index(), w.to_bits()));
        }
        for &(p, r) in c.ratings_of(agent) {
            out.push_str(&format!(" r{}={}", p.index(), r.to_bits()));
        }
        out.push('\n');
    }
    out
}

/// Renders every agent's top-10 recommendations down to the bit.
fn render_recs(engine: &Recommender) -> String {
    let mut out = String::new();
    for agent in engine.community().agents() {
        out.push_str(&engine.community().agent(agent).unwrap().uri);
        out.push(':');
        for rec in engine.recommend(agent, 10).unwrap() {
            out.push_str(&format!(" {:?}={}", rec.product, rec.score.to_bits()));
        }
        out.push('\n');
    }
    out
}

type World = (usize, Vec<(usize, usize, f64)>, Vec<(usize, usize, f64)>);

fn arb_world() -> impl Strategy<Value = World> {
    (3usize..10).prop_flat_map(|n| {
        (
            Just(n),
            prop::collection::vec((0..n, 0..n, -1.0f64..=1.0), 0..24),
            prop::collection::vec((0..n, 0usize..4, -1.0f64..=1.0), 0..24),
        )
    })
}

/// Crawls the published world into a builder + engine, the way a live
/// node bootstraps.
fn bootstrap(source: &Community, web: &DocumentWeb, seeds: &[String]) -> (CommunityBuilder, Recommender) {
    let first = crawl(web, seeds, &CrawlConfig::default());
    let builder = CommunityBuilder::new(&first.agents);
    let (community, _) = builder.build(source.taxonomy.clone(), source.catalog.clone());
    let engine = Recommender::new(community, RecommenderConfig::default());
    (builder, engine)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Snapshot round trip: capture → encode → decode → restore lands on a
    /// byte-identical model, without touching disk state.
    #[test]
    fn snapshot_round_trip_is_byte_identical(
        (n, trust, ratings) in arb_world(),
        epoch in 1u64..100,
    ) {
        let source = build(n, &trust, &ratings);
        let web = DocumentWeb::new();
        publish_community(&source, &web);
        let seeds: Vec<String> =
            source.agents().map(|a| source.agent(a).unwrap().uri.clone()).collect();
        let (builder, engine) = bootstrap(&source, &web, &seeds);

        let bytes = Checkpoint::capture(&engine, builder.agents(), epoch).encode();
        let restored = Checkpoint::decode(&bytes)
            .expect("own encoding decodes")
            .restore()
            .expect("own encoding restores");

        prop_assert_eq!(restored.epoch, epoch);
        prop_assert_eq!(&restored.view, builder.agents());
        prop_assert_eq!(render(restored.engine.community()), render(engine.community()));
        prop_assert_eq!(render_recs(&restored.engine), render_recs(&engine));
    }

    /// Snapshot + WAL: checkpoint once, append every refresh delta, then
    /// recover — the recovered node must be bit-for-bit the node that
    /// never restarted, and resume at the epoch it would have reached.
    #[test]
    fn recovery_equals_never_having_restarted(
        (n, trust, ratings) in arb_world(),
        batches in prop::collection::vec(prop::collection::vec(arb_op(), 1..6), 1..5),
    ) {
        let mut source = build(n, &trust, &ratings);
        let web = DocumentWeb::new();
        publish_community(&source, &web);
        let seeds: Vec<String> =
            source.agents().map(|a| source.agent(a).unwrap().uri.clone()).collect();
        let crawl_config = CrawlConfig::default();
        let mut previous = crawl(&web, &seeds, &crawl_config);
        let mut builder = CommunityBuilder::new(&previous.agents);
        let (community, _) = builder.build(source.taxonomy.clone(), source.catalog.clone());
        let mut engine = Recommender::new(community, RecommenderConfig::default());

        let store = Store::open(scratch()).expect("scratch store opens");
        store.checkpoint(&engine, builder.agents(), 1).expect("checkpoint succeeds");

        // Each batch = one refresh round on the live node, appended to the
        // WAL exactly as the incremental web path would.
        let mut extra = 0usize;
        for ops in &batches {
            for op in ops {
                for agent in apply(&mut source, op, &mut extra) {
                    let uri = source.agent(agent).unwrap().uri.clone();
                    web.publish(homepage_uri(&uri), homepage_turtle(&source, agent), "text/turtle");
                }
            }
            let result = refresh(&web, &seeds, &crawl_config, &previous);
            let delta = result.delta.clone().expect("refresh always diffs");
            let health = result.health();
            store.append_delta(&delta, &health).expect("append succeeds");

            builder.apply_delta(&delta);
            let (next, _) = builder.build(source.taxonomy.clone(), source.catalog.clone());
            let (advanced, _) = engine.advance(next, &delta.model_delta(), health);
            engine = advanced;
            previous = result;
        }

        let recovery = store.recover().expect("recovery succeeds");
        prop_assert_eq!(recovery.replayed, batches.len());
        prop_assert_eq!(recovery.epoch, 1 + batches.len() as u64);
        prop_assert!(!recovery.degraded());
        prop_assert_eq!(&recovery.view, builder.agents());
        prop_assert_eq!(
            render(recovery.engine.community()),
            render(engine.community())
        );
        prop_assert_eq!(render_recs(&recovery.engine), render_recs(&engine));
        std::fs::remove_dir_all(store.dir()).ok();
    }
}
