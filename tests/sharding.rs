//! End-to-end sharding integration: per-shard persistence round-trips the
//! live model bit-for-bit (checkpoint → shard-local WAL append → recover
//! vs. live `advance`), untouched shards replay nothing, and the sharded
//! serve cache carries entries across a localized delta.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use semrec::core::{Community, ModelDelta, RecommenderConfig, SourceHealth};
use semrec::datagen::community::{generate_community, CommunityGenConfig};
use semrec::shard::{GlobalId, HashShardFn, ShardFn, ShardedModel, ShardedServeCache, ShardedStore};
use semrec::taxonomy::fixtures::example1;
use semrec::web::{AgentDiff, CrawlDelta};
use semrec::{AgentId, ProductId};

fn scratch(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("semrec-sharding-{}-{tag}-{n}", std::process::id()))
}

/// checkpoint → WAL delta on one shard → recover == live advance, and the
/// three untouched shards replay zero WAL records.
#[test]
fn persistence_round_trips_a_localized_delta() {
    let shards = 4usize;
    let generated = generate_community(&CommunityGenConfig::small(11));
    let community = generated.community;
    let config = RecommenderConfig::default();
    let (model, _) = ShardedModel::partition(&community, config, Arc::new(HashShardFn), shards, 1);

    let dir = scratch("roundtrip");
    let store = ShardedStore::open(&dir).expect("open store");
    store.checkpoint(&model, 1).expect("checkpoint");
    assert_eq!(store.shard_count().expect("snapshot exists"), shards);

    // Dirty a handful of agents that all live on shard 0 — both the WAL
    // append and the live advance must stay confined to that shard.
    let targets: Vec<AgentId> = community
        .agents()
        .filter(|a| {
            let g = GlobalId(a.index() as u32);
            model.directory().shard_of(g) == 0
        })
        .take(5)
        .collect();
    assert!(!targets.is_empty(), "shard 0 owns agents at this scale");
    let product = community
        .catalog
        .iter()
        .next()
        .expect("non-empty catalog");
    let identifier = community.catalog.product(product).identifier.clone();

    let mut next = community.clone();
    let mut diffs = Vec::new();
    let mut uris = Vec::new();
    for &agent in &targets {
        next.set_rating(agent, product, 0.8).expect("valid rating");
        let uri = community.agent(agent).expect("dense id").uri.clone();
        diffs.push(AgentDiff {
            uri: uri.clone(),
            ratings_set: vec![(identifier.clone(), 0.8)],
            ..AgentDiff::default()
        });
        uris.push(uri);
    }
    let crawl = CrawlDelta { changed: diffs, ..CrawlDelta::default() };
    let touched = store
        .append_delta(&model, &crawl, &SourceHealth::default())
        .expect("append delta");
    assert_eq!(touched, 1, "a shard-0 delta must touch exactly one WAL");

    let (live, report) = model.advance(
        &next,
        &ModelDelta { ratings_changed: uris, trust_changed: Vec::new() },
    );
    assert!(!report.wholesale);
    assert_eq!(report.rebuilt, vec![0]);

    let recovery = store.recover(Arc::new(HashShardFn)).expect("recover");
    assert!(!recovery.degraded);
    assert_eq!(
        recovery.replayed, 1,
        "only shard 0 appended a record; the others replay nothing"
    );
    let recovered = recovery.model;
    assert_eq!(recovered.shard_count(), shards);
    assert_eq!(recovered.agent_count(), live.agent_count());

    // Every agent, both dirtied and untouched, recommends identically —
    // bit-for-bit — from the recovered model and the live one.
    for agent in community.agents() {
        let uri = &community.agent(agent).expect("dense id").uri;
        let want = live.recommend_by_uri(uri, 5).expect("live serve");
        let got = recovered.recommend_by_uri(uri, 5).expect("recovered serve");
        assert_eq!(want.len(), got.len(), "length for {uri}");
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.product, g.product, "product for {uri}");
            assert_eq!(
                w.score.to_bits(),
                g.score.to_bits(),
                "score bits for {uri}: {} vs {}",
                w.score,
                g.score
            );
            assert_eq!(w.voters, g.voters, "voters for {uri}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A boundary-free universe (trust only inside each hash class) so the
/// serve-dirty closure equals the model-dirty set: after a one-shard delta
/// the cache carries every clean-shard entry and drops the dirty shard's.
#[test]
fn serve_cache_carries_clean_shards_across_a_delta() {
    let shards = 4usize;
    let e = example1();
    let mut community = Community::new(e.fig.taxonomy, e.catalog);
    let uris: Vec<String> = (0..48).map(|i| format!("http://ex.org/cache{i}#me")).collect();
    let agents: Vec<AgentId> =
        uris.iter().map(|u| community.add_agent(u.clone()).expect("fresh uri")).collect();
    let products: Vec<ProductId> = community.catalog.iter().collect();
    // Trust edges strictly within a hash class: no cross-shard boundary
    // edges exist, at any shard count dividing 4.
    for i in 0..uris.len() {
        for j in 0..uris.len() {
            if i != j && HashShardFn.route(&uris[i], shards) == HashShardFn.route(&uris[j], shards)
            {
                community.trust.set_trust(agents[i], agents[j], 0.7).expect("edge");
            }
        }
    }
    for (i, &a) in agents.iter().enumerate() {
        community.set_rating(a, products[i % products.len()], 0.9).expect("rating");
    }

    let config = RecommenderConfig::default();
    let (model, _) = ShardedModel::partition(&community, config, Arc::new(HashShardFn), shards, 1);
    let cache = ShardedServeCache::new(256);

    // Warm one entry per agent; a second pass must be pure hits.
    let hits_before = counters("shard.cache.hits");
    for &a in &agents {
        let g = GlobalId(a.index() as u32);
        cache.get_or_compute(&model, g, 5).expect("serve");
    }
    for &a in &agents {
        let g = GlobalId(a.index() as u32);
        cache.get_or_compute(&model, g, 5).expect("serve");
    }
    assert_eq!(cache.len(), agents.len());
    assert!(counters("shard.cache.hits") - hits_before >= agents.len() as u64);

    // Dirty exactly one agent — its hash class is the only dirty shard.
    let victim = agents[0];
    let victim_shard = model.directory().shard_of(GlobalId(victim.index() as u32));
    let on_dirty_shard = agents
        .iter()
        .filter(|a| model.directory().shard_of(GlobalId(a.index() as u32)) == victim_shard)
        .count();
    let mut next = community.clone();
    next.set_rating(victim, products[1], -0.5).expect("churn");
    let (next_model, report) = model.advance(
        &next,
        &ModelDelta {
            ratings_changed: vec![uris[0].clone()],
            trust_changed: Vec::new(),
        },
    );
    assert_eq!(report.rebuilt, vec![victim_shard as usize]);
    assert_eq!(
        report.serve_dirty,
        vec![victim_shard as usize],
        "no boundary edges: serve-dirty closure must not spread"
    );

    cache.swap(&next_model);
    assert_eq!(
        cache.len(),
        agents.len() - on_dirty_shard,
        "clean-shard entries carried, dirty-shard entries invalidated"
    );

    // Carried entries are served as hits against the new model; the dirty
    // shard's entries recompute.
    let hits_before = counters("shard.cache.hits");
    let misses_before = counters("shard.cache.misses");
    for &a in &agents {
        let g = GlobalId(a.index() as u32);
        cache.get_or_compute(&next_model, g, 5).expect("serve after swap");
    }
    assert_eq!(
        counters("shard.cache.hits") - hits_before,
        (agents.len() - on_dirty_shard) as u64
    );
    assert_eq!(counters("shard.cache.misses") - misses_before, on_dirty_shard as u64);
}

fn counters(name: &str) -> u64 {
    semrec::obs::global().snapshot().counters.get(name).copied().unwrap_or(0)
}
