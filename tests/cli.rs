//! End-to-end test of the `semrec` CLI: generate a world onto disk as Turtle
//! documents, then inspect / trust / recommend against it.

use std::process::Command;

fn semrec() -> Command {
    Command::new(env!("CARGO_BIN_EXE_semrec"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let output = semrec().args(args).output().expect("binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn generate_inspect_trust_recommend_round_trip() {
    let dir = std::env::temp_dir().join(format!("semrec-cli-test-{}", std::process::id()));
    let dir_str = dir.to_str().unwrap();

    let (ok, stdout, stderr) =
        run(&["generate", "--scale", "small", "--seed", "11", "--out", dir_str]);
    assert!(ok, "generate failed: {stderr}");
    assert!(stdout.contains("200 agent homepages"), "{stdout}");
    assert!(dir.join("taxonomy.ttl").exists());
    assert!(dir.join("catalog.ttl").exists());
    assert!(dir.join("agents/0.ttl").exists());

    let (ok, stdout, stderr) = run(&["inspect", "--data", dir_str]);
    assert!(ok, "inspect failed: {stderr}");
    assert!(stdout.contains("| agents"), "{stdout}");
    assert!(stdout.contains("200"), "{stdout}");

    let agent = "http://community.example.org/agents/0#me";
    let (ok, stdout, stderr) = run(&["trust", "--data", dir_str, "--agent", agent, "--top", "3"]);
    assert!(ok, "trust failed: {stderr}");
    assert!(stdout.contains("Appleseed"), "{stdout}");
    assert!(stdout.matches("agents/").count() >= 3, "{stdout}");

    let (ok, stdout, stderr) =
        run(&["recommend", "--data", dir_str, "--agent", agent, "--top", "5"]);
    assert!(ok, "recommend failed: {stderr}");
    assert!(stdout.contains("urn:isbn:"), "{stdout}");

    // Diversified output still returns the requested count.
    let (ok, stdout, _) = run(&[
        "recommend", "--data", dir_str, "--agent", agent, "--top", "5", "--diversify", "0.5",
    ]);
    assert!(ok);
    assert!(stdout.lines().filter(|l| l.contains("urn:isbn:")).count() == 5, "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rdfxml_world_round_trips() {
    let dir = std::env::temp_dir().join(format!("semrec-cli-xml-{}", std::process::id()));
    let dir_str = dir.to_str().unwrap();
    let (ok, stdout, stderr) = run(&[
        "generate", "--scale", "small", "--seed", "11", "--out", dir_str, "--format", "rdfxml",
    ]);
    assert!(ok, "generate failed: {stderr}");
    assert!(stdout.contains("RDF/XML"), "{stdout}");
    assert!(dir.join("agents/0.rdf").exists());

    // The same seed in both formats must load into identical statistics.
    let (ok, stdout, stderr) = run(&["inspect", "--data", dir_str]);
    assert!(ok, "inspect failed: {stderr}");
    assert!(!stderr.contains("failed to parse"), "{stderr}");
    assert!(stdout.contains("200"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn helpful_errors() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (ok, _, stderr) = run(&["recommend", "--data", "/nonexistent-semrec-dir"]);
    assert!(!ok);
    assert!(stderr.contains("error"));

    let (ok, _, stderr) = run(&["generate", "--scale", "galactic"]);
    assert!(!ok);
    assert!(stderr.contains("unknown scale"));
}
