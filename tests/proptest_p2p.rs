//! Gossip determinism and convergence properties (the `semrec-p2p`
//! contract):
//!
//! 1. **Byte-identity across runs and thread counts** — a simulation is a
//!    pure function of `(world, fault plan, config)`: rerunning it, or
//!    running it with 1, 2, or 8 worker threads, reproduces every `p2p.*`
//!    counter, every per-peer knowledge count, and every neighborhood
//!    score bit-for-bit, faults included.
//!
//! 2. **Monotone learning, exact convergence** — on a fault-free world
//!    whose trust graph is connected, knowledge only grows round over
//!    round, and once every peer has learned every record its local
//!    neighborhood *equals* the centralized one: overlap@k and Spearman ρ
//!    both reach 1.0 exactly (weights round-trip through Turtle
//!    losslessly, and peers insert nodes in the same sorted-URI order the
//!    centralized assembly uses).
//!
//! 3. **Per-peer checkpoints recover** — a peer's `semrec-store`
//!    checkpoint of its crawled slice recovers to the same community a
//!    fresh assembly of that slice builds.

use proptest::prelude::*;
use semrec::core::Community;
use semrec::p2p::{centralized_baseline, GossipConfig, P2pSimulation};
use semrec::taxonomy::fixtures::example1;
use semrec::web::fault::FaultPlan;
use semrec::web::publish::publish_community;
use semrec::web::store::DocumentWeb;
use semrec::AgentId;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests in this binary: they reset and read the process-global
/// metrics registry, and the harness runs tests on parallel threads.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

/// A connected world: a trust ring over `n` agents (so every agent is
/// reachable from every other) plus arbitrary extra edges. URIs are
/// zero-padded so insertion order equals sorted order — the invariant that
/// lets a fully-informed peer rebuild the centralized graph node-for-node.
fn build_world(n: usize, ring: &[f64], extra: &[(usize, usize, f64)]) -> Community {
    let e = example1();
    let mut c = Community::new(e.fig.taxonomy, e.catalog);
    let agents: Vec<AgentId> =
        (0..n).map(|i| c.add_agent(format!("http://ex.org/u{i:02}")).unwrap()).collect();
    for i in 0..n {
        c.trust.set_trust(agents[i], agents[(i + 1) % n], ring[i % ring.len()]).unwrap();
    }
    for &(a, b, w) in extra {
        let (a, b) = (a % n, b % n);
        if a != b {
            c.trust.set_trust(agents[a], agents[b], w).unwrap();
        }
    }
    c
}

type World = (usize, Vec<f64>, Vec<(usize, usize, f64)>);

fn arb_world() -> impl Strategy<Value = World> {
    (4usize..10).prop_flat_map(|n| {
        (
            Just(n),
            prop::collection::vec(0.05f64..=1.0, 1..8),
            prop::collection::vec((0..n, 0..n, 0.05f64..=1.0), 0..16),
        )
    })
}

fn publish(community: &Community) -> (DocumentWeb, Vec<String>) {
    let web = DocumentWeb::new();
    publish_community(community, &web);
    let mut uris: Vec<String> =
        community.agents().map(|a| community.agent(a).unwrap().uri.clone()).collect();
    uris.sort();
    (web, uris)
}

/// Everything a run can observably produce, in comparable form.
type Fingerprint = (
    std::collections::BTreeMap<String, u64>,
    (u64, u64, u64, u64, u64, u64, u64),
    Vec<usize>,
    Vec<Vec<(String, u64)>>,
);

fn fingerprint(sim: &P2pSimulation, config: &GossipConfig) -> Fingerprint {
    let counters = semrec::obs::global().snapshot().retain_prefix("p2p.").counters;
    let s = sim.stats();
    let stats = (
        s.messages_sent,
        s.messages_failed,
        s.messages_suppressed,
        s.records_merged,
        s.records_duplicate,
        s.bytes_sent,
        s.breaker_opens,
    );
    let known: Vec<usize> = sim.peers().iter().map(|p| p.known_count()).collect();
    let hoods: Vec<Vec<(String, u64)>> = sim
        .peers()
        .iter()
        .map(|p| {
            p.neighborhood(&config.neighborhood)
                .into_iter()
                .map(|(u, score)| (u.to_string(), score.to_bits()))
                .collect()
        })
        .collect();
    (counters, stats, known, hoods)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property 1: same world, same config ⇒ same bytes, whatever the
    /// thread count, and however often we rerun — faults and all.
    #[test]
    fn gossip_is_byte_identical_across_runs_and_thread_counts(
        (n, ring, extra) in arb_world(),
        transient in 0.0f64..0.5,
        dead in 0.0f64..0.3,
    ) {
        let _guard = lock();
        let community = build_world(n, &ring, &extra);
        let (web, uris) = publish(&community);
        let plan = FaultPlan { transient_rate: transient, dead_rate: dead, seed: 7, ..FaultPlan::none() };

        let mut fingerprints: Vec<Fingerprint> = Vec::new();
        // threads=1 twice: run-to-run stability, not just thread-count.
        for threads in [1usize, 2, 8, 1] {
            semrec::obs::global().reset();
            let config = GossipConfig {
                seed: 11,
                threads,
                max_records: 8,
                ..GossipConfig::default()
            };
            let mut sim = P2pSimulation::bootstrap(&web, &uris, plan, config);
            sim.run(4);
            fingerprints.push(fingerprint(&sim, &config));
        }
        for other in &fingerprints[1..] {
            prop_assert_eq!(&fingerprints[0], other);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property 2: fault-free gossip only learns (knowledge counts are
    /// monotone), and full knowledge means the *exact* centralized answer.
    #[test]
    fn fault_free_gossip_learns_monotonically_and_converges_exactly(
        (n, ring, extra) in arb_world(),
    ) {
        let _guard = lock();
        let community = build_world(n, &ring, &extra);
        let (web, uris) = publish(&community);
        let config = GossipConfig {
            seed: 5,
            fanout: 2,
            max_records: 64,
            ..GossipConfig::default()
        };
        let baseline = centralized_baseline(&community, &config.neighborhood, &uris, 5);

        let mut sim = P2pSimulation::bootstrap(&web, &uris, FaultPlan::none(), config);
        let at_bootstrap = sim.convergence(&baseline);
        let mut last_known: usize = sim.peers().iter().map(|p| p.known_count()).sum();
        let mut last_sent = 0u64;
        let mut rounds = 0u32;
        while sim.peers().iter().any(|p| p.known_count() < n) && rounds < 48 {
            sim.step();
            rounds += 1;
            let known: usize = sim.peers().iter().map(|p| p.known_count()).sum();
            prop_assert!(known >= last_known, "gossip forgot records in round {rounds}");
            last_known = known;
            let sent = sim.stats().messages_sent;
            prop_assert!(sent > last_sent, "every round must exchange messages");
            last_sent = sent;
        }
        prop_assert!(
            sim.peers().iter().all(|p| p.known_count() == n),
            "a connected swarm must reach full knowledge ({} rounds run)", rounds
        );

        let converged = sim.convergence(&baseline);
        prop_assert!(converged.mean_overlap >= 1.0 - 1e-12,
            "full knowledge must reproduce the centralized top-k exactly, got {}",
            converged.mean_overlap);
        prop_assert!(converged.mean_rho >= 1.0 - 1e-12,
            "full knowledge must reproduce the centralized ranking exactly, got {}",
            converged.mean_rho);
        prop_assert!(converged.mean_overlap >= at_bootstrap.mean_overlap - 1e-12);
    }
}

#[test]
fn per_peer_checkpoints_recover_the_local_slice() {
    use semrec::store::Store;
    use semrec::web::crawler::assemble_community;

    let _guard = lock();
    let community = build_world(6, &[0.9, 0.3, 0.7], &[(0, 2, 0.5), (3, 1, 0.8)]);
    let (web, uris) = publish(&community);
    let config = GossipConfig { seed: 3, ..GossipConfig::default() };
    let mut sim = P2pSimulation::bootstrap(&web, &uris, FaultPlan::none(), config);
    sim.run(2);

    let dir = std::env::temp_dir().join(format!("semrec-p2p-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();
    let e = example1();
    let report = sim.checkpoint_peer(&uris[0], &store, e.fig.taxonomy, e.catalog, 1).unwrap();
    assert!(report.snapshot_bytes > 0);

    let recovery = store.recover().unwrap();
    let peer = sim.peer(&uris[0]).unwrap();
    let e = example1();
    let (expected, _) = assemble_community(peer.view(), e.fig.taxonomy, e.catalog);
    assert_eq!(recovery.engine.community().agent_count(), expected.agent_count());
    assert_eq!(recovery.replayed, 0, "no WAL was written, recovery is snapshot-only");
    let _ = std::fs::remove_dir_all(&dir);
}
