//! End-to-end guarantees of the serving layer (`semrec-serve`), pinned at
//! the workspace level against the real engine:
//!
//! 1. **Determinism** — recommendations served through the pool are
//!    byte-identical to direct `Recommender::recommend` calls, whatever the
//!    worker count, and whether they came from the engine or the cache.
//! 2. **Hot swap** — publishing a new snapshot mid-load loses no in-flight
//!    request, routes every post-publish request to the new generation,
//!    and lets the old generation's model drop with its last reader.
//! 3. **Admission control** — at capacity the server sheds with a typed
//!    `Overloaded` error instead of queuing without bound, and shutdown
//!    answers still-queued requests instead of dropping them.

use std::sync::Arc;

use semrec::core::{Recommender, RecommenderConfig};
use semrec::serve::{ServeConfig, ServeError, Server};
use semrec::taxonomy::fixtures::example1;
use semrec::{AgentId, Community};

/// A ring community: agent i trusts agent i+1 and rates one product.
fn ring(n: usize) -> (Recommender, Vec<AgentId>) {
    let e = example1();
    let products: Vec<_> = e.catalog.iter().collect();
    let mut c = Community::new(e.fig.taxonomy, e.catalog);
    let agents: Vec<AgentId> =
        (0..n).map(|i| c.add_agent(format!("http://ex.org/u{i}")).unwrap()).collect();
    for i in 0..n {
        c.trust.set_trust(agents[i], agents[(i + 1) % n], 0.9).unwrap();
        c.set_rating(agents[i], products[i % 4], 1.0).unwrap();
    }
    (Recommender::new(c, RecommenderConfig::default()), agents)
}

#[test]
fn served_recommendations_are_byte_identical_to_direct_calls() {
    let (engine, agents) = ring(48);
    let direct: Vec<_> = agents.iter().map(|&a| engine.recommend(a, 10).unwrap()).collect();

    for workers in [1, 2, 8] {
        let server =
            Server::start(engine.clone(), ServeConfig { workers, ..ServeConfig::default() });
        // First pass: every answer computed by the engine.
        let tickets: Vec<_> = agents.iter().map(|&a| server.submit(a, 10).unwrap()).collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let response = ticket.wait().unwrap();
            assert_eq!(
                *response.recommendations, direct[i],
                "worker count {workers} must not change agent {i}'s list"
            );
            assert_eq!(response.epoch, 1);
        }
        // Second pass: same panel again — cache hits must be equally exact.
        let tickets: Vec<_> = agents.iter().map(|&a| server.submit(a, 10).unwrap()).collect();
        let mut hits = 0;
        for (i, ticket) in tickets.into_iter().enumerate() {
            let response = ticket.wait().unwrap();
            assert_eq!(*response.recommendations, direct[i]);
            hits += response.cache_hit as u64;
        }
        assert!(hits > 0, "a warm cache must answer repeats");
    }
}

#[test]
fn snapshot_swap_mid_load_loses_nothing_and_retires_the_old_model() {
    let (engine, agents) = ring(32);
    let old_model = Arc::downgrade(&engine.shared());
    let server =
        Server::start(engine.clone(), ServeConfig { workers: 2, ..ServeConfig::default() });

    // A wave in flight, then a publish racing the workers.
    let first: Vec<_> = agents.iter().map(|&a| server.submit(a, 10).unwrap()).collect();
    let (next_engine, _) = ring(32);
    let new_epoch = server.publish(next_engine);
    assert_eq!(new_epoch, 2);
    let second: Vec<_> = agents.iter().map(|&a| server.submit(a, 10).unwrap()).collect();

    // Zero loss: every first-wave ticket resolves to a recommendation list,
    // served by whichever generation its batch pinned.
    for ticket in first {
        let response = ticket.wait().unwrap();
        assert!(response.epoch == 1 || response.epoch == new_epoch);
    }
    // Everything submitted after publish() returned sees the new epoch.
    for ticket in second {
        assert_eq!(ticket.wait().unwrap().epoch, new_epoch);
    }

    // The old generation's model drops once its last reader finishes. The
    // local `engine` handle is ours; after dropping it, only a worker still
    // mid-batch could pin the old snapshot, and only momentarily.
    drop(engine);
    let mut retired = false;
    for _ in 0..500 {
        if old_model.upgrade().is_none() {
            retired = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(retired, "the pre-swap model must drop with its last reader");
    drop(server);
}

#[test]
fn publishing_a_different_ranker_swaps_atomically_and_invalidates_the_cache() {
    use semrec::core::{Recommendation, SpreadingActivationRanker};

    // A ring plus a few chords, so the two rankers genuinely disagree.
    let (seed, agents) = ring(32);
    let mut c = seed.community().clone();
    for i in 0..8 {
        c.trust.set_trust(agents[i], agents[(i + 5) % 32], 0.8).unwrap();
    }
    let similarity = Recommender::new(c.clone(), RecommenderConfig::default());
    let spreading = Recommender::with_ranker(
        c,
        RecommenderConfig::default(),
        Arc::new(SpreadingActivationRanker::default()),
    );
    let bits = |recs: &[Recommendation]| -> Vec<(semrec::ProductId, u64)> {
        recs.iter().map(|r| (r.product, r.score.to_bits())).collect()
    };
    let direct_sim: Vec<_> =
        agents.iter().map(|&a| similarity.recommend(a, 10).unwrap()).collect();
    let direct_spread: Vec<_> =
        agents.iter().map(|&a| spreading.recommend(a, 10).unwrap()).collect();
    assert_ne!(
        bits(&direct_sim[0]),
        bits(&direct_spread[0]),
        "the fixture must make the rankers disagree, or the swap test is vacuous"
    );

    let server =
        Server::start(similarity, ServeConfig { workers: 2, ..ServeConfig::default() });
    // Warm the cache under the similarity ranker.
    assert!(!server.submit(agents[0], 10).unwrap().wait().unwrap().cache_hit);
    let warmed = server.submit(agents[0], 10).unwrap().wait().unwrap();
    assert!(warmed.cache_hit, "repeat must hit the epoch-1 cache");
    assert_eq!(bits(&warmed.recommendations), bits(&direct_sim[0]));

    // A wave in flight, then the ranker swap racing the workers.
    let first: Vec<_> = agents.iter().map(|&a| server.submit(a, 10).unwrap()).collect();
    let new_epoch = server.publish(spreading);
    let second: Vec<_> = agents.iter().map(|&a| server.submit(a, 10).unwrap()).collect();

    // No mixed-ranker batch: every first-wave answer is exactly one
    // generation's ranking — the epoch its micro-batch pinned.
    for (i, ticket) in first.into_iter().enumerate() {
        let response = ticket.wait().unwrap();
        let expected =
            if response.epoch == new_epoch { &direct_spread[i] } else { &direct_sim[i] };
        assert_eq!(
            bits(&response.recommendations),
            bits(expected),
            "agent {i} (epoch {}) must match that epoch's ranker exactly",
            response.epoch
        );
    }
    // Everything after publish() is ranked by the new generation — including
    // the warmed agent: the (epoch, agent, n) cache key makes the stale
    // similarity-ranked entry unreachable.
    for (i, ticket) in second.into_iter().enumerate() {
        let response = ticket.wait().unwrap();
        assert_eq!(response.epoch, new_epoch);
        assert_eq!(bits(&response.recommendations), bits(&direct_spread[i]));
    }
    // And the new generation caches normally under its own epoch.
    let rewarmed = server.submit(agents[0], 10).unwrap().wait().unwrap();
    assert!(rewarmed.cache_hit, "the post-swap entry must be cached");
    assert_eq!(bits(&rewarmed.recommendations), bits(&direct_spread[0]));
}

#[test]
fn admission_control_refuses_deterministically_and_shutdown_answers() {
    let (engine, agents) = ring(8);
    // Zero workers: nothing drains, so admission behavior is exact.
    let server = Server::start(
        engine,
        ServeConfig { workers: 0, queue_capacity: 3, ..ServeConfig::default() },
    );

    let queued: Vec<_> = (0..3).map(|_| server.submit(agents[0], 5).unwrap()).collect();
    match server.submit(agents[0], 5) {
        Err(ServeError::Overloaded { depth }) => assert_eq!(depth, 3),
        other => panic!("4th submission into a 3-deep queue must shed, got {other:?}"),
    }
    assert_eq!(server.queue_depth(), 3);

    // Shutdown answers the still-queued requests rather than dropping them.
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.served, 0, "no workers ran, so nothing was served");
    for ticket in queued {
        assert!(matches!(ticket.wait(), Err(ServeError::ShuttingDown)));
    }
}
