//! End-to-end guarantees of the serving layer (`semrec-serve`), pinned at
//! the workspace level against the real engine:
//!
//! 1. **Determinism** — recommendations served through the pool are
//!    byte-identical to direct `Recommender::recommend` calls, whatever the
//!    worker count, and whether they came from the engine or the cache.
//! 2. **Hot swap** — publishing a new snapshot mid-load loses no in-flight
//!    request, routes every post-publish request to the new generation,
//!    and lets the old generation's model drop with its last reader.
//! 3. **Admission control** — at capacity the server sheds with a typed
//!    `Overloaded` error instead of queuing without bound, and shutdown
//!    answers still-queued requests instead of dropping them.
//! 4. **SLO semantics** — the deadline boundary is exactly `now > deadline`
//!    (a request whose deadline *is* the current tick is served), priority
//!    classes flow through the weighted-fair queue end to end, and under
//!    burst load against a degraded-source epoch every admitted request is
//!    answered with its explanation marked degraded.

use std::sync::Arc;

use semrec::core::{Recommender, RecommenderConfig, SourceHealth};
use semrec::serve::{
    run_open_loop, run_open_loop_with, ArrivalProcess, OpenLoopConfig, Priority, ServeConfig,
    ServeError, Server, SloConfig, SloController,
};
use semrec::taxonomy::fixtures::example1;
use semrec::{AgentId, Community};

/// A ring community: agent i trusts agent i+1 and rates one product.
fn ring(n: usize) -> (Recommender, Vec<AgentId>) {
    let e = example1();
    let products: Vec<_> = e.catalog.iter().collect();
    let mut c = Community::new(e.fig.taxonomy, e.catalog);
    let agents: Vec<AgentId> =
        (0..n).map(|i| c.add_agent(format!("http://ex.org/u{i}")).unwrap()).collect();
    for i in 0..n {
        c.trust.set_trust(agents[i], agents[(i + 1) % n], 0.9).unwrap();
        c.set_rating(agents[i], products[i % 4], 1.0).unwrap();
    }
    (Recommender::new(c, RecommenderConfig::default()), agents)
}

#[test]
fn served_recommendations_are_byte_identical_to_direct_calls() {
    let (engine, agents) = ring(48);
    let direct: Vec<_> = agents.iter().map(|&a| engine.recommend(a, 10).unwrap()).collect();

    for workers in [1, 2, 8] {
        let server =
            Server::start(engine.clone(), ServeConfig { workers, ..ServeConfig::default() });
        // First pass: every answer computed by the engine.
        let tickets: Vec<_> = agents.iter().map(|&a| server.submit(a, 10).unwrap()).collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let response = ticket.wait().unwrap();
            assert_eq!(
                *response.recommendations, direct[i],
                "worker count {workers} must not change agent {i}'s list"
            );
            assert_eq!(response.epoch, 1);
        }
        // Second pass: same panel again — cache hits must be equally exact.
        let tickets: Vec<_> = agents.iter().map(|&a| server.submit(a, 10).unwrap()).collect();
        let mut hits = 0;
        for (i, ticket) in tickets.into_iter().enumerate() {
            let response = ticket.wait().unwrap();
            assert_eq!(*response.recommendations, direct[i]);
            hits += response.cache_hit as u64;
        }
        assert!(hits > 0, "a warm cache must answer repeats");
    }
}

#[test]
fn snapshot_swap_mid_load_loses_nothing_and_retires_the_old_model() {
    let (engine, agents) = ring(32);
    let old_model = Arc::downgrade(&engine.shared());
    let server =
        Server::start(engine.clone(), ServeConfig { workers: 2, ..ServeConfig::default() });

    // A wave in flight, then a publish racing the workers.
    let first: Vec<_> = agents.iter().map(|&a| server.submit(a, 10).unwrap()).collect();
    let (next_engine, _) = ring(32);
    let new_epoch = server.publish(next_engine);
    assert_eq!(new_epoch, 2);
    let second: Vec<_> = agents.iter().map(|&a| server.submit(a, 10).unwrap()).collect();

    // Zero loss: every first-wave ticket resolves to a recommendation list,
    // served by whichever generation its batch pinned.
    for ticket in first {
        let response = ticket.wait().unwrap();
        assert!(response.epoch == 1 || response.epoch == new_epoch);
    }
    // Everything submitted after publish() returned sees the new epoch.
    for ticket in second {
        assert_eq!(ticket.wait().unwrap().epoch, new_epoch);
    }

    // The old generation's model drops once its last reader finishes. The
    // local `engine` handle is ours; after dropping it, only a worker still
    // mid-batch could pin the old snapshot, and only momentarily.
    drop(engine);
    let mut retired = false;
    for _ in 0..500 {
        if old_model.upgrade().is_none() {
            retired = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(retired, "the pre-swap model must drop with its last reader");
    drop(server);
}

#[test]
fn publishing_a_different_ranker_swaps_atomically_and_invalidates_the_cache() {
    use semrec::core::{Recommendation, SpreadingActivationRanker};

    // A ring plus a few chords, so the two rankers genuinely disagree.
    let (seed, agents) = ring(32);
    let mut c = seed.community().clone();
    for i in 0..8 {
        c.trust.set_trust(agents[i], agents[(i + 5) % 32], 0.8).unwrap();
    }
    let similarity = Recommender::new(c.clone(), RecommenderConfig::default());
    let spreading = Recommender::with_ranker(
        c,
        RecommenderConfig::default(),
        Arc::new(SpreadingActivationRanker::default()),
    );
    let bits = |recs: &[Recommendation]| -> Vec<(semrec::ProductId, u64)> {
        recs.iter().map(|r| (r.product, r.score.to_bits())).collect()
    };
    let direct_sim: Vec<_> =
        agents.iter().map(|&a| similarity.recommend(a, 10).unwrap()).collect();
    let direct_spread: Vec<_> =
        agents.iter().map(|&a| spreading.recommend(a, 10).unwrap()).collect();
    assert_ne!(
        bits(&direct_sim[0]),
        bits(&direct_spread[0]),
        "the fixture must make the rankers disagree, or the swap test is vacuous"
    );

    let server =
        Server::start(similarity, ServeConfig { workers: 2, ..ServeConfig::default() });
    // Warm the cache under the similarity ranker.
    assert!(!server.submit(agents[0], 10).unwrap().wait().unwrap().cache_hit);
    let warmed = server.submit(agents[0], 10).unwrap().wait().unwrap();
    assert!(warmed.cache_hit, "repeat must hit the epoch-1 cache");
    assert_eq!(bits(&warmed.recommendations), bits(&direct_sim[0]));

    // A wave in flight, then the ranker swap racing the workers.
    let first: Vec<_> = agents.iter().map(|&a| server.submit(a, 10).unwrap()).collect();
    let new_epoch = server.publish(spreading);
    let second: Vec<_> = agents.iter().map(|&a| server.submit(a, 10).unwrap()).collect();

    // No mixed-ranker batch: every first-wave answer is exactly one
    // generation's ranking — the epoch its micro-batch pinned.
    for (i, ticket) in first.into_iter().enumerate() {
        let response = ticket.wait().unwrap();
        let expected =
            if response.epoch == new_epoch { &direct_spread[i] } else { &direct_sim[i] };
        assert_eq!(
            bits(&response.recommendations),
            bits(expected),
            "agent {i} (epoch {}) must match that epoch's ranker exactly",
            response.epoch
        );
    }
    // Everything after publish() is ranked by the new generation — including
    // the warmed agent: the (epoch, agent, n) cache key makes the stale
    // similarity-ranked entry unreachable.
    for (i, ticket) in second.into_iter().enumerate() {
        let response = ticket.wait().unwrap();
        assert_eq!(response.epoch, new_epoch);
        assert_eq!(bits(&response.recommendations), bits(&direct_spread[i]));
    }
    // And the new generation caches normally under its own epoch.
    let rewarmed = server.submit(agents[0], 10).unwrap().wait().unwrap();
    assert!(rewarmed.cache_hit, "the post-swap entry must be cached");
    assert_eq!(bits(&rewarmed.recommendations), bits(&direct_spread[0]));
}

#[test]
fn admission_control_refuses_deterministically_and_shutdown_answers() {
    let (engine, agents) = ring(8);
    // Zero workers: nothing drains, so admission behavior is exact.
    let server = Server::start(
        engine,
        ServeConfig { workers: 0, queue_capacity: 3, ..ServeConfig::default() },
    );

    let queued: Vec<_> = (0..3).map(|_| server.submit(agents[0], 5).unwrap()).collect();
    match server.submit(agents[0], 5) {
        Err(ServeError::Overloaded { depth, capacity, class }) => {
            assert_eq!(depth, 3);
            assert_eq!(capacity, 3, "the shed error must name the capacity it ran into");
            assert_eq!(class, Priority::Normal);
        }
        other => panic!("4th submission into a 3-deep queue must shed, got {other:?}"),
    }
    assert_eq!(server.queue_depth(), 3);

    // Shutdown answers the still-queued requests rather than dropping them.
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.served, 0, "no workers ran, so nothing was served");
    for ticket in queued {
        assert!(matches!(ticket.wait(), Err(ServeError::ShuttingDown)));
    }
}

/// Pins the deadline boundary: the shed condition is strictly
/// `now > deadline`, so a request drained on exactly its deadline tick is
/// served, and one tick later it is shed. This is the off-by-one the whole
/// goodput metric hangs on.
#[test]
fn deadline_boundary_is_inclusive_of_the_deadline_tick() {
    let (engine, agents) = ring(8);

    // Served: drained when now == deadline.
    let server = Server::start(engine.clone(), ServeConfig { workers: 0, ..Default::default() });
    let at_deadline = server.submit_with_deadline(agents[0], 5, Some(4)).unwrap();
    server.clock().advance(4);
    server.drain_step(8, 1, None);
    let response = at_deadline.try_wait().expect("resolved at its deadline tick");
    assert!(response.is_ok(), "deadline == now must be served, got {response:?}");
    server.shutdown();

    // Shed: drained one tick past.
    let server = Server::start(engine, ServeConfig { workers: 0, ..Default::default() });
    let past_deadline = server.submit_with_deadline(agents[0], 5, Some(4)).unwrap();
    server.clock().advance(5);
    server.drain_step(8, 1, None);
    match past_deadline.try_wait().expect("resolved one tick past") {
        Err(ServeError::DeadlineExceeded { deadline: 4, now: 5 }) => {}
        other => panic!("deadline + 1 must shed with the exact ticks, got {other:?}"),
    }
    server.shutdown();
}

/// Priority classes flow end to end: under weighted-fair dequeue with all
/// classes backlogged, High is served strictly before Low within a round,
/// for both a single worker and a wide pool.
#[test]
fn priority_classes_flow_through_the_weighted_fair_queue() {
    let (engine, agents) = ring(16);
    for workers in [1usize, 8] {
        let server = Server::start(
            engine.clone(),
            ServeConfig { workers: 0, queue_capacity: 64, ..Default::default() },
        );
        let low: Vec<_> = (0..4)
            .map(|i| server.submit_classed(agents[i], 5, Priority::Low, None).unwrap())
            .collect();
        let high: Vec<_> = (0..4)
            .map(|i| server.submit_classed(agents[i + 4], 5, Priority::High, None).unwrap())
            .collect();
        // One narrow drain: the DRR round serves all 4 High (weight 4) but
        // at most the round's Normal/Low allowance. try_wait consumes the
        // response, so poll each ticket once and keep the result.
        server.drain_step(5, workers, None);
        let mut high_results: Vec<_> = high.iter().map(|t| t.try_wait()).collect();
        let mut low_results: Vec<_> = low.iter().map(|t| t.try_wait()).collect();
        let high_done = high_results.iter().filter(|r| r.is_some()).count();
        let low_done = low_results.iter().filter(|r| r.is_some()).count();
        assert_eq!(high_done, 4, "workers={workers}: a full High allowance is served first");
        assert!(low_done <= 1, "workers={workers}: Low gets its weight share, not more");
        // The rest drains; everything resolves.
        server.drain_step(64, workers, None);
        for (ticket, slot) in
            low.iter().zip(&mut low_results).chain(high.iter().zip(&mut high_results))
        {
            let result = slot.take().or_else(|| ticket.try_wait());
            assert!(result.expect("resolved").is_ok());
        }
        let stats = server.shutdown();
        assert_eq!(stats.class.high.served, 4);
        assert_eq!(stats.class.low.served, 4);
    }
}

/// Regression: a degraded-source epoch under burst load answers every
/// admitted request — nothing lost, nothing hung — and every served answer
/// carries the degraded marker so explanations can say so.
#[test]
fn degraded_epoch_under_burst_load_answers_everything_and_marks_it() {
    let (engine, agents) = ring(24);
    let health = SourceHealth {
        attempted: 24,
        fetched: 20,
        unreachable: 3,
        gave_up: 1,
        corrupted: 0,
        parse_errors: 2,
    };
    assert!(health.is_degraded());
    let degraded_engine = engine.with_source_health(health);

    let server = Server::start(
        degraded_engine,
        ServeConfig { workers: 0, queue_capacity: 48, ..Default::default() },
    );
    let config = OpenLoopConfig {
        ticks: 40,
        process: ArrivalProcess::FlashCrowd {
            base: 1.0,
            spike: 12.0,
            start: 10,
            len: 12,
            hot_agents: 4,
            hot_fraction: 0.7,
        },
        class_mix: [0.3, 0.4, 0.3],
        ..Default::default()
    };
    let report = run_open_loop(&server, &agents, &config);
    assert!(report.offered() > 0);
    assert_eq!(report.lost, 0, "every admitted request must resolve: {report:?}");
    for class in Priority::ALL {
        let slot = report.class.get(class);
        assert_eq!(
            slot.resolved(),
            slot.admitted,
            "{class}: admitted requests must all be served, shed or failed"
        );
    }
    // Served answers carry the degraded marker.
    let probe = server.submit(agents[0], 5).unwrap();
    server.drain_step(8, 1, None);
    let response = probe.try_wait().expect("resolved").unwrap();
    assert!(response.degraded, "a degraded-source epoch must mark its answers");
    server.shutdown();
}

/// Robustness: a snapshot publish in the middle of a flash-crowd spike
/// loses no admitted request, and post-publish answers come from the new
/// epoch.
#[test]
fn mid_burst_publish_loses_nothing_under_open_loop_load() {
    let (engine, agents) = ring(24);
    let (next_engine, _) = ring(24);
    let server = Server::start(
        engine,
        ServeConfig { workers: 0, queue_capacity: 48, ..Default::default() },
    );
    let config = OpenLoopConfig {
        ticks: 40,
        process: ArrivalProcess::FlashCrowd {
            base: 1.0,
            spike: 10.0,
            start: 8,
            len: 16,
            hot_agents: 4,
            hot_fraction: 0.7,
        },
        ..Default::default()
    };
    // Publish at the middle of the spike window (tick 16).
    let mut published = false;
    let report = run_open_loop_with(&server, &agents, &config, |tick, server| {
        if tick == 16 && !published {
            published = true;
            assert_eq!(server.publish(next_engine.clone()), 2);
        }
    });
    assert!(published, "the hook must have fired mid-spike");
    assert_eq!(report.lost, 0, "a mid-burst publish must lose nothing: {report:?}");
    assert_eq!(server.epoch(), 2);
    // Post-publish traffic is served by the new generation.
    let probe = server.submit(agents[0], 5).unwrap();
    server.drain_step(8, 1, None);
    assert_eq!(probe.try_wait().expect("resolved").unwrap().epoch, 2);
    server.shutdown();
}

/// Under SLO pressure the controller sheds bottom-up: with a deliberately
/// saturated window, Low is pressure-shed while High still rides to its own
/// hard deadline.
#[test]
fn pressure_sheds_low_before_high() {
    let (engine, agents) = ring(8);
    let server = Server::start(
        engine,
        ServeConfig { workers: 0, queue_capacity: 64, ..Default::default() },
    );
    let mut slo = SloController::new(SloConfig {
        target_p99_wait_ticks: 2,
        window: 8,
        ..Default::default()
    });
    // Saturate the observed-wait window far past 2× target.
    for _ in 0..8 {
        slo.record_wait(50);
    }
    slo.update();
    assert_eq!(slo.pressure(), 2);
    let low = server.submit_classed(agents[0], 5, Priority::Low, None).unwrap();
    let high = server.submit_classed(agents[1], 5, Priority::High, None).unwrap();
    server.drain_step(8, 1, Some(&mut slo));
    assert!(
        matches!(low.try_wait(), Some(Err(ServeError::DeadlineExceeded { .. }))),
        "level-2 pressure must shed Low pre-compute"
    );
    assert!(
        high.try_wait().expect("resolved").is_ok(),
        "High is never pressure-shed before its own deadline"
    );
    server.shutdown();
}
