//! Golden comparisons between the observability layer and the pipeline's
//! own diagnostics: the registry must agree with `PipelineTrace`, and the
//! batch worker counters must partition the work exactly.
//!
//! All tests share the process-global registry, so they serialize on a
//! mutex and reset the registry at the start of each critical section.

use std::sync::{Mutex, MutexGuard};

use semrec::core::{recommend_batch, PipelineTrace, Recommender, RecommenderConfig};
use semrec::obs;
use semrec::taxonomy::fixtures::example1;
use semrec::{AgentId, Community};

/// Serializes tests touching the global registry (shared across this
/// binary's test threads).
fn lock() -> MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The engine-test community: alice trusts bob (math) and dave (sci-fi).
fn community() -> (Recommender, Vec<AgentId>) {
    let e = example1();
    let products: Vec<_> = e.catalog.iter().collect();
    let mut c = Community::new(e.fig.taxonomy, e.catalog);
    let alice = c.add_agent("http://ex.org/alice").unwrap();
    let bob = c.add_agent("http://ex.org/bob").unwrap();
    let dave = c.add_agent("http://ex.org/dave").unwrap();
    let eve = c.add_agent("http://ex.org/eve").unwrap();
    c.trust.set_trust(alice, bob, 0.9).unwrap();
    c.trust.set_trust(alice, dave, 0.8).unwrap();
    c.trust.set_trust(eve, alice, 1.0).unwrap();
    c.set_rating(alice, products[1], 1.0).unwrap();
    c.set_rating(bob, products[0], 1.0).unwrap();
    c.set_rating(dave, products[2], 1.0).unwrap();
    c.set_rating(dave, products[3], 0.9).unwrap();
    c.set_rating(eve, products[3], 1.0).unwrap();
    let agents = vec![alice, bob, dave, eve];
    (Recommender::new(c, RecommenderConfig::default()), agents)
}

/// A larger ring community for batch fan-out.
fn ring(n: usize) -> (Recommender, Vec<AgentId>) {
    let e = example1();
    let products: Vec<_> = e.catalog.iter().collect();
    let mut c = Community::new(e.fig.taxonomy, e.catalog);
    let agents: Vec<AgentId> =
        (0..n).map(|i| c.add_agent(format!("http://ex.org/u{i}")).unwrap()).collect();
    for i in 0..n {
        c.trust.set_trust(agents[i], agents[(i + 1) % n], 0.9).unwrap();
        c.set_rating(agents[i], products[i % 4], 1.0).unwrap();
    }
    (Recommender::new(c, RecommenderConfig::default()), agents)
}

#[test]
fn registry_counters_match_pipeline_trace_exactly() {
    let _serial = lock();
    let (recommender, agents) = community();
    obs::global().reset();

    let (_, trace) = recommender.recommend_traced(agents[0], 10).unwrap();

    let snapshot = obs::global().snapshot();
    // The appleseed counters incremented during this single run must agree
    // with the values the trace carried out of the trust metric.
    assert_eq!(snapshot.counters["appleseed.iterations"], trace.trust_iterations as u64);
    assert_eq!(snapshot.counters["appleseed.nodes_explored"], trace.nodes_explored as u64);
    // So must the engine-published mirrors.
    assert_eq!(snapshot.counters["engine.trust_iterations"], trace.trust_iterations as u64);
    assert_eq!(snapshot.counters["engine.nodes_explored"], trace.nodes_explored as u64);
    assert_eq!(snapshot.counters["engine.effective_peers"], trace.effective_peers as u64);
    assert_eq!(snapshot.counters["engine.runs"], 1);

    // The registry view reconstructs the trace of the last (only) run.
    let view = PipelineTrace::from_registry(obs::global());
    assert_eq!(view.neighborhood_size, trace.neighborhood_size);
    assert_eq!(view.trust_iterations, trace.trust_iterations);
    assert_eq!(view.nodes_explored, trace.nodes_explored);
    assert_eq!(view.effective_peers, trace.effective_peers);
}

#[test]
fn batch_worker_counters_sum_to_sequential_total() {
    let _serial = lock();
    let (recommender, agents) = ring(23);

    // Sequential reference run.
    obs::global().reset();
    recommend_batch(&recommender, &agents, 5, 1);
    let sequential_total = obs::global().snapshot().counters["batch.tasks"];
    assert_eq!(sequential_total, agents.len() as u64);

    for threads in [2, 3, 8] {
        obs::global().reset();
        recommend_batch(&recommender, &agents, 5, threads);
        let snapshot = obs::global().snapshot();
        assert_eq!(
            snapshot.counters["batch.tasks"],
            sequential_total,
            "total tasks must not depend on thread count"
        );
        let worker_sum: u64 = snapshot
            .counters
            .iter()
            .filter(|(name, _)| {
                name.starts_with("batch.worker.") && name.ends_with(".tasks")
            })
            .map(|(_, &count)| count)
            .sum();
        assert_eq!(
            worker_sum, sequential_total,
            "per-worker counters must partition the work at {threads} threads"
        );
    }
}

#[test]
fn engine_stage_spans_cover_every_run() {
    let _serial = lock();
    let (recommender, agents) = community();
    obs::global().reset();

    recommender.recommend(agents[0], 5).unwrap();
    recommender.recommend(agents[1], 5).unwrap();

    let snapshot = obs::global().snapshot();
    for stage in [
        "engine.stage.neighborhood",
        "engine.stage.profiles",
        "engine.stage.synthesis",
        "engine.stage.voting",
    ] {
        let histogram = &snapshot.histograms[stage];
        assert_eq!(histogram.count, 2, "{stage} must time both runs");
        assert!(histogram.sum >= 0.0);
    }
    // Similarity was computed once per (target, peer) pair: alice has two
    // peers, bob has none (nobody bob trusts is in the graph).
    assert_eq!(snapshot.counters["profiles.similarity.cosine"], 2);
}

#[test]
fn trace_tree_nests_stages_under_the_run() {
    let _serial = lock();
    let (recommender, agents) = community();
    let _ = obs::take_trace();

    {
        let _run = obs::span("test.run");
        recommender.recommend(agents[0], 5).unwrap();
    }
    let trace = obs::take_trace();
    assert_eq!(trace.roots.len(), 1, "one root span expected");
    let root = &trace.roots[0];
    assert_eq!(root.name, "test.run");
    let stages: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(
        stages,
        ["engine.stage.neighborhood", "engine.stage.profiles", "engine.stage.synthesis",
         "engine.stage.voting"],
        "pipeline stages must nest in execution order"
    );
    // The neighborhood stage itself nests the appleseed run.
    assert_eq!(root.children[0].children[0].name, "appleseed.run");
    let rendered = trace.render_text();
    assert!(rendered.contains("test.run"), "{rendered}");
    assert!(rendered.contains("  engine.stage.voting"), "{rendered}");
}

#[test]
fn observers_see_pipeline_span_events() {
    let _serial = lock();
    let (recommender, agents) = community();
    let ring = std::sync::Arc::new(obs::RingBufferObserver::new(256));
    obs::global().add_observer(ring.clone());

    recommender.recommend(agents[0], 5).unwrap();
    obs::global().clear_observers();

    let names: Vec<String> = ring.events().into_iter().map(|e| e.name).collect();
    assert!(names.iter().any(|n| n == "engine.stage.synthesis"), "{names:?}");
    assert!(names.iter().any(|n| n == "appleseed.run"), "{names:?}");
    let rendered = ring.render_text();
    assert!(rendered.contains("took"), "{rendered}");
}

#[test]
fn serving_metrics_do_not_disturb_engine_goldens() {
    let _serial = lock();
    let (recommender, agents) = community();
    obs::global().reset();

    // The golden reference: one direct traced run.
    let (direct, trace) = recommender.recommend_traced(agents[0], 10).unwrap();

    // Serve the same request through a single-worker, cache-less server.
    // Its serve.* counters land in the same global registry the engine
    // goldens read from — they must not disturb them.
    let server = semrec::serve::Server::start(
        recommender.clone(),
        semrec::serve::ServeConfig { workers: 1, cache_capacity: 0, ..Default::default() },
    );
    let response = server.submit(agents[0], 10).unwrap().wait().unwrap();
    assert_eq!(*response.recommendations, direct, "served must equal direct");
    drop(server);

    let snapshot = obs::global().snapshot();
    assert!(snapshot.counters["serve.requests.served"] >= 1);
    // The serve.* namespace is disjoint from the engine metrics: filtering
    // it away leaves exactly the per-run engine view the goldens compare.
    let engine_view = snapshot.without_prefix("serve.");
    assert!(engine_view.counters.keys().all(|name| !name.starts_with("serve.")));
    assert!(engine_view.histograms.keys().all(|name| !name.starts_with("serve.")));
    assert!(engine_view.counters.keys().any(|name| name.starts_with("engine.")));
    assert_eq!(engine_view.counters["engine.runs"], 2, "direct run + served run");

    // from_registry reconstructs the most recent run — the served one,
    // which targeted the same agent, so the trace values are unchanged.
    let view = PipelineTrace::from_registry(obs::global());
    assert_eq!(view.neighborhood_size, trace.neighborhood_size);
    assert_eq!(view.trust_iterations, trace.trust_iterations);
    assert_eq!(view.nodes_explored, trace.nodes_explored);
    assert_eq!(view.effective_peers, trace.effective_peers);
}

#[test]
fn crawl_and_store_counters_track_a_publish_fetch_cycle() {
    let _serial = lock();
    let (recommender, _) = community();
    let community = recommender.community();
    obs::global().reset();

    let web = semrec::web::store::DocumentWeb::new();
    semrec::web::publish::publish_community(community, &web);
    let seeds = vec!["http://ex.org/alice".to_owned()];
    let result = semrec::web::crawler::crawl(
        &web,
        &seeds,
        &semrec::web::crawler::CrawlConfig::default(),
    );

    let snapshot = obs::global().snapshot();
    assert_eq!(
        snapshot.counters["crawl.fetch.parsed"],
        (result.documents_fetched - result.parse_errors) as u64
    );
    assert_eq!(snapshot.counters["crawl.fetch.missing"], result.missing as u64);
    // Hits and misses are counted separately; together they are the store's
    // total served traffic. (Counters are created lazily, so a crawl without
    // dangling links may never mint `web.store.misses`.)
    let reads = snapshot.counters.get("web.store.reads").copied().unwrap_or(0);
    let misses = snapshot.counters.get("web.store.misses").copied().unwrap_or(0);
    assert_eq!(reads + misses, web.fetch_count());
    assert_eq!(misses, result.missing as u64, "crawl misses are exactly the dangling links");
    assert!(snapshot.counters["web.store.writes"] >= web.len() as u64);
    // Level counters partition the fetch attempts.
    let level_sum: u64 = snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("crawl.level."))
        .map(|(_, &count)| count)
        .sum();
    assert_eq!(
        level_sum,
        (result.documents_fetched + result.missing) as u64,
        "per-level fetches must partition the crawl"
    );
}
