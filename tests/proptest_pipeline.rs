//! Property tests over the full pipeline on randomly shaped communities:
//! output invariants that must hold for *any* trust topology, rating
//! pattern and configuration.

use proptest::prelude::*;
use semrec::core::{Community, Recommender, RecommenderConfig, SynthesisStrategy};
use semrec::taxonomy::fixtures::example1;
use semrec::{AgentId, ProductId};

/// Builds a community over the Example 1 world from generated edge/rating
/// lists (indexes taken modulo the population).
fn build(
    n_agents: usize,
    trust: &[(usize, usize, f64)],
    ratings: &[(usize, usize, f64)],
) -> Community {
    let e = example1();
    let mut c = Community::new(e.fig.taxonomy, e.catalog);
    let agents: Vec<AgentId> = (0..n_agents)
        .map(|i| c.add_agent(format!("http://ex.org/u{i}")).unwrap())
        .collect();
    for &(a, b, w) in trust {
        let (a, b) = (a % n_agents, b % n_agents);
        if a != b {
            c.trust.set_trust(agents[a], agents[b], w).unwrap();
        }
    }
    let m = c.catalog.len();
    for &(a, p, r) in ratings {
        c.set_rating(agents[a % n_agents], ProductId::from_index(p % m), r).unwrap();
    }
    c
}

type World = (usize, Vec<(usize, usize, f64)>, Vec<(usize, usize, f64)>);

fn arb_world() -> impl Strategy<Value = World> {
    (3usize..12).prop_flat_map(|n| {
        (
            Just(n),
            prop::collection::vec((0..n, 0..n, -1.0f64..=1.0), 0..30),
            prop::collection::vec((0..n, 0usize..4, -1.0f64..=1.0), 0..30),
        )
    })
}

fn arb_strategy() -> impl Strategy<Value = SynthesisStrategy> {
    prop_oneof![
        (0.0f64..=1.0).prop_map(|xi| SynthesisStrategy::LinearBlend { xi }),
        Just(SynthesisStrategy::BordaMerge),
        Just(SynthesisStrategy::TrustFilter),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recommendations_never_include_rated_products_and_are_sorted(
        (n, trust, ratings) in arb_world(),
        strategy in arb_strategy(),
    ) {
        let community = build(n, &trust, &ratings);
        let config = RecommenderConfig { synthesis: strategy, ..Default::default() };
        let engine = Recommender::new(community, config);
        for agent in engine.community().agents() {
            let recs = engine.recommend(agent, 10).unwrap();
            // Sorted by descending score.
            prop_assert!(recs.windows(2).all(|w| w[0].score >= w[1].score));
            for rec in &recs {
                prop_assert!(engine.community().rating(agent, rec.product).is_none(),
                    "recommended an already-rated product");
                prop_assert!(rec.voters >= 1);
                prop_assert!(rec.score > 0.0);
            }
        }
    }

    #[test]
    fn recommendations_only_come_from_reachable_peers(
        (n, trust, ratings) in arb_world(),
    ) {
        let community = build(n, &trust, &ratings);
        let engine = Recommender::new(community, RecommenderConfig::default());
        for agent in engine.community().agents() {
            // Positive-trust reachability from the agent.
            let c = engine.community();
            let mut reachable = vec![false; c.agent_count()];
            let mut stack = vec![agent];
            reachable[agent.index()] = true;
            while let Some(v) = stack.pop() {
                for (s, _) in c.trust.positive_out_edges(v) {
                    if !reachable[s.index()] {
                        reachable[s.index()] = true;
                        stack.push(s);
                    }
                }
            }
            // Every recommended product is positively rated by some reachable
            // peer other than the agent.
            for rec in engine.recommend(agent, 10).unwrap() {
                let justified = c.agents().any(|peer| {
                    peer != agent
                        && reachable[peer.index()]
                        && c.rating(peer, rec.product).is_some_and(|r| r > 0.0)
                });
                prop_assert!(justified, "recommendation without a reachable voter");
            }
        }
    }

    #[test]
    fn engine_is_deterministic_for_any_world(
        (n, trust, ratings) in arb_world(),
    ) {
        let a = Recommender::new(build(n, &trust, &ratings), RecommenderConfig::default());
        let b = Recommender::new(build(n, &trust, &ratings), RecommenderConfig::default());
        for agent in a.community().agents() {
            prop_assert_eq!(a.recommend(agent, 5).unwrap(), b.recommend(agent, 5).unwrap());
        }
    }

    #[test]
    fn peer_weights_are_positive_and_exclude_self(
        (n, trust, ratings) in arb_world(),
        strategy in arb_strategy(),
    ) {
        let community = build(n, &trust, &ratings);
        let config = RecommenderConfig { synthesis: strategy, ..Default::default() };
        let engine = Recommender::new(community, config);
        for agent in engine.community().agents() {
            let (weights, trace) = engine.peer_weights(agent).unwrap();
            prop_assert_eq!(weights.len(), trace.effective_peers);
            for &(peer, w) in &weights {
                prop_assert!(peer != agent);
                prop_assert!(w > 0.0 && w.is_finite());
            }
        }
    }
}
