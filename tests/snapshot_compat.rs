//! Cross-version snapshot compatibility: a **committed** v1 snapshot file
//! (`tests/fixtures/snapshot-v1.bin`, written by the frozen per-record
//! format) must keep recovering byte-identically through the dispatching
//! loader, even though live stores now write format v2 — and the first
//! checkpoint after such a recovery upgrades the store to v2 through the
//! same path.
//!
//! Regenerate the fixture (only if the *world construction* below changes,
//! never for format reasons — v1 is frozen) with:
//!
//! ```text
//! cargo test --test snapshot_compat regenerate_v1_fixture -- --ignored
//! ```

use std::path::PathBuf;

use semrec::core::{Recommender, RecommenderConfig};
use semrec::store::{sniff_version, wal_header, Checkpoint, Store, SNAPSHOT_V2, SNAPSHOT_VERSION};
use semrec::taxonomy::fixtures::example1;
use semrec::web::crawler::CommunityBuilder;
use semrec::web::extract::ExtractedAgent;
use semrec::{AgentId, ProductId};

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/snapshot-v1.bin")
}

/// The deterministic six-agent ring world over Example 1 — no RNG, so the
/// fixture captured from it stays reproducible forever.
fn world() -> (Recommender, Vec<ExtractedAgent>) {
    let e = example1();
    let ids: Vec<String> =
        e.catalog.iter().map(|p| e.catalog.product(p).identifier.clone()).collect();
    let view: Vec<ExtractedAgent> = (0..6)
        .map(|i| ExtractedAgent {
            uri: format!("http://ex.org/u{i}"),
            trust: vec![
                (format!("http://ex.org/u{}", (i + 1) % 6), 0.9),
                (format!("http://ex.org/u{}", (i + 3) % 6), -0.4),
            ],
            ratings: vec![
                (ids[i % ids.len()].clone(), 1.0),
                (ids[(i + 1) % ids.len()].clone(), -0.5),
            ],
            knows: vec![format!("http://ex.org/u{}", (i + 1) % 6)],
            see_also: vec![format!("http://ex.org/u{}", (i + 2) % 6)],
        })
        .collect();
    let (community, _) = CommunityBuilder::new(&view).build(e.fig.taxonomy, e.catalog);
    (Recommender::new(community, RecommenderConfig::default()), view)
}

/// Bit-exact fingerprint of every agent's top recommendations.
fn fingerprint(engine: &Recommender) -> Vec<(AgentId, ProductId, u64)> {
    let mut out = Vec::new();
    for a in engine.community().agents() {
        for rec in engine.recommend(a, 10).expect("recommendation succeeds") {
            out.push((a, rec.product, rec.score.to_bits()));
        }
    }
    out
}

/// One-shot fixture writer; `--ignored` only. Kept next to the test so the
/// world definition cannot drift from what the fixture captured.
#[test]
#[ignore]
fn regenerate_v1_fixture() {
    let (engine, view) = world();
    let bytes = Checkpoint::capture(&engine, &view, 1).encode();
    std::fs::create_dir_all(fixture_path().parent().unwrap()).unwrap();
    std::fs::write(fixture_path(), &bytes).unwrap();
    println!("wrote {} bytes to {}", bytes.len(), fixture_path().display());
}

#[test]
fn committed_v1_snapshot_recovers_byte_identically_and_upgrades_to_v2() {
    let bytes = std::fs::read(fixture_path()).expect("committed fixture exists");
    assert_eq!(sniff_version(&bytes), Some(SNAPSHOT_VERSION), "fixture is a v1 frame");

    // Stage the fixture as a store directory: newest snapshot + empty WAL.
    let dir = std::env::temp_dir()
        .join(format!("semrec-snapshot-compat-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let store = Store::open(&dir).expect("store opens");
    std::fs::write(store.snapshot_path(1), &bytes).unwrap();
    std::fs::write(store.wal_path(1), wal_header()).unwrap();

    let (live, view) = world();
    let expected = fingerprint(&live);

    // The dispatching loader takes the v1 branch and lands bit-for-bit on
    // the live model.
    let recovery = store.recover().expect("v1 fixture recovers");
    assert_eq!(recovery.epoch, 1);
    assert_eq!(recovery.replayed, 0);
    assert!(!recovery.degraded());
    assert_eq!(recovery.view, view);
    assert_eq!(fingerprint(&recovery.engine), expected);

    // Checkpointing the recovered node writes format v2; recovery then
    // takes the arena branch and still serves the same bytes.
    store
        .checkpoint(&recovery.engine, &recovery.view, recovery.epoch + 1)
        .expect("checkpoint succeeds");
    let upgraded = std::fs::read(store.snapshot_path(2)).unwrap();
    assert_eq!(sniff_version(&upgraded), Some(SNAPSHOT_V2), "new snapshots are v2");
    let again = store.recover().expect("v2 snapshot recovers");
    assert_eq!(again.epoch, 2);
    assert_eq!(again.view, view);
    assert_eq!(fingerprint(&again.engine), expected);

    std::fs::remove_dir_all(&dir).ok();
}
