//! Sharding equivalence properties (the `semrec-shard` contract):
//!
//! 1. **N=1 byte-identity** — a single-shard [`ShardedModel`] is the
//!    unsharded engine: for any topology, configuration, and target, trust
//!    ranks and recommendation lists are *bit*-identical (scores compared
//!    via `to_bits`), because the sharded pipeline replays the global
//!    floating-point operation order exactly when no boundary exists.
//!
//! 2. **N>1 epsilon-equivalence** — with the node cap lifted (the
//!    per-shard cap is the one deliberate semantic divergence) and a tight
//!    convergence threshold, ranks at 2/4/8 shards match the global
//!    Appleseed within 1e-6, and top-10 recommendation sets agree up to
//!    score ties at the cut-off — the exchange protocol only reassociates
//!    floating-point additions, it never reroutes energy differently.

use proptest::prelude::*;
use semrec::core::{Community, Recommender, RecommenderConfig};
use semrec::shard::{CommunityShardFn, GlobalId, HashShardFn, ShardFn, ShardedModel};
use semrec::taxonomy::fixtures::example1;
use semrec::trust::appleseed::{appleseed, AppleseedParams};
use semrec::trust::neighborhood::NeighborhoodParams;
use semrec::{AgentId, ProductId};
use std::sync::Arc;

fn build(
    n_agents: usize,
    trust: &[(usize, usize, f64)],
    ratings: &[(usize, usize, f64)],
) -> Community {
    let e = example1();
    let mut c = Community::new(e.fig.taxonomy, e.catalog);
    let agents: Vec<AgentId> = (0..n_agents)
        .map(|i| c.add_agent(format!("http://ex.org/u{i}")).unwrap())
        .collect();
    for &(a, b, w) in trust {
        let (a, b) = (a % n_agents, b % n_agents);
        if a != b {
            c.trust.set_trust(agents[a], agents[b], w).unwrap();
        }
    }
    let m = c.catalog.len();
    for &(a, p, r) in ratings {
        c.set_rating(agents[a % n_agents], ProductId::from_index(p % m), r).unwrap();
    }
    c
}

type World = (usize, Vec<(usize, usize, f64)>, Vec<(usize, usize, f64)>);

fn arb_world() -> impl Strategy<Value = World> {
    (4usize..16).prop_flat_map(|n| {
        (
            Just(n),
            prop::collection::vec((0..n, 0..n, 0.05f64..=1.0), 2..40),
            prop::collection::vec((0..n, 0usize..4, -1.0f64..=1.0), 0..40),
        )
    })
}

/// The tightened configuration for cross-shard-count comparisons: no node
/// cap (its per-shard reading is the documented semantic divergence) and a
/// near-fixpoint convergence threshold.
fn tight_config() -> RecommenderConfig {
    RecommenderConfig {
        neighborhood: NeighborhoodParams {
            appleseed: AppleseedParams {
                convergence: 1e-9,
                max_nodes: None,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property 1: one shard, bit-for-bit.
    #[test]
    fn single_shard_is_byte_identical_to_unsharded(
        (n, trust, ratings) in arb_world(),
    ) {
        let community = build(n, &trust, &ratings);
        let config = RecommenderConfig::default();
        let engine = Recommender::new(community.clone(), config);
        let (model, _) =
            ShardedModel::partition(&community, config, Arc::new(HashShardFn), 1, 1);

        for agent in engine.community().agents() {
            let g = GlobalId(agent.index() as u32);
            // Trust metric: identical ranks, order, and iteration count.
            let global = appleseed(
                &engine.community().trust,
                agent,
                &config.neighborhood.appleseed,
            ).unwrap();
            let sharded = model.trust_ranks(g).unwrap();
            prop_assert_eq!(sharded.iterations, global.iterations);
            prop_assert_eq!(sharded.converged, global.converged);
            prop_assert_eq!(sharded.ranks.len(), global.ranks.len());
            for (&(sg, sr), &(ga, gr)) in sharded.ranks.iter().zip(&global.ranks) {
                prop_assert_eq!(sg.index(), ga.index());
                prop_assert_eq!(sr.to_bits(), gr.to_bits());
            }
            // Full pipeline: identical products and bit-identical scores.
            let want = engine.recommend(agent, 10).unwrap();
            let got = model.recommend(g, 10).unwrap();
            prop_assert_eq!(want.len(), got.len());
            for (w, s) in want.iter().zip(&got) {
                prop_assert_eq!(w.product, s.product);
                prop_assert_eq!(w.score.to_bits(), s.score.to_bits());
                prop_assert_eq!(w.voters, s.voters);
            }
        }
    }

    /// Property 2: many shards, epsilon ranks + tie-tolerant top-10 sets.
    #[test]
    fn multi_shard_ranks_match_global_within_epsilon(
        (n, trust, ratings) in arb_world(),
        community_aware in any::<bool>(),
    ) {
        let community = build(n, &trust, &ratings);
        let config = tight_config();
        let engine = Recommender::new(community.clone(), config);

        for shards in [2usize, 4, 8] {
            let shard_fn: Arc<dyn ShardFn> = if community_aware {
                Arc::new(CommunityShardFn::default())
            } else {
                Arc::new(HashShardFn)
            };
            let (model, _) =
                ShardedModel::partition(&community, config, shard_fn, shards, 1);

            for agent in engine.community().agents() {
                let g = GlobalId(agent.index() as u32);
                let global = appleseed(
                    &engine.community().trust,
                    agent,
                    &config.neighborhood.appleseed,
                ).unwrap();
                let sharded = model.trust_ranks(g).unwrap();
                prop_assert_eq!(sharded.ranks.len(), global.ranks.len());
                let mut global_sorted: Vec<(usize, f64)> =
                    global.ranks.iter().map(|&(a, r)| (a.index(), r)).collect();
                global_sorted.sort_by_key(|&(i, _)| i);
                let mut sharded_sorted: Vec<(usize, f64)> =
                    sharded.ranks.iter().map(|&(a, r)| (a.index(), r)).collect();
                sharded_sorted.sort_by_key(|&(i, _)| i);
                for (&(gi, gr), &(si, sr)) in global_sorted.iter().zip(&sharded_sorted) {
                    prop_assert_eq!(gi, si);
                    prop_assert!(
                        (gr - sr).abs() <= 1e-6,
                        "rank of agent {} differs by {} at {} shards",
                        gi, (gr - sr).abs(), shards
                    );
                }

                // Top-10 sets agree modulo ties at the cut-off score.
                let want = engine.recommend(agent, 10).unwrap();
                let got = model.recommend(g, 10).unwrap();
                prop_assert_eq!(want.len(), got.len());
                let cutoff = want.last().map_or(0.0, |r| r.score);
                for (w, s) in want.iter().zip(&got) {
                    if w.product != s.product {
                        // Both sides of a swap must sit at the boundary.
                        prop_assert!(
                            (w.score - cutoff).abs() <= 1e-6 && (s.score - cutoff).abs() <= 1e-6,
                            "top-10 disagreement beyond tie tolerance at {} shards: \
                             {:?}@{} vs {:?}@{}",
                            shards, w.product, w.score, s.product, s.score
                        );
                    } else {
                        prop_assert!((w.score - s.score).abs() <= 1e-6);
                    }
                }
            }
        }
    }
}
