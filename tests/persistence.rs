//! End-to-end guarantees of the persistence layer (`semrec-store`), pinned
//! at the workspace level against the real pipeline:
//!
//! 1. **Warm start ≡ no restart** — a server started from a recovered
//!    model (`Server::start_at` with the persisted epoch) answers
//!    byte-identically to the server that never went down, whatever the
//!    worker count, both on the engine path and the cache path.
//! 2. **Typed corruption handling** — truncation, bit flips, and version
//!    skew on snapshot or WAL files surface as typed `semrec::store::Error`
//!    values, recovery falls back to the previous good generation (bumping
//!    `store.recovery.fallback`), and no mutated input ever panics.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use semrec::core::{Recommender, RecommenderConfig};
use semrec::serve::{ServeConfig, Server};
use semrec::store::{Error, Store};
use semrec::taxonomy::fixtures::example1;
use semrec::web::crawler::{crawl, refresh, CommunityBuilder, CrawlConfig};
use semrec::web::publish::{homepage_turtle, homepage_uri, publish_community};
use semrec::web::store::DocumentWeb;
use semrec::{AgentId, Community};

/// A unique per-test scratch directory (no external tempfile crate).
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("semrec-persistence-{}-{tag}-{n}", std::process::id()))
}

/// A ring community: agent i trusts agents i+1 and i+2 and rates products.
fn ring(n: usize) -> Community {
    let e = example1();
    let products: Vec<_> = e.catalog.iter().collect();
    let mut c = Community::new(e.fig.taxonomy, e.catalog);
    let agents: Vec<AgentId> =
        (0..n).map(|i| c.add_agent(format!("http://ex.org/u{i}")).unwrap()).collect();
    for i in 0..n {
        c.trust.set_trust(agents[i], agents[(i + 1) % n], 0.9).unwrap();
        c.trust.set_trust(agents[i], agents[(i + 2) % n], 0.4).unwrap();
        c.set_rating(agents[i], products[i % products.len()], 1.0).unwrap();
    }
    c
}

/// Everything a live node accumulates: the source world, its document web,
/// the standing builder view, the engine, and a store with one checkpoint
/// plus one WAL record per refresh round.
struct LiveNode {
    engine: Recommender,
    view: Vec<semrec::web::extract::ExtractedAgent>,
    store: Store,
    rounds: usize,
}

/// Bootstraps a crawled node, checkpoints it at epoch 1, then runs
/// `rounds` churn→refresh→append cycles, advancing the live model.
fn live_node(tag: &str, rounds: usize) -> LiveNode {
    let mut source = ring(24);
    let products: Vec<_> = source.catalog.iter().collect();
    let web = DocumentWeb::new();
    publish_community(&source, &web);
    let seeds: Vec<String> =
        source.agents().map(|a| source.agent(a).unwrap().uri.clone()).collect();
    let crawl_config = CrawlConfig::default();
    let mut previous = crawl(&web, &seeds, &crawl_config);
    let mut builder = CommunityBuilder::new(&previous.agents);
    let (community, _) = builder.build(source.taxonomy.clone(), source.catalog.clone());
    let mut engine = Recommender::new(community, RecommenderConfig::default());

    let store = Store::open(scratch(tag)).unwrap();
    store.checkpoint(&engine, builder.agents(), 1).unwrap();

    for round in 0..rounds {
        // Churn: a few agents re-rate a product and republish.
        for k in 0..3 {
            let agent = AgentId::from_index((round * 3 + k) % source.agent_count());
            let product = products[(round + k) % products.len()];
            source.set_rating(agent, product, 0.1 + 0.2 * k as f64).unwrap();
            let uri = source.agent(agent).unwrap().uri.clone();
            web.publish(homepage_uri(&uri), homepage_turtle(&source, agent), "text/turtle");
        }
        let result = refresh(&web, &seeds, &crawl_config, &previous);
        let delta = result.delta.clone().expect("refresh always diffs");
        let health = result.health();
        store.append_delta(&delta, &health).unwrap();

        builder.apply_delta(&delta);
        let (next, _) = builder.build(source.taxonomy.clone(), source.catalog.clone());
        let (advanced, _) = engine.advance(next, &delta.model_delta(), health);
        engine = advanced;
        previous = result;
    }

    LiveNode { engine, view: builder.agents().to_vec(), store, rounds }
}

#[test]
fn warm_started_server_is_byte_identical_to_the_never_restarted_one() {
    let node = live_node("warmstart", 3);
    let panel: Vec<AgentId> = node.engine.community().agents().collect();

    for workers in [1, 4] {
        // The never-restarted node: fresh server on the live engine, moved
        // to the epoch its publish history would have reached (start at 1
        // plus one publish per refresh round).
        let live = Server::start_at(
            node.engine.clone(),
            ServeConfig { workers, ..ServeConfig::default() },
            1 + node.rounds as u64,
        );
        let live_answers: Vec<_> = panel
            .iter()
            .map(|&a| live.submit(a, 10).unwrap().wait().unwrap())
            .collect();

        // The restarted node: recover from disk, serve from the recovered
        // engine at the recovered epoch.
        let recovery = node.store.recover().unwrap();
        assert_eq!(recovery.replayed, node.rounds);
        assert!(!recovery.degraded());
        assert_eq!(recovery.view, node.view);
        assert_eq!(
            recovery.epoch,
            1 + node.rounds as u64,
            "the persisted epoch must match the live publish history"
        );
        let warm = Server::start_at(
            recovery.engine,
            ServeConfig { workers, ..ServeConfig::default() },
            recovery.epoch,
        );
        assert_eq!(warm.epoch(), live.epoch(), "workers {workers}");

        // Engine path: first pass computes every answer.
        let warm_answers: Vec<_> = panel
            .iter()
            .map(|&a| warm.submit(a, 10).unwrap().wait().unwrap())
            .collect();
        for (live_r, warm_r) in live_answers.iter().zip(&warm_answers) {
            assert!(!warm_r.cache_hit, "first pass must exercise the engine");
            assert_eq!(
                live_r.recommendations, warm_r.recommendations,
                "workers {workers}: warm-start answers must be byte-identical"
            );
            assert_eq!(live_r.epoch, warm_r.epoch);
        }

        // Cache path: the same panel again must hit and stay identical.
        let mut hits = 0u64;
        for (&agent, live_r) in panel.iter().zip(&live_answers) {
            let response = warm.submit(agent, 10).unwrap().wait().unwrap();
            hits += response.cache_hit as u64;
            assert_eq!(live_r.recommendations, response.recommendations);
        }
        assert!(hits > 0, "workers {workers}: a warm cache must answer repeats");

        warm.shutdown();
        live.shutdown();
    }
    std::fs::remove_dir_all(node.store.dir()).ok();
}

#[test]
fn snapshot_corruption_falls_back_to_the_previous_generation() {
    let node = live_node("snapcorrupt", 2);
    // A second generation on top, so the newest can be sacrificed.
    node.store.checkpoint(&node.engine, &node.view, 1 + node.rounds as u64).unwrap();
    let newest = node.store.snapshot_path(2);
    let good = std::fs::read(&newest).unwrap();

    let fallback_counter = semrec_obs::counter("store.recovery.fallback");
    let scenarios: Vec<(&str, Vec<u8>)> = vec![
        ("truncated", good[..good.len() / 2].to_vec()),
        ("bit-flipped", {
            let mut b = good.clone();
            let mid = b.len() / 2;
            b[mid] ^= 0x01;
            b
        }),
        ("bad-version", {
            let mut b = good.clone();
            b[8..12].copy_from_slice(&99u32.to_le_bytes());
            b
        }),
        ("bad-magic", {
            let mut b = good.clone();
            b[..8].copy_from_slice(b"XXXXXXXX");
            b
        }),
    ];

    for (name, bytes) in scenarios {
        std::fs::write(&newest, &bytes).unwrap();
        let before = fallback_counter.get();
        let recovery = node.store.recover().unwrap_or_else(|e| {
            panic!("{name}: fallback recovery must succeed, got {e}")
        });
        assert_eq!(recovery.snapshot_seq, 1, "{name}: must fall back to generation 1");
        assert_eq!(recovery.skipped.len(), 1, "{name}");
        assert_eq!(recovery.skipped[0].0, 2, "{name}: the damaged generation is skipped");
        assert!(recovery.degraded(), "{name}");
        assert!(
            fallback_counter.get() > before,
            "{name}: store.recovery.fallback must increment"
        );
        // Generation 1 + its WAL still reconstructs the live model exactly.
        assert_eq!(recovery.replayed, node.rounds, "{name}");
        assert_eq!(recovery.view, node.view, "{name}");
    }

    // The typed error variants match the damage.
    std::fs::write(&newest, &good[..good.len() / 2]).unwrap();
    let r = node.store.recover().unwrap();
    assert!(matches!(r.skipped[0].1, Error::Truncated { .. } | Error::ChecksumMismatch { .. }));
    std::fs::write(&newest, {
        let mut b = good.clone();
        b[..8].copy_from_slice(b"XXXXXXXX");
        b
    })
    .unwrap();
    let r = node.store.recover().unwrap();
    assert!(matches!(r.skipped[0].1, Error::BadMagic { .. }));

    std::fs::remove_dir_all(node.store.dir()).ok();
}

#[test]
fn wal_corruption_degrades_to_the_valid_prefix_or_the_snapshot() {
    let node = live_node("walcorrupt", 3);
    let wal_path = node.store.wal_path(1);
    let good = std::fs::read(&wal_path).unwrap();

    // Torn tail: the valid prefix replays, the tear is typed.
    std::fs::write(&wal_path, &good[..good.len() - 5]).unwrap();
    let recovery = node.store.recover().unwrap();
    assert_eq!(recovery.replayed, node.rounds - 1);
    assert!(matches!(recovery.wal_error, Some(Error::Truncated { .. })));
    assert!(recovery.degraded());

    // Bit flip mid-log: replay stops at the damaged record.
    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x08;
    std::fs::write(&wal_path, &flipped).unwrap();
    let recovery = node.store.recover().unwrap();
    assert!(recovery.replayed < node.rounds);
    assert!(recovery.wal_error.is_some());

    // Header version skew: nothing in the log can be trusted — recovery is
    // snapshot-only and says so.
    let mut versioned = good.clone();
    versioned[8] = 0xAB;
    std::fs::write(&wal_path, &versioned).unwrap();
    let recovery = node.store.recover().unwrap();
    assert_eq!(recovery.replayed, 0);
    assert!(matches!(recovery.wal_error, Some(Error::BadVersion { found: 0xAB, .. })));

    // Restored intact, everything replays again.
    std::fs::write(&wal_path, &good).unwrap();
    let recovery = node.store.recover().unwrap();
    assert_eq!(recovery.replayed, node.rounds);
    assert!(!recovery.degraded());

    std::fs::remove_dir_all(node.store.dir()).ok();
}

#[test]
fn no_single_byte_mutation_of_store_files_panics() {
    let node = live_node("nopanic", 1);
    for path in [node.store.snapshot_path(1), node.store.wal_path(1)] {
        let good = std::fs::read(&path).unwrap();
        // Every truncation point and a stride of bit flips: recover() must
        // come back with a typed result — Ok (possibly degraded) or Err —
        // never a panic.
        for cut in (0..good.len()).step_by(13) {
            std::fs::write(&path, &good[..cut]).unwrap();
            let _ = node.store.recover();
        }
        for i in (0..good.len()).step_by(11) {
            let mut mutated = good.clone();
            mutated[i] ^= 0x02;
            std::fs::write(&path, &mutated).unwrap();
            let _ = node.store.recover();
        }
        std::fs::write(&path, &good).unwrap();
    }
    // Intact again after the gauntlet.
    let recovery = node.store.recover().unwrap();
    assert!(!recovery.degraded());
    std::fs::remove_dir_all(node.store.dir()).ok();
}
