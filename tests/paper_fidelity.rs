//! Cross-crate integration tests pinning the paper's own numbers and claims:
//! Example 1's arithmetic, Figure 1's structure, and the §3.3 similarity
//! story ("high user similarity for users which have not even rated one
//! single product in common").

use semrec::profiles::generation::{descriptor_scores, generate_profile, ProfileParams};
use semrec::profiles::similarity;
use semrec::taxonomy::fixtures::{example1, figure1};
use semrec::taxonomy::TopicId;

#[test]
fn example_1_numbers_through_the_public_api() {
    let e = example1();
    // s = 1000 split over 4 books → 250 per book; Matrix Analysis has 5
    // descriptors → 50 for the Algebra descriptor.
    let ratings: Vec<_> = e.catalog.iter().map(|p| (p, 1.0)).collect();
    let profile =
        generate_profile(&e.fig.taxonomy, &e.catalog, &ratings, &ProfileParams::default());
    assert!((profile.total() - 1000.0).abs() < 1e-6);

    let scores = descriptor_scores(&e.fig.taxonomy, e.fig.algebra, 50.0);
    let by_label: Vec<(&str, f64)> =
        scores.iter().map(|&(t, s)| (e.fig.taxonomy.label(t), s)).collect();
    // Paper: 29.087 / 14.543 / 4.848 / 1.212 / 0.303 (its own rounding).
    let expected = [
        ("Algebra", 29.087),
        ("Pure", 14.543),
        ("Mathematics", 4.848),
        ("Science", 1.212),
        ("Books", 0.303),
    ];
    for ((label, got), (want_label, want)) in by_label.iter().zip(expected) {
        assert_eq!(*label, want_label);
        assert!((got - want).abs() < 0.01, "{label}: {got} vs paper {want}");
    }
}

#[test]
fn figure_1_fragment_has_the_papers_path_and_a_single_top() {
    let f = figure1();
    let t = &f.taxonomy;
    // Exactly one ⊤ with zero indegree.
    assert!(t.parents(TopicId::TOP).is_empty());
    assert_eq!(t.iter().filter(|&id| t.parents(id).is_empty()).count(), 1);
    // The Figure 1 path exists, in order.
    let path = &t.paths_from_top(f.algebra)[0];
    let labels: Vec<_> = path.iter().map(|&p| t.label(p)).collect();
    assert_eq!(labels, vec!["Books", "Science", "Mathematics", "Pure", "Algebra"]);
}

#[test]
fn applied_vs_algebra_readers_are_similar_through_branch_overlap() {
    // §3.3: "suppose a_i reads literature about Applied Mathematics only,
    // and a_j about Algebra, then their computed similarity will be high,
    // considering significant branch overlap from node Mathematics onward."
    let f = figure1();
    let mut catalog = semrec::taxonomy::Catalog::new();
    let applied_book = catalog
        .add_product(&f.taxonomy, "urn:isbn:applied01", "Applied Math Reader", vec![f.applied])
        .unwrap();
    let algebra_book = catalog
        .add_product(&f.taxonomy, "urn:isbn:algebra01", "Algebra Reader", vec![f.algebra])
        .unwrap();
    let fiction_book = catalog
        .add_product(&f.taxonomy, "urn:isbn:fiction01", "Cyberpunk Reader", vec![f.cyberpunk])
        .unwrap();

    let params = ProfileParams::default();
    let a_i = generate_profile(&f.taxonomy, &catalog, &[(applied_book, 1.0)], &params);
    let a_j = generate_profile(&f.taxonomy, &catalog, &[(algebra_book, 1.0)], &params);
    let a_k = generate_profile(&f.taxonomy, &catalog, &[(fiction_book, 1.0)], &params);

    let math_pair = similarity::cosine(&a_i, &a_j).unwrap();
    let cross_pair = similarity::cosine(&a_i, &a_k).unwrap();
    // Most mass stays at the leaves (Eq. 3 discounts upward), so absolute
    // cosine values are small — but the shared Mathematics branch lifts the
    // math pair an order of magnitude above the cross-branch pair.
    assert!(
        math_pair > 10.0 * cross_pair,
        "branch overlap must dominate: {math_pair} vs {cross_pair}"
    );
    assert!(cross_pair > 0.0, "even disjoint branches share ⊤");

    // And they share not a single rated product.
    assert_eq!(
        semrec::profiles::ProductVector::from_ratings(&[(applied_book, 1.0)])
            .co_rated(&semrec::profiles::ProductVector::from_ratings(&[(algebra_book, 1.0)]))
            .len(),
        0
    );
}
