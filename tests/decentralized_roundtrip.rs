//! End-to-end decentralization test: model → published RDF homepages →
//! crawl → reassembled model → identical recommendations.
//!
//! This is the paper's whole §2 environment claim in one test: the
//! recommender needs no central store; everything survives the round trip
//! through distributed machine-readable documents.

use semrec::core::{Recommender, RecommenderConfig};
use semrec::datagen::community::{generate_community, CommunityGenConfig};
use semrec::web::crawler::{assemble_community, crawl, CrawlConfig};
use semrec::web::publish::publish_community;
use semrec::web::store::DocumentWeb;

#[test]
fn crawl_preserves_model_and_recommendations() {
    let generated = generate_community(&CommunityGenConfig::small(99));
    let original = generated.community;

    let web = DocumentWeb::new();
    assert_eq!(publish_community(&original, &web), original.agent_count());

    // Crawl from every agent so the whole community is covered regardless of
    // trust-graph connectivity.
    let seeds: Vec<String> = original
        .agents()
        .map(|a| original.agent(a).unwrap().uri.clone())
        .collect();
    let result = crawl(&web, &seeds, &CrawlConfig::default());
    assert_eq!(result.agents.len(), original.agent_count());
    assert_eq!(result.parse_errors, 0);

    let (rebuilt, stats) =
        assemble_community(&result.agents, original.taxonomy.clone(), original.catalog.clone());
    assert_eq!(stats.agents, original.agent_count());
    assert_eq!(stats.trust_edges, original.trust.edge_count());
    assert_eq!(stats.ratings, original.rating_count());
    assert_eq!(stats.unknown_products, 0);

    // Every statement survived bit-exactly (modulo agent renumbering).
    for agent in original.agents() {
        let uri = &original.agent(agent).unwrap().uri;
        let twin = rebuilt.agent_by_uri(uri).unwrap();
        let mut original_ratings: Vec<_> = original.ratings_of(agent).to_vec();
        let mut twin_ratings: Vec<_> = rebuilt.ratings_of(twin).to_vec();
        original_ratings.sort_by(|a, b| a.partial_cmp(b).unwrap());
        twin_ratings.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(original_ratings, twin_ratings, "ratings differ for {uri}");
        for &(peer, w) in original.trust.out_edges(agent) {
            let peer_uri = &original.agent(peer).unwrap().uri;
            let twin_peer = rebuilt.agent_by_uri(peer_uri).unwrap();
            assert_eq!(rebuilt.trust.trust(twin, twin_peer), Some(w));
        }
    }

    // Recommendations from the crawled view match the original view.
    let original_engine = Recommender::new(original.clone(), RecommenderConfig::default());
    let rebuilt_engine = Recommender::new(rebuilt, RecommenderConfig::default());
    let mut compared = 0;
    for agent in original.agents().take(25) {
        let uri = &original.agent(agent).unwrap().uri;
        let twin = rebuilt_engine.community().agent_by_uri(uri).unwrap();
        let original_recs = original_engine.recommend(agent, 10).unwrap();
        let rebuilt_recs = rebuilt_engine.recommend(twin, 10).unwrap();
        let original_products: Vec<String> = original_recs
            .iter()
            .map(|r| original_engine.community().catalog.product(r.product).identifier.clone())
            .collect();
        let rebuilt_products: Vec<String> = rebuilt_recs
            .iter()
            .map(|r| rebuilt_engine.community().catalog.product(r.product).identifier.clone())
            .collect();
        assert_eq!(original_products, rebuilt_products, "recommendations differ for {uri}");
        compared += 1;
    }
    assert_eq!(compared, 25);
}

#[test]
fn rdfxml_and_turtle_views_are_interchangeable() {
    // §2: "documents encoded in RDF, OWL, or similar formats" — the same
    // community published in 2004-era RDF/XML must crawl into the identical
    // model and identical recommendations.
    let generated = generate_community(&CommunityGenConfig::small(123));
    let community = generated.community;
    let seeds: Vec<String> =
        community.agents().map(|a| community.agent(a).unwrap().uri.clone()).collect();

    let turtle_web = DocumentWeb::new();
    publish_community(&community, &turtle_web);
    let xml_web = DocumentWeb::new();
    semrec::web::publish::publish_community_as(
        &community,
        &xml_web,
        semrec::web::publish::DocumentFormat::RdfXml,
    );

    let from_turtle = crawl(&turtle_web, &seeds, &CrawlConfig::default());
    let from_xml = crawl(&xml_web, &seeds, &CrawlConfig::default());
    assert_eq!(from_xml.parse_errors, 0, "RDF/XML homepages must parse");
    assert_eq!(from_turtle.agents, from_xml.agents);

    let (rebuilt, _) =
        assemble_community(&from_xml.agents, community.taxonomy.clone(), community.catalog.clone());
    let original_engine = Recommender::new(community.clone(), RecommenderConfig::default());
    let xml_engine = Recommender::new(rebuilt, RecommenderConfig::default());
    for agent in community.agents().take(10) {
        let uri = &community.agent(agent).unwrap().uri;
        let twin = xml_engine.community().agent_by_uri(uri).unwrap();
        assert_eq!(
            original_engine.recommend(agent, 10).unwrap().len(),
            xml_engine.recommend(twin, 10).unwrap().len()
        );
    }
}

#[test]
fn updates_propagate_through_republication() {
    // Asynchronous message exchange (§2): an agent updates their homepage;
    // the next crawl sees the new state.
    let generated = generate_community(&CommunityGenConfig::small(17));
    let mut community = generated.community;
    let web = DocumentWeb::new();
    publish_community(&community, &web);

    let agent = community.agents().next().unwrap();
    let product = community
        .catalog
        .iter()
        .find(|&p| community.rating(agent, p).is_none())
        .unwrap();
    community.set_rating(agent, product, 1.0).unwrap();

    // Republishing only this agent's homepage bumps its version.
    let uri = semrec::web::publish::homepage_uri(&community.agent(agent).unwrap().uri);
    let before = web.fetch(&uri).unwrap().version;
    web.publish(&uri, semrec::web::publish::homepage_turtle(&community, agent), "text/turtle");
    assert_eq!(web.fetch(&uri).unwrap().version, before + 1);

    let seeds = vec![community.agent(agent).unwrap().uri.clone()];
    let result = crawl(&web, &seeds, &CrawlConfig { max_range: 0, ..Default::default() });
    let me = result.agents.iter().find(|a| a.uri.ends_with("/0#me")).unwrap();
    let identifier = &community.catalog.product(product).identifier;
    assert!(
        me.ratings.iter().any(|(id, score)| id == identifier && *score == 1.0),
        "the re-crawl must see the new rating"
    );
}
