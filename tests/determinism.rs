//! Determinism regression: for a fixed seed and input, two pipeline runs
//! must produce byte-identical recommendation lists **and** identical
//! counter values. Wall-clock timers (histograms fed by spans) are the one
//! intentionally non-deterministic part of the registry and are excluded.
//!
//! This is the observability layer's determinism contract (see the
//! `semrec-obs` crate docs): counters and gauges record *work done*, which
//! is a pure function of seed + input; histograms record *time*, which is
//! not.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

use semrec::core::{recommend_batch, Recommender, RecommenderConfig};
use semrec::datagen::{generate_community, CommunityGenConfig};
use semrec::obs;
use semrec::web::crawler::{
    assemble_community, crawl_resilient, refresh_resilient, CommunityBuilder, CrawlConfig,
};
use semrec::web::fault::{FaultPlan, FaultyWeb};
use semrec::web::policy::FetchPolicy;
use semrec::web::publish::{homepage_turtle, homepage_uri, publish_community};
use semrec::web::store::DocumentWeb;

/// Serializes tests touching the global registry (shared across this
/// binary's test threads).
fn lock() -> MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One full pipeline pass over a freshly generated seeded community:
/// returns the rendered recommendation lists and the counter map.
fn run_once(seed: u64, threads: usize) -> (String, BTreeMap<String, u64>) {
    let generated = generate_community(&CommunityGenConfig::small(seed));
    let recommender = Recommender::new(generated.community, RecommenderConfig::default());
    let agents: Vec<_> = recommender.community().agents().collect();

    obs::global().reset();
    let batch = recommend_batch(&recommender, &agents, 10, threads);

    // Render with full float precision: byte-identical means bit-identical
    // scores, not merely equal after display rounding.
    let mut rendered = String::new();
    for (agent, result) in agents.iter().zip(&batch) {
        rendered.push_str(&format!("{agent:?}:"));
        for rec in result.as_ref().expect("recommendation succeeds") {
            rendered.push_str(&format!(" {:?}={}", rec.product, rec.score.to_bits()));
        }
        rendered.push('\n');
    }
    (rendered, obs::global().snapshot().counters)
}

#[test]
fn same_seed_same_counters_and_byte_identical_recommendations() {
    let _serial = lock();
    let (recs_a, counters_a) = run_once(42, 4);
    let (recs_b, counters_b) = run_once(42, 4);

    assert!(!recs_a.is_empty());
    assert_eq!(recs_a, recs_b, "recommendation lists must be byte-identical");
    assert!(
        counters_a.contains_key("appleseed.iterations")
            && counters_a.contains_key("batch.tasks"),
        "pipeline counters present: {counters_a:?}"
    );
    assert_eq!(counters_a, counters_b, "counter values must be identical across runs");
}

#[test]
fn thread_count_does_not_change_recommendations_or_work_totals() {
    let _serial = lock();
    let (recs_seq, counters_seq) = run_once(7, 1);
    let (recs_par, counters_par) = run_once(7, 4);

    assert_eq!(recs_seq, recs_par, "parallel batch must match the sequential lists");
    // Work totals (everything except the per-worker task split and the
    // thread gauge) are thread-count invariant.
    let totals = |counters: &BTreeMap<String, u64>| -> BTreeMap<String, u64> {
        counters
            .iter()
            .filter(|(name, _)| !name.starts_with("batch.worker."))
            .map(|(name, &count)| (name.clone(), count))
            .collect()
    };
    assert_eq!(totals(&counters_seq), totals(&counters_par));
}

/// One fault-injected end-to-end pass: publish a seeded community, crawl it
/// through a 30% transient-fault web with retries and breakers, assemble
/// the reachable subset, and recommend for every assembled agent. Returns
/// the rendered recommendations (bit-exact scores), the rendered resilience
/// record (retries, give-ups, breaker transitions), and the counter map.
fn run_faulty(seed: u64, threads: usize) -> (String, String, BTreeMap<String, u64>) {
    let generated = generate_community(&CommunityGenConfig::small(seed));
    let community = generated.community;
    let web = DocumentWeb::new();
    publish_community(&community, &web);
    let mut seeds: Vec<String> =
        community.agents().map(|a| community.agent(a).unwrap().uri.clone()).collect();
    seeds.sort();
    seeds.truncate(3);

    obs::global().reset();
    let faulty = FaultyWeb::new(&web, FaultPlan::transient(0.3, seed));
    let (result, breaker) = crawl_resilient(
        &faulty,
        &seeds,
        &CrawlConfig { threads, ..Default::default() },
        &FetchPolicy::default(),
    );
    let resilience = format!(
        "retries={} gave_up={} unreachable={} corrupted={} ticks={} transitions={:?} opened={}",
        result.retries,
        result.gave_up,
        result.unreachable,
        result.corrupted,
        result.ticks,
        result.breaker_transitions,
        breaker.times_opened(),
    );

    let (rebuilt, _) =
        assemble_community(&result.agents, community.taxonomy.clone(), community.catalog.clone());
    let recommender = Recommender::new(rebuilt, RecommenderConfig::default())
        .with_source_health(result.health());
    let agents: Vec<_> = recommender.community().agents().collect();
    let batch = recommend_batch(&recommender, &agents, 10, threads);

    let mut rendered = String::new();
    for (agent, result) in agents.iter().zip(&batch) {
        rendered.push_str(&format!("{agent:?}:"));
        for rec in result.as_ref().expect("recommendation succeeds") {
            rendered.push_str(&format!(" {:?}={}", rec.product, rec.score.to_bits()));
        }
        rendered.push('\n');
    }
    (rendered, resilience, obs::global().snapshot().counters)
}

#[test]
fn fault_injected_runs_are_byte_identical_across_runs() {
    let _serial = lock();
    let (recs_a, res_a, counters_a) = run_faulty(42, 4);
    let (recs_b, res_b, counters_b) = run_faulty(42, 4);

    assert!(!recs_a.is_empty());
    assert_eq!(recs_a, recs_b, "degraded recommendations must be byte-identical");
    assert_eq!(res_a, res_b, "retry counts and breaker transitions must be identical");
    assert!(
        counters_a.get("crawl.fetch.retry").copied().unwrap_or(0) > 0,
        "a 30% fault plan must force retries: {counters_a:?}"
    );
    assert_eq!(counters_a, counters_b, "counter values must be identical across runs");
}

#[test]
fn fault_injection_is_thread_count_invariant() {
    let _serial = lock();
    let (recs_seq, res_seq, counters_seq) = run_faulty(7, 1);
    let (recs_par, res_par, counters_par) = run_faulty(7, 4);

    assert_eq!(recs_seq, recs_par, "thread count must not change degraded recommendations");
    assert_eq!(res_seq, res_par, "thread count must not change the resilience record");
    let totals = |counters: &BTreeMap<String, u64>| -> BTreeMap<String, u64> {
        counters
            .iter()
            .filter(|(name, _)| !name.starts_with("batch.worker."))
            .map(|(name, &count)| (name.clone(), count))
            .collect()
    };
    assert_eq!(totals(&counters_seq), totals(&counters_par));
}

/// One fault-injected *incremental* pass: crawl through a transient-fault
/// web, apply one deterministic churn round, refresh through the same
/// faulty web, and advance the model along the delta path
/// (`CommunityBuilder::apply_delta` + `Recommender::advance`). Returns the
/// rendered recommendations (bit-exact scores), the rendered advance
/// record, and the counter map — all of which must be invariant across
/// runs and thread counts.
fn run_incremental(seed: u64, threads: usize) -> (String, String, BTreeMap<String, u64>) {
    let generated = generate_community(&CommunityGenConfig::small(seed));
    let mut community = generated.community;
    let web = DocumentWeb::new();
    publish_community(&community, &web);
    let seeds: Vec<String> =
        community.agents().map(|a| community.agent(a).unwrap().uri.clone()).collect();

    obs::global().reset();
    let faulty = FaultyWeb::new(&web, FaultPlan::transient(0.3, seed));
    let config = CrawlConfig { threads, ..Default::default() };
    let policy = FetchPolicy::default();
    let (first, mut breaker) = crawl_resilient(&faulty, &seeds, &config, &policy);
    let (initial, _) =
        assemble_community(&first.agents, community.taxonomy.clone(), community.catalog.clone());
    let engine = Recommender::new(initial, RecommenderConfig::default())
        .with_source_health(first.health());

    // Deterministic churn: the first five agents re-rate one product each
    // and republish; everything else stays untouched.
    let products: Vec<_> = community.catalog.iter().collect();
    for (k, agent) in community.agents().take(5).enumerate() {
        community.set_rating(agent, products[k % products.len()], 0.5).expect("valid rating");
        let uri = community.agent(agent).unwrap().uri.clone();
        web.publish(homepage_uri(&uri), homepage_turtle(&community, agent), "text/turtle");
    }

    let second = refresh_resilient(&faulty, &seeds, &config, &policy, &mut breaker, &first);
    let delta = second.delta.clone().expect("refresh always diffs");
    let mut builder = CommunityBuilder::new(&first.agents);
    builder.apply_delta(&delta);
    let (next, _) = builder.build(community.taxonomy.clone(), community.catalog.clone());
    let (advanced, stats) = engine.advance(next, &delta.model_delta(), second.health());
    let record = format!(
        "touched={} reused={} recomputed={} retries={} ticks={}",
        delta.touched(),
        stats.reused,
        stats.recomputed,
        second.retries,
        second.ticks,
    );

    let agents: Vec<_> = advanced.community().agents().collect();
    let batch = recommend_batch(&advanced, &agents, 10, threads);
    let mut rendered = String::new();
    for (agent, result) in agents.iter().zip(&batch) {
        rendered.push_str(&format!("{agent:?}:"));
        for rec in result.as_ref().expect("recommendation succeeds") {
            rendered.push_str(&format!(" {:?}={}", rec.product, rec.score.to_bits()));
        }
        rendered.push('\n');
    }
    (rendered, record, obs::global().snapshot().counters)
}

#[test]
fn incremental_refresh_after_faults_is_byte_identical_across_runs() {
    let _serial = lock();
    let (recs_a, rec_a, counters_a) = run_incremental(42, 4);
    let (recs_b, rec_b, counters_b) = run_incremental(42, 4);

    assert!(!recs_a.is_empty());
    assert_eq!(recs_a, recs_b, "incremental recommendations must be byte-identical");
    assert_eq!(rec_a, rec_b, "the advance record must be identical");
    assert!(
        counters_a.get("refresh.delta.changed").copied().unwrap_or(0) > 0,
        "the churn round must register as changed agents: {counters_a:?}"
    );
    assert!(
        counters_a.get("model.profiles.reused").copied().unwrap_or(0) > 0,
        "untouched agents must reuse their profiles: {counters_a:?}"
    );
    assert_eq!(counters_a, counters_b, "counter values must be identical across runs");
}

#[test]
fn incremental_refresh_is_thread_count_invariant() {
    let _serial = lock();
    let (recs_seq, rec_seq, counters_seq) = run_incremental(7, 1);
    let (recs_par, rec_par, counters_par) = run_incremental(7, 4);

    assert_eq!(recs_seq, recs_par, "thread count must not change incremental recommendations");
    assert_eq!(rec_seq, rec_par, "thread count must not change the advance record");
    let totals = |counters: &BTreeMap<String, u64>| -> BTreeMap<String, u64> {
        counters
            .iter()
            .filter(|(name, _)| !name.starts_with("batch.worker."))
            .map(|(name, &count)| (name.clone(), count))
            .collect()
    };
    assert_eq!(totals(&counters_seq), totals(&counters_par));
}

/// One fault-injected checkpoint→restart→resume pass: crawl through a
/// transient-fault web, checkpoint the model, run one deterministic churn
/// round through the same faulty web appending the delta to the WAL, then
/// *recover from disk* and recommend from the recovered engine. Returns
/// the rendered recommendations (bit-exact scores), the rendered recovery
/// record, and the counter map including the `store.*` namespace — all of
/// which must be invariant across runs and thread counts.
fn run_checkpointed(seed: u64, threads: usize) -> (String, String, BTreeMap<String, u64>) {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let scratch = std::env::temp_dir().join(format!(
        "semrec-determinism-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));

    let generated = generate_community(&CommunityGenConfig::small(seed));
    let mut community = generated.community;
    let web = DocumentWeb::new();
    publish_community(&community, &web);
    let seeds: Vec<String> =
        community.agents().map(|a| community.agent(a).unwrap().uri.clone()).collect();

    obs::global().reset();
    let faulty = FaultyWeb::new(&web, FaultPlan::transient(0.3, seed));
    let config = CrawlConfig { threads, ..Default::default() };
    let policy = FetchPolicy::default();
    let (first, mut breaker) = crawl_resilient(&faulty, &seeds, &config, &policy);
    let builder = CommunityBuilder::new(&first.agents);
    let (initial, _) =
        builder.build(community.taxonomy.clone(), community.catalog.clone());
    let engine = Recommender::new(initial, RecommenderConfig::default())
        .with_source_health(first.health());

    let store = semrec::store::Store::open(&scratch).expect("scratch store opens");
    store.checkpoint(&engine, builder.agents(), 1).expect("checkpoint succeeds");

    // Deterministic churn, as in `run_incremental`.
    let products: Vec<_> = community.catalog.iter().collect();
    for (k, agent) in community.agents().take(5).enumerate() {
        community.set_rating(agent, products[k % products.len()], 0.5).expect("valid rating");
        let uri = community.agent(agent).unwrap().uri.clone();
        web.publish(homepage_uri(&uri), homepage_turtle(&community, agent), "text/turtle");
    }
    let second = refresh_resilient(&faulty, &seeds, &config, &policy, &mut breaker, &first);
    let delta = second.delta.clone().expect("refresh always diffs");
    store.append_delta(&delta, &second.health()).expect("append succeeds");

    // Restart: everything below this line uses only what's on disk.
    let recovery = store.recover().expect("recovery succeeds");
    let record = format!(
        "touched={} replayed={} epoch={} snapshot_seq={} degraded={}",
        delta.touched(),
        recovery.replayed,
        recovery.epoch,
        recovery.snapshot_seq,
        recovery.degraded(),
    );

    let agents: Vec<_> = recovery.engine.community().agents().collect();
    let batch = recommend_batch(&recovery.engine, &agents, 10, threads);
    let mut rendered = String::new();
    for (agent, result) in agents.iter().zip(&batch) {
        rendered.push_str(&format!("{agent:?}:"));
        for rec in result.as_ref().expect("recommendation succeeds") {
            rendered.push_str(&format!(" {:?}={}", rec.product, rec.score.to_bits()));
        }
        rendered.push('\n');
    }
    let counters = obs::global().snapshot().counters;
    std::fs::remove_dir_all(&scratch).ok();
    (rendered, record, counters)
}

#[test]
fn checkpoint_restart_resume_is_byte_identical_across_runs() {
    let _serial = lock();
    let (recs_a, rec_a, counters_a) = run_checkpointed(42, 4);
    let (recs_b, rec_b, counters_b) = run_checkpointed(42, 4);

    assert!(!recs_a.is_empty());
    assert_eq!(recs_a, recs_b, "recovered recommendations must be byte-identical");
    assert_eq!(rec_a, rec_b, "the recovery record must be identical");
    assert!(
        counters_a.get("store.snapshot.write").copied().unwrap_or(0) > 0
            && counters_a.get("store.snapshot.load").copied().unwrap_or(0) > 0
            && counters_a.get("store.wal.appended").copied().unwrap_or(0) > 0
            && counters_a.get("store.wal.replayed").copied().unwrap_or(0) > 0,
        "the store namespace must register the full cycle: {counters_a:?}"
    );
    assert_eq!(
        counters_a, counters_b,
        "counter values (including store.*) must be identical across runs"
    );
}

#[test]
fn checkpoint_restart_resume_is_thread_count_invariant() {
    let _serial = lock();
    let (recs_seq, rec_seq, counters_seq) = run_checkpointed(7, 1);
    let (recs_par, rec_par, counters_par) = run_checkpointed(7, 4);

    assert_eq!(recs_seq, recs_par, "thread count must not change recovered recommendations");
    assert_eq!(rec_seq, rec_par, "thread count must not change the recovery record");
    let totals = |counters: &BTreeMap<String, u64>| -> BTreeMap<String, u64> {
        counters
            .iter()
            .filter(|(name, _)| !name.starts_with("batch.worker."))
            .map(|(name, &count)| (name.clone(), count))
            .collect()
    };
    assert_eq!(totals(&counters_seq), totals(&counters_par));
}

/// One open-loop SLO-controlled serving run in lockstep mode: a flash-crowd
/// trace against a seeded community, with deadline shedding, the pressure
/// controller and the autoscaler all active. Returns the rendered per-class
/// outcome (counts and exact tick percentiles) and the counter map —
/// including every `serve.slo.*` / `serve.class.*` / `serve.workers.*`
/// counter, all of which must be invariant across runs and compute thread
/// counts.
fn run_open_loop_slo(seed: u64, threads: usize) -> (String, BTreeMap<String, u64>) {
    use semrec::serve::{
        run_open_loop, ArrivalProcess, OpenLoopConfig, Priority, ScalerConfig, ServeConfig,
        Server,
    };

    let generated = generate_community(&CommunityGenConfig::small(seed));
    let recommender = Recommender::new(generated.community, RecommenderConfig::default());
    let agents: Vec<_> = recommender.community().agents().collect();

    obs::global().reset();
    let server = Server::start(
        recommender,
        ServeConfig { workers: 0, queue_capacity: 256, ..Default::default() },
    );
    // A deep queue and a capped pool: the spike outruns the drain, waits
    // climb past the deadline budgets, and the SLO machinery has to act.
    let config = OpenLoopConfig {
        ticks: 80,
        process: ArrivalProcess::FlashCrowd {
            base: 2.0,
            spike: 32.0,
            start: 25,
            len: 30,
            hot_agents: 6,
            hot_fraction: 0.7,
        },
        seed,
        class_mix: [0.2, 0.5, 0.3],
        threads,
        scaler: ScalerConfig { max_workers: 4, ..Default::default() },
        ..Default::default()
    };
    let report = run_open_loop(&server, &agents, &config);
    server.shutdown();

    let mut rendered = String::new();
    for class in Priority::ALL {
        let s = report.class.get(class);
        rendered.push_str(&format!(
            "{class}: offered={} admitted={} served={} goodput={} shed_adm={} displaced={} \
             shed_dl={} p50={} p95={} p99={}\n",
            s.offered,
            s.admitted,
            s.served,
            s.goodput,
            s.shed_admission,
            s.displaced,
            s.shed_deadline,
            s.wait_p50,
            s.wait_p95,
            s.wait_p99,
        ));
    }
    rendered.push_str(&format!(
        "ticks={} scale_events={} peak_workers={} lost={}\n",
        report.ticks_run, report.scale_events, report.peak_workers, report.lost
    ));
    (rendered, obs::global().snapshot().counters)
}

#[test]
fn open_loop_slo_run_is_byte_identical_across_runs_and_threads() {
    let _serial = lock();
    let (report_a, counters_a) = run_open_loop_slo(42, 1);
    let (report_b, counters_b) = run_open_loop_slo(42, 1);
    let (report_c, counters_c) = run_open_loop_slo(42, 2);
    let (report_d, counters_d) = run_open_loop_slo(42, 8);

    assert!(!report_a.is_empty());
    assert_eq!(report_a, report_b, "same seed, same threads: identical runs");
    assert_eq!(report_a, report_c, "2 compute threads must not change the outcome");
    assert_eq!(report_a, report_d, "8 compute threads must not change the outcome");
    // The trace must actually exercise the SLO machinery, or the
    // determinism claim is vacuous.
    for required in [
        "serve.slo.violations",
        "serve.workers.scale_events",
        "serve.class.high.served",
        "serve.class.normal.served",
        "serve.class.low.served",
    ] {
        assert!(
            counters_a.get(required).copied().unwrap_or(0) > 0,
            "flash crowd must drive {required}: {counters_a:?}"
        );
    }
    assert_eq!(counters_a, counters_b, "counters identical across runs");
    assert_eq!(counters_a, counters_c, "counters identical at 2 threads");
    assert_eq!(counters_a, counters_d, "counters identical at 8 threads");
}

/// One full sharded pass: partition a seeded community into 4 shards,
/// batch-serve every agent through the cross-shard protocol, apply one
/// deterministic churn round via the sharded `advance`, and batch-serve
/// again. Returns the rendered recommendation lists (bit-exact scores),
/// the rendered advance record, and the counter map — including the whole
/// `shard.*` namespace, all of which must be invariant across runs,
/// compute thread counts, and shard scheduling order.
fn run_sharded(
    seed: u64,
    threads: usize,
    reverse_schedule: bool,
) -> (String, String, BTreeMap<String, u64>) {
    use std::sync::Arc;

    use semrec::core::ModelDelta;
    use semrec::shard::{GlobalId, HashShardFn, ShardedModel};

    let shards = 4usize;
    let generated = generate_community(&CommunityGenConfig::small(seed));
    let community = generated.community;

    obs::global().reset();
    let (model, build) = ShardedModel::partition(
        &community,
        RecommenderConfig::default(),
        Arc::new(HashShardFn),
        shards,
        threads,
    );
    let model = if reverse_schedule {
        model.with_schedule((0..shards).rev().collect())
    } else {
        model
    };
    let targets: Vec<GlobalId> =
        (0..model.agent_count()).map(|i| GlobalId(i as u32)).collect();

    let render = |batch: &[semrec::core::Result<Vec<semrec::Recommendation>>]| {
        let mut rendered = String::new();
        for (g, result) in targets.iter().zip(batch) {
            rendered.push_str(&format!("{g:?}:"));
            for rec in result.as_ref().expect("recommendation succeeds") {
                rendered.push_str(&format!(" {:?}={}", rec.product, rec.score.to_bits()));
            }
            rendered.push('\n');
        }
        rendered
    };
    let mut rendered = render(&model.recommend_batch(&targets, 10));

    // Deterministic churn, localized to shard 0 so clean shards exist: the
    // first five shard-0 agents re-rate one product each.
    let products: Vec<_> = community.catalog.iter().collect();
    let mut next = community.clone();
    let mut uris = Vec::new();
    let churned = community
        .agents()
        .filter(|a| model.directory().shard_of(GlobalId(a.index() as u32)) == 0)
        .take(5);
    for (k, agent) in churned.enumerate() {
        next.set_rating(agent, products[k % products.len()], 0.5).expect("valid rating");
        uris.push(community.agent(agent).expect("dense id").uri.clone());
    }
    let (advanced, report) =
        model.advance(&next, &ModelDelta { ratings_changed: uris, trust_changed: Vec::new() });
    let record = format!(
        "sizes={:?} wholesale={} rebuilt={:?} serve_dirty={:?} recomputed={} reused={}",
        build.sizes,
        report.wholesale,
        report.rebuilt,
        report.serve_dirty,
        report.profiles_recomputed,
        report.profiles_reused,
    );
    rendered.push_str(&render(&advanced.recommend_batch(&targets, 10)));
    (rendered, record, obs::global().snapshot().counters)
}

#[test]
fn sharded_pipeline_is_byte_identical_across_runs() {
    let _serial = lock();
    let (recs_a, rec_a, counters_a) = run_sharded(42, 4, false);
    let (recs_b, rec_b, counters_b) = run_sharded(42, 4, false);

    assert!(!recs_a.is_empty());
    assert_eq!(recs_a, recs_b, "sharded recommendations must be byte-identical");
    assert_eq!(rec_a, rec_b, "the sharded advance record must be identical");
    assert!(
        counters_a.get("shard.appleseed.runs").copied().unwrap_or(0) > 0
            && counters_a.get("shard.exchange.rounds").copied().unwrap_or(0) > 0,
        "serving at 4 shards must cross boundaries: {counters_a:?}"
    );
    assert!(
        counters_a.get("shard.advance.shards_clean").copied().unwrap_or(0) > 0,
        "a five-agent churn must leave shards untouched: {counters_a:?}"
    );
    assert_eq!(
        counters_a, counters_b,
        "counter values (including shard.*) must be identical across runs"
    );
}

#[test]
fn sharded_pipeline_is_thread_count_invariant() {
    let _serial = lock();
    let (recs_1, rec_1, counters_1) = run_sharded(7, 1, false);
    let (recs_2, rec_2, counters_2) = run_sharded(7, 2, false);
    let (recs_8, rec_8, counters_8) = run_sharded(7, 8, false);

    assert_eq!(recs_1, recs_2, "2 compute threads must not change sharded output");
    assert_eq!(recs_1, recs_8, "8 compute threads must not change sharded output");
    assert_eq!(rec_1, rec_2);
    assert_eq!(rec_1, rec_8);
    assert_eq!(counters_1, counters_2, "counters identical at 2 threads");
    assert_eq!(counters_1, counters_8, "counters identical at 8 threads");
}

#[test]
fn sharded_pipeline_is_schedule_order_invariant() {
    let _serial = lock();
    let (recs_fwd, rec_fwd, counters_fwd) = run_sharded(7, 4, false);
    let (recs_rev, rec_rev, counters_rev) = run_sharded(7, 4, true);

    assert_eq!(
        recs_fwd, recs_rev,
        "reversed shard scheduling must not change recommendations"
    );
    assert_eq!(rec_fwd, rec_rev, "reversed scheduling must not change the advance record");
    assert_eq!(counters_fwd, counters_rev, "reversed scheduling must not change counters");
}

#[test]
fn different_seeds_diverge() {
    let _serial = lock();
    // Sanity check that the regression above is not vacuous: a different
    // seed produces different work.
    let (recs_a, _) = run_once(42, 4);
    let (recs_c, _) = run_once(43, 4);
    assert_ne!(recs_a, recs_c, "different seeds should give different lists");
}
