//! Incremental-equivalence property: for *any* random community and *any*
//! random republish sequence, the delta path (refresh → typed `CrawlDelta`
//! → `CommunityBuilder::apply_delta` → `Recommender::advance`) must land on
//! exactly the state a from-scratch pipeline (full crawl → assemble → build
//! every profile) computes — identical communities, identical bit-level
//! recommendation scores — and the `SwapPlan` dirty set must cover every
//! agent whose recommendations actually changed.

use proptest::prelude::*;
use semrec::core::{Community, Recommender, RecommenderConfig, SwapPlan};
use semrec::taxonomy::fixtures::example1;
use semrec::web::crawler::{assemble_community, crawl, refresh, CommunityBuilder, CrawlConfig};
use semrec::web::publish::{homepage_turtle, homepage_uri, publish_community};
use semrec::web::store::DocumentWeb;
use semrec::{AgentId, ProductId};

/// Builds a community over the Example 1 world from generated edge/rating
/// lists (indexes taken modulo the population).
fn build(
    n_agents: usize,
    trust: &[(usize, usize, f64)],
    ratings: &[(usize, usize, f64)],
) -> Community {
    let e = example1();
    let mut c = Community::new(e.fig.taxonomy, e.catalog);
    let agents: Vec<AgentId> = (0..n_agents)
        .map(|i| c.add_agent(format!("http://ex.org/u{i}")).unwrap())
        .collect();
    for &(a, b, w) in trust {
        let (a, b) = (a % n_agents, b % n_agents);
        if a != b {
            c.trust.set_trust(agents[a], agents[b], w).unwrap();
        }
    }
    let m = c.catalog.len();
    for &(a, p, r) in ratings {
        c.set_rating(agents[a % n_agents], ProductId::from_index(p % m), r).unwrap();
    }
    c
}

/// One republish operation against the source community. Indexes are taken
/// modulo the current population / catalog inside `apply`.
#[derive(Clone, Debug)]
enum Op {
    SetRating(usize, usize, f64),
    RemoveRating(usize, usize),
    SetTrust(usize, usize, f64),
    RemoveTrust(usize, usize),
    AddAgent(usize, f64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..16, 0usize..4, -1.0f64..=1.0).prop_map(|(a, p, r)| Op::SetRating(a, p, r)),
        (0usize..16, 0usize..4).prop_map(|(a, p)| Op::RemoveRating(a, p)),
        (0usize..16, 0usize..16, -1.0f64..=1.0).prop_map(|(a, b, w)| Op::SetTrust(a, b, w)),
        (0usize..16, 0usize..16).prop_map(|(a, b)| Op::RemoveTrust(a, b)),
        (0usize..16, 0.1f64..=1.0).prop_map(|(a, w)| Op::AddAgent(a, w)),
    ]
}

/// Applies one op to the source community and returns the agents whose
/// homepages it (possibly) changed, so the caller can republish exactly
/// those documents — the realistic churn pattern the refresh crawler sees.
fn apply(source: &mut Community, op: &Op, extra: &mut usize) -> Vec<AgentId> {
    let n = source.agent_count();
    let m = source.catalog.len();
    match *op {
        Op::SetRating(a, p, r) => {
            let a = AgentId::from_index(a % n);
            source.set_rating(a, ProductId::from_index(p % m), r).unwrap();
            vec![a]
        }
        Op::RemoveRating(a, p) => {
            let a = AgentId::from_index(a % n);
            source.remove_rating(a, ProductId::from_index(p % m));
            vec![a]
        }
        Op::SetTrust(a, b, w) => {
            let (a, b) = (AgentId::from_index(a % n), AgentId::from_index(b % n));
            if a == b {
                return Vec::new();
            }
            source.trust.set_trust(a, b, w).unwrap();
            vec![a]
        }
        Op::RemoveTrust(a, b) => {
            let (a, b) = (AgentId::from_index(a % n), AgentId::from_index(b % n));
            source.trust.remove_trust(a, b);
            vec![a]
        }
        Op::AddAgent(a, w) => {
            let truster = AgentId::from_index(a % n);
            *extra += 1;
            let added = source.add_agent(format!("http://ex.org/extra{extra}")).unwrap();
            source.trust.set_trust(truster, added, w).unwrap();
            // The new homepage plus the truster's changed trust section.
            vec![truster, added]
        }
    }
}

/// Renders a community byte-for-byte: URIs in id order, trust weights and
/// rating values down to the bit.
fn render(c: &Community) -> String {
    let mut out = String::new();
    for agent in c.agents() {
        out.push_str(&c.agent(agent).unwrap().uri);
        out.push(':');
        for &(t, w) in c.trust.out_edges(agent) {
            out.push_str(&format!(" t{}={}", t.index(), w.to_bits()));
        }
        for &(p, r) in c.ratings_of(agent) {
            out.push_str(&format!(" r{}={}", p.index(), r.to_bits()));
        }
        out.push('\n');
    }
    out
}

type World = (usize, Vec<(usize, usize, f64)>, Vec<(usize, usize, f64)>);

fn arb_world() -> impl Strategy<Value = World> {
    (3usize..10).prop_flat_map(|n| {
        (
            Just(n),
            prop::collection::vec((0..n, 0..n, -1.0f64..=1.0), 0..24),
            prop::collection::vec((0..n, 0usize..4, -1.0f64..=1.0), 0..24),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn incremental_path_is_byte_identical_to_from_scratch(
        (n, trust, ratings) in arb_world(),
        ops in prop::collection::vec(arb_op(), 1..10),
    ) {
        let mut source = build(n, &trust, &ratings);
        let web = DocumentWeb::new();
        publish_community(&source, &web);
        let seeds: Vec<String> =
            source.agents().map(|a| source.agent(a).unwrap().uri.clone()).collect();
        let config = CrawlConfig::default();
        let first = crawl(&web, &seeds, &config);

        let mut builder = CommunityBuilder::new(&first.agents);
        let (initial, _) =
            builder.build(source.taxonomy.clone(), source.catalog.clone());
        let engine = Recommender::new(initial, RecommenderConfig::default());
        let old_recs: Vec<(String, String)> = engine
            .community()
            .agents()
            .map(|a| {
                let mut bits = String::new();
                for rec in engine.recommend(a, 10).unwrap() {
                    bits.push_str(&format!(" {:?}={}", rec.product, rec.score.to_bits()));
                }
                (engine.community().agent(a).unwrap().uri.clone(), bits)
            })
            .collect();

        // Random republish sequence: mutate the source, republish exactly
        // the touched homepages, refresh.
        let mut extra = 0usize;
        for op in &ops {
            for agent in apply(&mut source, op, &mut extra) {
                let uri = source.agent(agent).unwrap().uri.clone();
                web.publish(homepage_uri(&uri), homepage_turtle(&source, agent), "text/turtle");
            }
        }
        let second = refresh(&web, &seeds, &config, &first);
        let delta = second.delta.clone().expect("refresh always diffs");
        let model_delta = delta.model_delta();

        // Incremental path.
        builder.apply_delta(&delta);
        let (next, _) = builder.build(source.taxonomy.clone(), source.catalog.clone());
        let (advanced, stats) = engine.advance(next, &model_delta, second.health());

        // From-scratch path over the same crawl result.
        let (scratch_community, _) = assemble_community(
            &second.agents,
            source.taxonomy.clone(),
            source.catalog.clone(),
        );
        let scratch = Recommender::new(scratch_community, RecommenderConfig::default());

        // Communities byte-identical: same numbering, same bits.
        prop_assert_eq!(render(advanced.community()), render(scratch.community()));
        prop_assert_eq!(
            stats.reused + stats.recomputed,
            advanced.community().agent_count(),
            "profile accounting must close"
        );

        // Top-10 recommendations bit-identical for every agent.
        let plan = SwapPlan::compute(
            engine.community(),
            advanced.community(),
            &model_delta,
            engine.config().neighborhood.appleseed.max_range,
            SwapPlan::DEFAULT_MAX_DIRTY_FRACTION,
        );
        for agent in advanced.community().agents() {
            let a = advanced.recommend(agent, 10).unwrap();
            let b = scratch.recommend(agent, 10).unwrap();
            prop_assert_eq!(&a, &b, "incremental and scratch recs must agree");

            // Dirty-set soundness: any agent whose recommendations moved
            // must be in the plan's dirty set (so its cache entry is never
            // carried).
            let uri = &advanced.community().agent(agent).unwrap().uri;
            let mut bits = String::new();
            for rec in &a {
                bits.push_str(&format!(" {:?}={}", rec.product, rec.score.to_bits()));
            }
            let before = old_recs.iter().find(|(u, _)| u == uri);
            let changed = match before {
                Some((_, old_bits)) => *old_bits != bits,
                None => true, // new agent: no prior answer to carry
            };
            if changed {
                prop_assert!(
                    plan.is_dirty(agent),
                    "agent {uri} changed answers but the plan marked it clean"
                );
            }
        }
    }
}
