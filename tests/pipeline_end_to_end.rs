//! End-to-end pipeline properties on seeded synthetic communities:
//! determinism, locality, attack resistance, and baseline comparability.

use semrec::core::{Recommender, RecommenderConfig, SynthesisStrategy};
use semrec::datagen::attack::{inject_profile_copy_attack, AttackConfig};
use semrec::datagen::community::{generate_community, CommunityGenConfig};
use semrec::eval::baselines::knn_product_cf;
use semrec::ProductId;

#[test]
fn recommendations_are_deterministic() {
    let generated = generate_community(&CommunityGenConfig::small(3));
    let engine_a = Recommender::new(generated.community.clone(), RecommenderConfig::default());
    let engine_b = Recommender::new(generated.community, RecommenderConfig::default());
    for agent in engine_a.community().agents().take(30) {
        assert_eq!(
            engine_a.recommend(agent, 10).unwrap(),
            engine_b.recommend(agent, 10).unwrap()
        );
    }
}

#[test]
fn pipeline_is_local_not_global() {
    // The engine explores only the trust neighborhood (§2 scalability):
    // the number of nodes the trust metric touches is far below n.
    let generated = generate_community(&CommunityGenConfig::small(4));
    let n = generated.community.agent_count();
    let engine = Recommender::new(generated.community, RecommenderConfig::default());
    let mut explored_max = 0;
    for agent in engine.community().agents().take(20) {
        let (_, trace) = engine.recommend_traced(agent, 10).unwrap();
        explored_max = explored_max.max(trace.nodes_explored);
        assert!(trace.neighborhood_size <= 50, "neighborhood cap must hold");
    }
    assert!(explored_max > 0);
    assert!(explored_max <= n, "never more than the whole community");
}

#[test]
fn profile_copy_attack_defeats_plain_cf_but_not_the_hybrid() {
    let generated = generate_community(&CommunityGenConfig::small(21));
    let mut community = generated.community;
    let victim = community.agents().nth(3).unwrap();
    let pushed: ProductId = community
        .catalog
        .iter()
        .find(|&p| {
            community.rating(victim, p).is_none()
                && community.agents().all(|a| community.rating(a, p).is_none())
        })
        .unwrap();

    inject_profile_copy_attack(
        &mut community,
        &AttackConfig { sybils: 30, pushed_product: pushed, victim, build_clique: true, seed: 5 },
    );

    let plain = knn_product_cf(&community, victim, 20, 10);
    assert_eq!(plain.first(), Some(&pushed), "plain CF must be fooled");

    let engine = Recommender::new(community, RecommenderConfig::default());
    let hybrid = engine.recommend(victim, 10).unwrap();
    assert!(
        hybrid.iter().all(|r| r.product != pushed),
        "the trust-filtered hybrid must suppress the pushed product"
    );
}

#[test]
fn synthesis_strategies_produce_orderable_output() {
    let generated = generate_community(&CommunityGenConfig::small(8));
    for strategy in [
        SynthesisStrategy::LinearBlend { xi: 0.0 },
        SynthesisStrategy::LinearBlend { xi: 0.5 },
        SynthesisStrategy::LinearBlend { xi: 1.0 },
        SynthesisStrategy::BordaMerge,
        SynthesisStrategy::TrustFilter,
    ] {
        let config = RecommenderConfig { synthesis: strategy, ..Default::default() };
        let engine = Recommender::new(generated.community.clone(), config);
        let mut produced = 0usize;
        for agent in engine.community().agents().take(20) {
            let recs = engine.recommend(agent, 10).unwrap();
            assert!(recs.windows(2).all(|w| w[0].score >= w[1].score));
            produced += recs.len();
        }
        assert!(produced > 0, "{strategy:?} must produce recommendations");
    }
}

#[test]
fn batch_matches_sequential_on_generated_data() {
    let generated = generate_community(&CommunityGenConfig::small(11));
    let engine = Recommender::new(generated.community, RecommenderConfig::default());
    let targets: Vec<_> = engine.community().agents().take(40).collect();
    let sequential = semrec::core::batch::recommend_batch(&engine, &targets, 10, 1);
    let parallel = semrec::core::batch::recommend_batch(&engine, &targets, 10, 8);
    for (a, b) in sequential.iter().zip(parallel.iter()) {
        assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
    }
}
