//! End-to-end pipeline properties on seeded synthetic communities:
//! determinism, locality, attack resistance, and baseline comparability.

use semrec::core::{Recommender, RecommenderConfig, SynthesisStrategy};
use semrec::datagen::attack::{inject_profile_copy_attack, AttackConfig};
use semrec::datagen::community::{generate_community, CommunityGenConfig};
use semrec::eval::baselines::knn_product_cf;
use semrec::ProductId;

/// The pre-`Ranker`-trait pipeline, reimplemented inline from the public
/// stage functions exactly as `Recommender::peer_weights` composed them
/// before the refactor: neighborhood → per-peer scores → `synthesize` →
/// weighted vote → truncate. The golden test below holds the refactored
/// engine to this bit-for-bit.
fn pre_refactor_recommend(
    engine: &Recommender,
    target: semrec::AgentId,
    n: usize,
) -> Vec<semrec::Recommendation> {
    use semrec::core::recommend::{novel_only, vote};
    use semrec::core::synthesis::{synthesize, PeerScores};
    use semrec::trust::neighborhood::form_neighborhood;

    let model = engine.community();
    let config = engine.config();
    let neighborhood =
        form_neighborhood(&model.trust, target, &config.neighborhood).unwrap();
    let target_profile = engine.profiles().profile(target);
    let peers: Vec<PeerScores> = neighborhood
        .normalized()
        .into_iter()
        .map(|(agent, trust)| PeerScores {
            agent,
            trust,
            similarity: config
                .similarity
                .apply(target_profile, engine.profiles().profile(agent)),
        })
        .collect();
    let weighted = synthesize(config.synthesis, &peers);
    let mut recs = vote(model, target, &weighted, &config.voting);
    if config.novel_categories_only {
        recs = novel_only(model, target_profile, recs);
    }
    recs.truncate(n);
    recs
}

#[test]
fn similarity_ranker_reproduces_the_pre_refactor_pipeline_bit_for_bit() {
    // Paper-fidelity fixture world (Example 1 taxonomy/catalog) plus a
    // seeded synthetic community: on both, the refactored engine with the
    // default SimilarityRanker must reproduce the inline pre-refactor
    // pipeline bit-for-bit — scores compared by bits, not tolerance.
    let e = semrec::taxonomy::fixtures::example1();
    let products: Vec<_> = e.catalog.iter().collect();
    let mut fixture = semrec::core::Community::new(e.fig.taxonomy, e.catalog);
    let agents: Vec<_> = (0..5)
        .map(|i| fixture.add_agent(format!("http://ex.org/u{i}")).unwrap())
        .collect();
    fixture.trust.set_trust(agents[0], agents[1], 0.9).unwrap();
    fixture.trust.set_trust(agents[0], agents[2], 0.7).unwrap();
    fixture.trust.set_trust(agents[1], agents[3], 0.8).unwrap();
    fixture.trust.set_trust(agents[2], agents[4], 0.5).unwrap();
    for (i, &a) in agents.iter().enumerate() {
        fixture.set_rating(a, products[i % products.len()], 1.0).unwrap();
        fixture.set_rating(a, products[(i + 1) % products.len()], 0.5).unwrap();
    }
    let worlds = [fixture, generate_community(&CommunityGenConfig::small(17)).community];

    for community in worlds {
        let engine = Recommender::new(community, RecommenderConfig::default());
        let bits = |recs: &[semrec::Recommendation]| -> Vec<(ProductId, u64, usize)> {
            recs.iter().map(|r| (r.product, r.score.to_bits(), r.voters)).collect()
        };
        let mut compared = 0usize;
        for agent in engine.community().agents().take(60) {
            let golden = pre_refactor_recommend(&engine, agent, 10);
            let refactored = engine.recommend(agent, 10).unwrap();
            assert_eq!(
                bits(&golden),
                bits(&refactored),
                "trait extraction must be behavior-preserving for {agent:?}"
            );
            compared += golden.len();
        }
        assert!(compared > 0, "the golden comparison must not be vacuous");
    }
}

#[test]
fn recommendations_are_deterministic() {
    let generated = generate_community(&CommunityGenConfig::small(3));
    let engine_a = Recommender::new(generated.community.clone(), RecommenderConfig::default());
    let engine_b = Recommender::new(generated.community, RecommenderConfig::default());
    for agent in engine_a.community().agents().take(30) {
        assert_eq!(
            engine_a.recommend(agent, 10).unwrap(),
            engine_b.recommend(agent, 10).unwrap()
        );
    }
}

#[test]
fn pipeline_is_local_not_global() {
    // The engine explores only the trust neighborhood (§2 scalability):
    // the number of nodes the trust metric touches is far below n.
    let generated = generate_community(&CommunityGenConfig::small(4));
    let n = generated.community.agent_count();
    let engine = Recommender::new(generated.community, RecommenderConfig::default());
    let mut explored_max = 0;
    for agent in engine.community().agents().take(20) {
        let (_, trace) = engine.recommend_traced(agent, 10).unwrap();
        explored_max = explored_max.max(trace.nodes_explored);
        assert!(trace.neighborhood_size <= 50, "neighborhood cap must hold");
    }
    assert!(explored_max > 0);
    assert!(explored_max <= n, "never more than the whole community");
}

#[test]
fn profile_copy_attack_defeats_plain_cf_but_not_the_hybrid() {
    let generated = generate_community(&CommunityGenConfig::small(21));
    let mut community = generated.community;
    let victim = community.agents().nth(3).unwrap();
    let pushed: ProductId = community
        .catalog
        .iter()
        .find(|&p| {
            community.rating(victim, p).is_none()
                && community.agents().all(|a| community.rating(a, p).is_none())
        })
        .unwrap();

    inject_profile_copy_attack(
        &mut community,
        &AttackConfig { sybils: 30, pushed_product: pushed, victim, build_clique: true, seed: 5 },
    );

    let plain = knn_product_cf(&community, victim, 20, 10);
    assert_eq!(plain.first(), Some(&pushed), "plain CF must be fooled");

    let engine = Recommender::new(community, RecommenderConfig::default());
    let hybrid = engine.recommend(victim, 10).unwrap();
    assert!(
        hybrid.iter().all(|r| r.product != pushed),
        "the trust-filtered hybrid must suppress the pushed product"
    );
}

#[test]
fn synthesis_strategies_produce_orderable_output() {
    let generated = generate_community(&CommunityGenConfig::small(8));
    for strategy in [
        SynthesisStrategy::LinearBlend { xi: 0.0 },
        SynthesisStrategy::LinearBlend { xi: 0.5 },
        SynthesisStrategy::LinearBlend { xi: 1.0 },
        SynthesisStrategy::BordaMerge,
        SynthesisStrategy::TrustFilter,
    ] {
        let config = RecommenderConfig { synthesis: strategy, ..Default::default() };
        let engine = Recommender::new(generated.community.clone(), config);
        let mut produced = 0usize;
        for agent in engine.community().agents().take(20) {
            let recs = engine.recommend(agent, 10).unwrap();
            assert!(recs.windows(2).all(|w| w[0].score >= w[1].score));
            produced += recs.len();
        }
        assert!(produced > 0, "{strategy:?} must produce recommendations");
    }
}

#[test]
fn batch_matches_sequential_on_generated_data() {
    let generated = generate_community(&CommunityGenConfig::small(11));
    let engine = Recommender::new(generated.community, RecommenderConfig::default());
    let targets: Vec<_> = engine.community().agents().take(40).collect();
    let sequential = semrec::core::batch::recommend_batch(&engine, &targets, 10, 1);
    let parallel = semrec::core::batch::recommend_batch(&engine, &targets, 10, 8);
    for (a, b) in sequential.iter().zip(parallel.iter()) {
        assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
    }
}
