//! Arena-layout properties: for *any* random trust network the CSR form
//! must mirror the adjacency-list graph edge for edge and answer
//! Appleseed bit-identically; for *any* random rating churn the slab
//! store's incremental `advance` must land on the exact slab a fresh
//! build produces; and for *any* random crawled world the v2 arena
//! snapshot must round-trip to a model byte-identical to the v1
//! per-record path.

use std::collections::HashSet;

use proptest::prelude::*;
use semrec::core::{Community, ProfileStore, Recommender, RecommenderConfig};
use semrec::store::{decode_v2, encode_v2, sniff_version, Checkpoint, SNAPSHOT_V2};
use semrec::taxonomy::fixtures::example1;
use semrec::trust::appleseed::{appleseed, appleseed_csr, AppleseedParams};
use semrec::trust::CsrGraph;
use semrec::web::crawler::{crawl, CommunityBuilder, CrawlConfig};
use semrec::web::publish::publish_community;
use semrec::web::store::DocumentWeb;
use semrec::{AgentId, ProductId};

/// Builds a community over the Example 1 world from generated edge/rating
/// lists (indexes taken modulo the population).
fn build(
    n_agents: usize,
    trust: &[(usize, usize, f64)],
    ratings: &[(usize, usize, f64)],
) -> Community {
    let e = example1();
    let mut c = Community::new(e.fig.taxonomy, e.catalog);
    let agents: Vec<AgentId> = (0..n_agents)
        .map(|i| c.add_agent(format!("http://ex.org/u{i}")).unwrap())
        .collect();
    for &(a, b, w) in trust {
        let (a, b) = (a % n_agents, b % n_agents);
        if a != b {
            c.trust.set_trust(agents[a], agents[b], w).unwrap();
        }
    }
    let m = c.catalog.len();
    for &(a, p, r) in ratings {
        c.set_rating(agents[a % n_agents], ProductId::from_index(p % m), r).unwrap();
    }
    c
}

/// Bit-exact rendering of one agent's rating list.
fn ratings_bits(c: &Community, a: AgentId) -> Vec<(usize, u64)> {
    c.ratings_of(a).iter().map(|&(p, r)| (p.index(), r.to_bits())).collect()
}

type World = (usize, Vec<(usize, usize, f64)>, Vec<(usize, usize, f64)>);

fn arb_world() -> impl Strategy<Value = World> {
    (3usize..12).prop_flat_map(|n| {
        (
            Just(n),
            prop::collection::vec((0..n, 0..n, -1.0f64..=1.0), 0..32),
            prop::collection::vec((0..n, 0usize..4, -1.0f64..=1.0), 0..32),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The CSR form is the adjacency-list graph: same counts, same edges
    /// in the same order with bit-identical weights, same reverse edges,
    /// and both conversions (`from_graph`/`to_graph`, `arenas`/
    /// `from_parts`) are lossless.
    #[test]
    fn csr_graph_mirrors_trust_graph((n, trust, ratings) in arb_world()) {
        let c = build(n, &trust, &ratings);
        let graph = &c.trust;
        let csr = CsrGraph::from_graph(graph);

        prop_assert_eq!(csr.agent_count(), graph.agent_count());
        prop_assert_eq!(csr.edge_count(), graph.edge_count());
        for a in c.agents() {
            let list: Vec<(AgentId, u64)> =
                graph.out_edges(a).iter().map(|&(t, w)| (t, w.to_bits())).collect();
            let flat: Vec<(AgentId, u64)> =
                csr.out_edges(a).map(|(t, w)| (t, w.to_bits())).collect();
            prop_assert_eq!(flat, list);
            let trusters: Vec<u32> =
                graph.trusters_of(a).iter().map(|t| t.index() as u32).collect();
            prop_assert_eq!(csr.trusters_of(a), &trusters[..]);
            for &(t, w) in graph.out_edges(a) {
                prop_assert_eq!(csr.trust(a, t).map(f64::to_bits), Some(w.to_bits()));
            }
        }

        let round = CsrGraph::from_graph(&csr.to_graph());
        prop_assert_eq!(round.arenas(), csr.arenas());
        let (oo, ot, ow, io, is) = csr.arenas();
        let reparsed = CsrGraph::from_parts(
            oo.to_vec(), ot.to_vec(), ow.to_vec(), io.to_vec(), is.to_vec(),
        ).expect("own arenas validate");
        prop_assert_eq!(reparsed.arenas(), csr.arenas());
    }

    /// Appleseed over the CSR arenas is bit-identical to Appleseed over
    /// the adjacency list, from every source in the network.
    #[test]
    fn appleseed_csr_is_bit_identical((n, trust, ratings) in arb_world()) {
        let c = build(n, &trust, &ratings);
        let csr = CsrGraph::from_graph(&c.trust);
        let params = AppleseedParams::default();
        for source in c.agents() {
            let g = appleseed(&c.trust, source, &params).expect("converges");
            let f = appleseed_csr(&csr, source, &params).expect("converges");
            prop_assert_eq!(g.iterations, f.iterations);
            prop_assert_eq!(g.converged, f.converged);
            prop_assert_eq!(g.ranks.len(), f.ranks.len());
            for (&(ga, gr), &(fa, fr)) in g.ranks.iter().zip(&f.ranks) {
                prop_assert_eq!(ga, fa);
                prop_assert_eq!(gr.to_bits(), fr.to_bits());
            }
        }
    }

    /// Incremental slab advance ≡ fresh build: whatever the rating churn
    /// between two generations, advancing with a sound dirty set produces
    /// a profile slab bit-identical to building from scratch — reused
    /// ranges included.
    #[test]
    fn slab_advance_equals_fresh_build(
        (n, trust, ratings) in arb_world(),
        next_ratings in prop::collection::vec(
            (0usize..12, 0usize..4, -1.0f64..=1.0), 0..32),
        extra_agents in 0usize..4,
    ) {
        let prev = build(n, &trust, &ratings);
        let next = build(n + extra_agents, &trust, &next_ratings);
        let config = RecommenderConfig::default();
        let prev_store = ProfileStore::build(&prev, &config.profile);

        // A sound dirty set: every URI present in both generations whose
        // rating list changed. Agents new to `next` are recomputed fresh
        // regardless of the set.
        let mut dirty: HashSet<&str> = HashSet::new();
        for a in next.agents() {
            let uri = &next.agent(a).unwrap().uri;
            match prev.agent_by_uri(uri) {
                Some(old) if ratings_bits(&prev, old) == ratings_bits(&next, a) => {}
                _ => { dirty.insert(uri.as_str()); }
            }
        }

        let (advanced, stats) = prev_store.advance(&prev, &next, &dirty);
        let fresh = ProfileStore::build(&next, &config.profile);

        prop_assert_eq!(stats.reused + stats.recomputed, next.agent_count());
        let (ao, at, asc) = advanced.slab().arenas();
        let (fo, ft, fsc) = fresh.slab().arenas();
        prop_assert_eq!(ao, fo);
        prop_assert_eq!(at, ft);
        let a_bits: Vec<u64> = asc.iter().map(|s| s.to_bits()).collect();
        let f_bits: Vec<u64> = fsc.iter().map(|s| s.to_bits()).collect();
        prop_assert_eq!(a_bits, f_bits);
    }

    /// v2 arena snapshots round-trip any crawled world to a model
    /// byte-identical to the v1 per-record restore path.
    #[test]
    fn v2_snapshot_round_trips_any_world(
        (n, trust, ratings) in arb_world(),
        epoch in 1u64..100,
    ) {
        let source = build(n, &trust, &ratings);
        let web = DocumentWeb::new();
        publish_community(&source, &web);
        let seeds: Vec<String> =
            source.agents().map(|a| source.agent(a).unwrap().uri.clone()).collect();
        let crawled = crawl(&web, &seeds, &CrawlConfig::default());
        let builder = CommunityBuilder::new(&crawled.agents);
        let (community, _) = builder.build(source.taxonomy.clone(), source.catalog.clone());
        let engine = Recommender::new(community, RecommenderConfig::default());

        let v2 = encode_v2(&engine, builder.agents(), epoch);
        prop_assert_eq!(sniff_version(&v2), Some(SNAPSHOT_V2));
        let restored = decode_v2(&v2).expect("own encoding decodes");
        let v1 = Checkpoint::capture(&engine, builder.agents(), epoch).encode();
        let from_v1 = Checkpoint::decode(&v1).unwrap().restore().unwrap();

        prop_assert_eq!(restored.epoch, epoch);
        prop_assert_eq!(&restored.view, builder.agents());
        for a in engine.community().agents() {
            let live: Vec<(ProductId, u64)> = engine.recommend(a, 10).unwrap()
                .into_iter().map(|r| (r.product, r.score.to_bits())).collect();
            let v2r: Vec<(ProductId, u64)> = restored.engine.recommend(a, 10).unwrap()
                .into_iter().map(|r| (r.product, r.score.to_bits())).collect();
            let v1r: Vec<(ProductId, u64)> = from_v1.engine.recommend(a, 10).unwrap()
                .into_iter().map(|r| (r.product, r.score.to_bits())).collect();
            prop_assert_eq!(&v2r, &live);
            prop_assert_eq!(&v1r, &live);
        }
    }
}
