//! Property tests for the ranking invariants every [`Ranker`] must uphold:
//! run- and thread-count-determinism (byte-identical top-N plus identical
//! `rank.*` counters), similarity-only blend equivalence between the two
//! shipped rankers, and spreading-activation physics (monotone in per-hop
//! retention, dark beyond the horizon).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex, MutexGuard};

use proptest::prelude::*;
use semrec::core::rank::spread_activation;
use semrec::core::{
    recommend_batch, BlendWeights, Community, ProfileStore, Recommender, RecommenderConfig,
    SpreadingActivationRanker, SpreadingParams,
};
use semrec::datagen::{generate_community, CommunityGenConfig};
use semrec::obs;
use semrec::taxonomy::fixtures::example1;
use semrec::{AgentId, ProductId};

/// Serializes tests touching the global registry (shared across this
/// binary's test threads).
fn lock() -> MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Builds a community over the Example 1 world from generated edge/rating
/// lists (indexes taken modulo the population).
fn build(
    n_agents: usize,
    trust: &[(usize, usize, f64)],
    ratings: &[(usize, usize, f64)],
) -> Community {
    let e = example1();
    let mut c = Community::new(e.fig.taxonomy, e.catalog);
    let agents: Vec<AgentId> = (0..n_agents)
        .map(|i| c.add_agent(format!("http://ex.org/u{i}")).unwrap())
        .collect();
    for &(a, b, w) in trust {
        let (a, b) = (a % n_agents, b % n_agents);
        if a != b {
            c.trust.set_trust(agents[a], agents[b], w).unwrap();
        }
    }
    let m = c.catalog.len();
    for &(a, p, r) in ratings {
        c.set_rating(agents[a % n_agents], ProductId::from_index(p % m), r).unwrap();
    }
    c
}

type World = (usize, Vec<(usize, usize, f64)>, Vec<(usize, usize, f64)>);

fn arb_world() -> impl Strategy<Value = World> {
    (3usize..12).prop_flat_map(|n| {
        (
            Just(n),
            prop::collection::vec((0..n, 0..n, -1.0f64..=1.0), 0..30),
            prop::collection::vec((0..n, 0usize..4, -1.0f64..=1.0), 0..30),
        )
    })
}

fn spreading_engine(community: Community, params: SpreadingParams) -> Recommender {
    Recommender::with_ranker(
        community,
        RecommenderConfig::default(),
        Arc::new(SpreadingActivationRanker::new(params)),
    )
}

/// One batch pass with the chosen ranker: rendered bit-exact top-N plus the
/// thread-count-invariant counter map (per-worker task split excluded).
fn run_batch(
    engine: &Recommender,
    agents: &[AgentId],
    threads: usize,
) -> (String, BTreeMap<String, u64>) {
    obs::global().reset();
    let batch = recommend_batch(engine, agents, 10, threads);
    let mut rendered = String::new();
    for (agent, result) in agents.iter().zip(&batch) {
        rendered.push_str(&format!("{agent:?}:"));
        for rec in result.as_ref().expect("recommendation succeeds") {
            rendered.push_str(&format!(" {:?}={}", rec.product, rec.score.to_bits()));
        }
        rendered.push('\n');
    }
    let counters = obs::global()
        .snapshot()
        .counters
        .into_iter()
        .filter(|(name, _)| !name.starts_with("batch.worker."))
        .collect();
    (rendered, counters)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (a) Both rankers are deterministic across runs and thread counts:
    /// byte-identical top-N lists and identical `rank.*` counters.
    #[test]
    fn rankers_are_run_and_thread_count_deterministic(
        (n, trust, ratings) in arb_world(),
        spreading in prop_oneof![Just(false), Just(true)],
    ) {
        let _serial = lock();
        let community = build(n, &trust, &ratings);
        let agents: Vec<AgentId> = community.agents().collect();
        let engine = |c: Community| if spreading {
            spreading_engine(c, SpreadingParams::default())
        } else {
            Recommender::new(c, RecommenderConfig::default())
        };

        let (recs_a, counters_a) = run_batch(&engine(community.clone()), &agents, 1);
        let (recs_b, counters_b) = run_batch(&engine(community.clone()), &agents, 1);
        let (recs_c, counters_c) = run_batch(&engine(community), &agents, 4);

        prop_assert_eq!(&recs_a, &recs_b, "same-thread reruns must be byte-identical");
        prop_assert_eq!(&recs_a, &recs_c, "thread count must not change the top-N");
        let expected = if spreading { "rank.spread.runs" } else { "rank.similarity.runs" };
        prop_assert!(
            counters_a.get(expected).copied().unwrap_or(0) as usize >= agents.len(),
            "every query must pass through the ranker: {:?}", counters_a
        );
        prop_assert_eq!(&counters_a, &counters_b, "rank.* counters must match across runs");
        prop_assert_eq!(&counters_a, &counters_c, "rank.* counters must be thread invariant");
    }

    /// (b) A similarity-only blend makes the spreading ranker rank-order
    /// equivalent to the similarity ranker on any world (here even
    /// bit-identical in the weights).
    #[test]
    fn similarity_only_blend_is_rank_order_equivalent(
        (n, trust, ratings) in arb_world(),
    ) {
        let community = build(n, &trust, &ratings);
        let baseline = Recommender::new(community.clone(), RecommenderConfig::default());
        let spread = spreading_engine(
            community,
            SpreadingParams { blend: BlendWeights::SIMILARITY_ONLY, ..Default::default() },
        );
        for agent in baseline.community().agents() {
            let (base, _) = baseline.peer_weights(agent).unwrap();
            let (with_blend, _) = spread.peer_weights(agent).unwrap();
            let order = |v: &[(AgentId, f64)]| v.iter().map(|&(a, _)| a).collect::<Vec<_>>();
            prop_assert_eq!(order(&base), order(&with_blend), "rank order must match");
            let bits = |v: &[(AgentId, f64)]| {
                v.iter().map(|&(a, w)| (a, w.to_bits())).collect::<Vec<_>>()
            };
            prop_assert_eq!(bits(&base), bits(&with_blend), "weights must be bit-identical");
        }
    }

    /// (c) Spreading physics: per-agent activation is monotone
    /// non-decreasing in the per-hop retention (equivalently, monotone
    /// non-increasing in decay), and agents unreachable from the anchor set
    /// within the horizon never receive activation.
    #[test]
    fn activation_is_monotone_in_retention_and_horizon_bounded(
        (n, trust, ratings) in arb_world(),
        retention_a in 0.05f64..1.0,
        retention_b in 0.05f64..1.0,
        horizon in 0usize..4,
    ) {
        let community = build(n, &trust, &ratings);
        let config = RecommenderConfig::default();
        let profiles = ProfileStore::build(&community, &config.profile);
        let target = community.agents().next().unwrap();
        let anchors: Vec<(AgentId, f64)> =
            community.trust.positive_out_edges(target).collect();
        if anchors.is_empty() {
            continue; // no trust edges, nothing to anchor — skip the case
        }

        let spread = |decay: f64| {
            spread_activation(
                &community,
                &profiles,
                config.similarity,
                target,
                &anchors,
                &SpreadingParams { decay, horizon, ..Default::default() },
            )
        };
        let (lo, hi) = (retention_a.min(retention_b), retention_a.max(retention_b));
        let low = spread(lo);
        let high = spread(hi);
        for (agent, &a) in &low.activation {
            let b = high.activation.get(agent).copied().unwrap_or(0.0);
            prop_assert!(
                b >= a - 1e-15,
                "activation of {:?} shrank when retention grew: {} -> {}", agent, a, b
            );
        }

        // Horizon bound: BFS over positive trust edges from the anchors,
        // never through the target, at most `horizon` hops deep. Anything
        // outside that set must stay at zero activation.
        let mut reachable: BTreeSet<AgentId> = anchors.iter().map(|&(a, _)| a).collect();
        let mut frontier: Vec<AgentId> = reachable.iter().copied().collect();
        for _ in 0..horizon {
            let mut next = Vec::new();
            for &node in &frontier {
                for (nbr, _) in community.trust.positive_out_edges(node) {
                    if nbr != target && reachable.insert(nbr) {
                        next.push(nbr);
                    }
                }
            }
            frontier = next;
        }
        for result in [&low, &high] {
            prop_assert!(result.hops <= horizon);
            for agent in result.activation.keys() {
                prop_assert!(
                    reachable.contains(agent),
                    "{:?} is unreachable within horizon {} yet was activated", agent, horizon
                );
            }
        }
    }
}

/// The determinism contract at generated-community scale (the
/// `tests/determinism.rs` world), for the non-default ranker.
#[test]
fn spreading_ranker_is_deterministic_on_a_generated_community() {
    let _serial = lock();
    let generated = generate_community(&CommunityGenConfig::small(42));
    let engine =
        |c: Community| spreading_engine(c, SpreadingParams::default());
    let community = generated.community;
    let panel: Vec<AgentId> = community.agents().take(48).collect();

    let (recs_a, counters_a) = run_batch(&engine(community.clone()), &panel, 4);
    let (recs_b, counters_b) = run_batch(&engine(community.clone()), &panel, 4);
    let (recs_seq, counters_seq) = run_batch(&engine(community), &panel, 1);

    assert!(!recs_a.is_empty());
    assert_eq!(recs_a, recs_b, "reruns must be byte-identical");
    assert_eq!(recs_a, recs_seq, "thread count must not change the lists");
    assert!(
        counters_a.get("rank.spread.runs").copied().unwrap_or(0) >= panel.len() as u64,
        "rank namespace must register: {counters_a:?}"
    );
    assert!(
        counters_a.get("rank.activation.hops").copied().unwrap_or(0) > 0,
        "spreading must actually hop: {counters_a:?}"
    );
    assert_eq!(counters_a, counters_b, "counters must match across runs");
    assert_eq!(counters_a, counters_seq, "counters must be thread-count invariant");
}
