//! Acceptance tests for the fault-injection and resilience layer (PR 2):
//!
//! * with a 30% transient-fault plan at a fixed seed, the Example-1-style
//!   pipeline still emits a non-empty recommendation list for every test
//!   user, marks the run degraded, and the registry's retry/breaker
//!   counters agree with the crawl's own accounting;
//! * with a zero-fault plan, the resilient path is byte-identical to the
//!   plain (pre-resilience) crawl — recommendations *and* counters.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

use semrec::core::{Community, Recommender, RecommenderConfig};
use semrec::obs;
use semrec::taxonomy::fixtures::example1;
use semrec::web::crawler::{
    assemble_community, crawl, crawl_resilient, CrawlConfig, CrawlResult,
};
use semrec::web::fault::{FaultPlan, FaultyWeb};
use semrec::web::policy::{CircuitBreaker, FetchPolicy};
use semrec::web::publish::publish_community;
use semrec::web::store::DocumentWeb;

/// Serializes tests touching the global registry (shared across this
/// binary's test threads).
fn lock() -> MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

const TEST_USERS: [&str; 3] =
    ["http://ex.org/alice", "http://ex.org/bob", "http://ex.org/dave"];

/// The E1 four-agent community plus six satellite raters, wired so that
/// every test user's neighborhood is redundant: losing any one satellite
/// document must not empty anyone's recommendation list.
fn community() -> Community {
    let e = example1();
    let products: Vec<_> = e.catalog.iter().collect();
    let mut c = Community::new(e.fig.taxonomy, e.catalog);
    let alice = c.add_agent("http://ex.org/alice").unwrap();
    let bob = c.add_agent("http://ex.org/bob").unwrap();
    let dave = c.add_agent("http://ex.org/dave").unwrap();
    let eve = c.add_agent("http://ex.org/eve").unwrap();
    c.trust.set_trust(alice, bob, 0.9).unwrap();
    c.trust.set_trust(alice, dave, 0.8).unwrap();
    c.trust.set_trust(bob, alice, 0.7).unwrap();
    c.trust.set_trust(bob, dave, 0.6).unwrap();
    c.trust.set_trust(dave, eve, 0.6).unwrap();
    c.trust.set_trust(dave, alice, 0.5).unwrap();
    c.set_rating(alice, products[1], 1.0).unwrap();
    c.set_rating(bob, products[0], 1.0).unwrap();
    c.set_rating(dave, products[2], 1.0).unwrap();
    c.set_rating(dave, products[3], 0.9).unwrap();
    c.set_rating(eve, products[3], 1.0).unwrap();
    // Satellites: each test user trusts two of them, each rates a product,
    // so votes survive the loss of any single homepage.
    let core = [alice, bob, dave];
    for (i, name) in ["frank", "grace", "heidi", "ivan", "judy", "ken"].iter().enumerate() {
        let sat = c.add_agent(format!("http://ex.org/{name}")).unwrap();
        c.trust.set_trust(core[i % 3], sat, 0.4).unwrap();
        c.trust.set_trust(core[(i + 1) % 3], sat, 0.3).unwrap();
        c.set_rating(sat, products[i % 4], 0.8).unwrap();
    }
    c
}

/// Crawl seeds: every homepage (full visibility at range 0 hops already).
fn seeds(c: &Community) -> Vec<String> {
    let mut seeds: Vec<String> =
        c.agents().map(|a| c.agent(a).unwrap().uri.clone()).collect();
    seeds.sort();
    seeds
}

/// Renders recommendations for every agent of an assembled community with
/// bit-exact scores (sorted by agent URI, so independent of assembly order).
fn render(engine: &Recommender) -> String {
    let mut uris: Vec<String> = engine
        .community()
        .agents()
        .map(|a| engine.community().agent(a).unwrap().uri.clone())
        .collect();
    uris.sort();
    let mut out = String::new();
    for uri in uris {
        let target = engine.community().agent_by_uri(&uri).unwrap();
        out.push_str(&uri);
        out.push(':');
        for rec in engine.recommend(target, 10).expect("recommendation succeeds") {
            let identifier = &engine.community().catalog.product(rec.product).identifier;
            out.push_str(&format!(" {identifier}={}", rec.score.to_bits()));
        }
        out.push('\n');
    }
    out
}

fn engine_from(result: &CrawlResult, source: &Community) -> Recommender {
    let (rebuilt, _) =
        assemble_community(&result.agents, source.taxonomy.clone(), source.catalog.clone());
    Recommender::new(rebuilt, RecommenderConfig::default()).with_source_health(result.health())
}

/// The fixed 30%-transient plan used by the degraded-run acceptance test:
/// the first seed (stable by construction — fault decisions are pure
/// hashes) whose losses hit only satellite homepages, so the claim "every
/// test user is still served" is about redundancy absorbing real loss, not
/// about a lucky lossless run.
fn degrading_plan(c: &Community, web: &DocumentWeb) -> (FaultPlan, FetchPolicy) {
    let policy = FetchPolicy { max_attempts: 2, ..FetchPolicy::default() };
    let seed = (0..500u64)
        .find(|&seed| {
            let plan = FaultPlan::transient(0.3, seed);
            let faulty = FaultyWeb::new(web, plan);
            let (result, _) =
                crawl_resilient(&faulty, &seeds(c), &CrawlConfig::default(), &policy);
            let lost: Vec<&str> = result
                .errors
                .iter()
                .filter_map(|e| e.uri())
                .collect();
            result.gave_up >= 1
                && lost.iter().all(|uri| !TEST_USERS.contains(uri))
        })
        .expect("some 30% plan loses only satellite documents");
    (FaultPlan::transient(0.3, seed), policy)
}

#[test]
fn thirty_percent_faults_degrade_gracefully_with_consistent_counters() {
    let _serial = lock();
    let c = community();
    let web = DocumentWeb::new();
    publish_community(&c, &web);
    let (plan, policy) = degrading_plan(&c, &web);

    obs::global().reset();
    let faulty = FaultyWeb::new(&web, plan);
    let (result, breaker) =
        crawl_resilient(&faulty, &seeds(&c), &CrawlConfig::default(), &policy);

    // The crawl lost something — this is a genuinely degraded run.
    assert!(result.gave_up >= 1);
    let health = result.health();
    assert!(health.is_degraded());
    assert!(health.coverage() < 1.0);

    // The registry agrees with the crawl's own accounting.
    let counters = obs::global().snapshot().counters;
    let counter = |name: &str| counters.get(name).copied().unwrap_or(0);
    assert_eq!(counter("crawl.fetch.retry"), result.retries);
    assert_eq!(counter("crawl.fetch.gave_up"), result.gave_up as u64);
    assert_eq!(counter("crawl.fetch.unreachable"), result.unreachable as u64);
    assert_eq!(counter("crawl.breaker.open"), breaker.times_opened());
    assert!(counter("crawl.fetch.retry") > 0, "a 30% plan must force retries");

    // Every test user still gets a non-empty recommendation list, and each
    // run on the degraded community is counted.
    let engine = engine_from(&result, &c);
    for uri in TEST_USERS {
        let target = engine
            .community()
            .agent_by_uri(uri)
            .unwrap_or_else(|| panic!("{uri} must survive the crawl"));
        let recs = engine.recommend(target, 10).expect("recommendation succeeds");
        assert!(!recs.is_empty(), "{uri} must still be served on the degraded community");
        // Explanations carry the degradation provenance.
        let explanation =
            engine.explain(target, recs[0].product).expect("explainable").expect("has voters");
        assert_eq!(explanation.degraded, Some(health));
    }
    let degraded_runs = obs::global().snapshot().counters["engine.degraded_runs"];
    assert!(
        degraded_runs >= TEST_USERS.len() as u64,
        "each recommend on a degraded community must be counted, got {degraded_runs}"
    );
}

#[test]
fn zero_fault_plan_is_byte_identical_to_the_plain_crawl() {
    let _serial = lock();
    let c = community();
    let web = DocumentWeb::new();
    publish_community(&c, &web);

    // Baseline: today's reliable path.
    obs::global().reset();
    let plain = crawl(&web, &seeds(&c), &CrawlConfig::default());
    let plain_recs = render(&engine_from(&plain, &c));
    let plain_counters: BTreeMap<String, u64> = obs::global().snapshot().counters;

    // Resilient path over a zero-fault plan, full retry/breaker machinery
    // armed but never triggered.
    obs::global().reset();
    let faulty = FaultyWeb::new(&web, FaultPlan::none());
    let (resilient, breaker) =
        crawl_resilient(&faulty, &seeds(&c), &CrawlConfig::default(), &FetchPolicy::default());
    let resilient_recs = render(&engine_from(&resilient, &c));
    let resilient_counters: BTreeMap<String, u64> = obs::global().snapshot().counters;

    assert_eq!(plain_recs, resilient_recs, "zero faults must reproduce the baseline exactly");
    assert_eq!(plain_counters, resilient_counters, "no resilience counter may even exist");
    assert_eq!(resilient.retries, 0);
    assert_eq!(resilient.gave_up + resilient.unreachable + resilient.corrupted, 0);
    assert_eq!(breaker.times_opened(), 0);
    assert!(!resilient.health().is_degraded());
    // The breaker type itself stays inert on the plain path too.
    assert_eq!(CircuitBreaker::for_policy(&FetchPolicy::no_retry()).open_peers(), 0);
}
