//! `semrec` — command-line front end.
//!
//! Materializes a decentralized community as RDF documents on disk — Turtle
//! or 2004-era RDF/XML, the filesystem playing the role of the document
//! web — then answers trust and recommendation queries against it:
//!
//! ```sh
//! semrec generate --scale small --seed 42 --out ./world
//! semrec inspect   --data ./world
//! semrec trust     --data ./world --agent http://community.example.org/agents/0#me
//! semrec recommend --data ./world --agent http://community.example.org/agents/0#me --top 10
//! semrec serve-bench --scale small --seed 42 --workers 4 --clients 8
//! semrec serve-bench --scale small --seed 42 --open-loop flash --ticks 120 --rate 8
//! semrec refresh-bench --scale small --seed 42 --rounds 3 --churn 0.05
//! semrec checkpoint --data ./world --store ./checkpoints
//! semrec recover --store ./checkpoints --top 5
//! semrec store-bench --scale small --seed 42 --rounds 3 --churn 0.05
//! semrec rank-bench --scale small --seed 42 --blend 0.5,0.3,0.2
//! semrec shard-bench --scale small --seed 42 --shards 8 --partitioner hash
//! semrec p2p-bench --scale small --seed 42 --rounds 12 --fanout 3 --fault 0.3 --dead 0.1
//! ```

use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use semrec::core::{Community, Recommender, RecommenderConfig, SharedModel, SwapPlan};
use semrec::serve::{run_load, LoadGenConfig, ServeConfig, Server};
use semrec::datagen::community::{generate_community, CommunityGenConfig};
use semrec::eval::Table;
use semrec::trust::appleseed::{appleseed, AppleseedParams};
use semrec::web::extract::extract_agents;
use semrec::web::globals;
use semrec::web::publish::homepage_turtle;

const TAXONOMY_BASE: &str = "http://community.example.org/taxonomy#";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else { usage("missing command") };
    let opts = Options::parse(rest);
    match command.as_str() {
        "generate" => generate(&opts),
        "inspect" => inspect(&opts),
        "trust" => trust(&opts),
        "recommend" => recommend(&opts),
        "serve-bench" => serve_bench(&opts),
        "refresh-bench" => refresh_bench(&opts),
        "checkpoint" => checkpoint(&opts),
        "recover" => recover(&opts),
        "store-bench" => store_bench(&opts),
        "rank-bench" => rank_bench(&opts),
        "shard-bench" => shard_bench(&opts),
        "p2p-bench" => p2p_bench(&opts),
        other => usage(&format!("unknown command `{other}`")),
    }
}

struct Options {
    scale: String,
    format: String,
    seed: u64,
    out: PathBuf,
    data: PathBuf,
    agent: Option<String>,
    top: usize,
    diversify: Option<f64>,
    workers: usize,
    clients: usize,
    requests: usize,
    queue: usize,
    cache: usize,
    rounds: usize,
    churn: f64,
    store: PathBuf,
    blend: Option<String>,
    open_loop: Option<String>,
    shards: usize,
    partitioner: String,
    ticks: u64,
    rate: f64,
    slo_p99: u64,
    min_workers: usize,
    max_workers: usize,
    no_slo: bool,
    fanout: usize,
    cap: usize,
    ttl_hops: u32,
    range: u32,
    fault: f64,
    dead: f64,
}

impl Options {
    fn parse(args: &[String]) -> Self {
        let mut opts = Options {
            scale: "small".into(),
            format: "turtle".into(),
            seed: 42,
            out: PathBuf::from("./world"),
            data: PathBuf::from("./world"),
            agent: None,
            top: 10,
            diversify: None,
            workers: 2,
            clients: 4,
            requests: 100,
            queue: 1024,
            cache: 4096,
            rounds: 3,
            churn: 0.05,
            store: PathBuf::from("./checkpoints"),
            blend: None,
            shards: 8,
            partitioner: "hash".into(),
            open_loop: None,
            ticks: 200,
            rate: 8.0,
            slo_p99: 16,
            min_workers: 1,
            max_workers: 8,
            no_slo: false,
            fanout: 3,
            cap: 32,
            ttl_hops: 32,
            range: 1,
            fault: 0.0,
            dead: 0.0,
        };
        let mut i = 0;
        while i < args.len() {
            let value = |i: &mut usize| -> String {
                *i += 1;
                args.get(*i).cloned().unwrap_or_else(|| usage("missing option value"))
            };
            match args[i].as_str() {
                "--scale" => opts.scale = value(&mut i),
                "--format" => opts.format = value(&mut i),
                "--seed" => opts.seed = value(&mut i).parse().unwrap_or_else(|_| usage("bad seed")),
                "--out" => opts.out = PathBuf::from(value(&mut i)),
                "--data" => opts.data = PathBuf::from(value(&mut i)),
                "--agent" => opts.agent = Some(value(&mut i)),
                "--top" => opts.top = value(&mut i).parse().unwrap_or_else(|_| usage("bad top")),
                "--diversify" => {
                    opts.diversify =
                        Some(value(&mut i).parse().unwrap_or_else(|_| usage("bad theta")))
                }
                "--workers" => {
                    opts.workers = value(&mut i).parse().unwrap_or_else(|_| usage("bad workers"))
                }
                "--clients" => {
                    opts.clients = value(&mut i).parse().unwrap_or_else(|_| usage("bad clients"))
                }
                "--requests" => {
                    opts.requests = value(&mut i).parse().unwrap_or_else(|_| usage("bad requests"))
                }
                "--queue" => {
                    opts.queue = value(&mut i).parse().unwrap_or_else(|_| usage("bad queue"))
                }
                "--cache" => {
                    opts.cache = value(&mut i).parse().unwrap_or_else(|_| usage("bad cache"))
                }
                "--rounds" => {
                    opts.rounds = value(&mut i).parse().unwrap_or_else(|_| usage("bad rounds"))
                }
                "--churn" => {
                    opts.churn = value(&mut i).parse().unwrap_or_else(|_| usage("bad churn"))
                }
                "--store" => opts.store = PathBuf::from(value(&mut i)),
                "--blend" => opts.blend = Some(value(&mut i)),
                "--shards" => {
                    opts.shards = value(&mut i).parse().unwrap_or_else(|_| usage("bad shards"))
                }
                "--partitioner" => opts.partitioner = value(&mut i),
                "--open-loop" => opts.open_loop = Some(value(&mut i)),
                "--ticks" => {
                    opts.ticks = value(&mut i).parse().unwrap_or_else(|_| usage("bad ticks"))
                }
                "--rate" => {
                    opts.rate = value(&mut i).parse().unwrap_or_else(|_| usage("bad rate"))
                }
                "--slo-p99" => {
                    opts.slo_p99 = value(&mut i).parse().unwrap_or_else(|_| usage("bad slo-p99"))
                }
                "--min-workers" => {
                    opts.min_workers =
                        value(&mut i).parse().unwrap_or_else(|_| usage("bad min-workers"))
                }
                "--max-workers" => {
                    opts.max_workers =
                        value(&mut i).parse().unwrap_or_else(|_| usage("bad max-workers"))
                }
                "--no-slo" => opts.no_slo = true,
                "--fanout" => {
                    opts.fanout = value(&mut i).parse().unwrap_or_else(|_| usage("bad fanout"))
                }
                "--cap" => {
                    opts.cap = value(&mut i).parse().unwrap_or_else(|_| usage("bad cap"))
                }
                "--ttl" => {
                    opts.ttl_hops = value(&mut i).parse().unwrap_or_else(|_| usage("bad ttl"))
                }
                "--range" => {
                    opts.range = value(&mut i).parse().unwrap_or_else(|_| usage("bad range"))
                }
                "--fault" => {
                    opts.fault = value(&mut i).parse().unwrap_or_else(|_| usage("bad fault"))
                }
                "--dead" => {
                    opts.dead = value(&mut i).parse().unwrap_or_else(|_| usage("bad dead"))
                }
                other => usage(&format!("unknown option `{other}`")),
            }
            i += 1;
        }
        opts
    }
}

fn usage(reason: &str) -> ! {
    eprintln!("error: {reason}\n");
    eprintln!("usage: semrec <command> [options]");
    eprintln!("  generate  --scale small|medium|paper --seed N --out DIR [--format turtle|rdfxml]");
    eprintln!("  inspect   --data DIR");
    eprintln!("  trust     --data DIR --agent URI [--top N]");
    eprintln!("  recommend --data DIR --agent URI [--top N] [--diversify THETA]");
    eprintln!(
        "  serve-bench --scale small|medium|paper --seed N [--workers N] [--clients N]\n\
         \x20             [--requests N] [--queue N] [--cache N] [--top N]\n\
         \x20             [--open-loop poisson|diurnal|flash] [--ticks N] [--rate F]\n\
         \x20             [--slo-p99 N] [--min-workers N] [--max-workers N] [--no-slo]"
    );
    eprintln!(
        "  refresh-bench --scale small|medium|paper --seed N [--rounds N] [--churn F]\n\
         \x20               [--workers N]"
    );
    eprintln!("  checkpoint --data DIR --store DIR");
    eprintln!("  recover    --store DIR [--agent URI] [--top N]");
    eprintln!(
        "  store-bench --scale small|medium|paper --seed N [--rounds N] [--churn F]\n\
         \x20             [--store DIR]"
    );
    eprintln!(
        "  rank-bench --scale small|medium|paper --seed N [--top N] [--blend S,A,C]"
    );
    eprintln!(
        "  shard-bench --scale small|medium|paper --seed N [--shards N]\n\
         \x20             [--partitioner hash|community] [--requests N] [--top N]\n\
         \x20             [--churn F] [--workers N]"
    );
    eprintln!(
        "  p2p-bench --scale small|medium|paper --seed N [--rounds N] [--fanout N]\n\
         \x20           [--cap N] [--ttl N] [--range N] [--fault F] [--dead F]\n\
         \x20           [--top N] [--workers N]"
    );
    std::process::exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

// --- generate ----------------------------------------------------------------

fn generate(opts: &Options) {
    let config = match opts.scale.as_str() {
        "small" => CommunityGenConfig::small(opts.seed),
        "medium" => CommunityGenConfig::medium(opts.seed),
        "paper" => CommunityGenConfig::paper_scale(opts.seed),
        other => usage(&format!("unknown scale `{other}`")),
    };
    println!("Generating {} community (seed {})…", opts.scale, opts.seed);
    let community = generate_community(&config).community;

    let agents_dir = opts.out.join("agents");
    std::fs::create_dir_all(&agents_dir).unwrap_or_else(|e| fail(&e.to_string()));

    let write = |path: &Path, body: &str| {
        std::fs::write(path, body).unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
    };
    write(
        &opts.out.join("taxonomy.ttl"),
        &semrec::rdf::writer::to_turtle(&globals::taxonomy_graph(&community.taxonomy, TAXONOMY_BASE)),
    );
    write(
        &opts.out.join("catalog.ttl"),
        &semrec::rdf::writer::to_turtle(&globals::catalog_graph(&community.catalog, TAXONOMY_BASE)),
    );
    let rdfxml = match opts.format.as_str() {
        "turtle" => false,
        "rdfxml" => true,
        other => usage(&format!("unknown format `{other}`")),
    };
    for agent in community.agents() {
        if rdfxml {
            write(
                &agents_dir.join(format!("{}.rdf", agent.index())),
                &semrec::web::publish::homepage_rdfxml(&community, agent),
            );
        } else {
            write(
                &agents_dir.join(format!("{}.ttl", agent.index())),
                &homepage_turtle(&community, agent),
            );
        }
    }
    println!(
        "Wrote {} agent homepages ({}) + taxonomy.ttl + catalog.ttl to {}",
        community.agent_count(),
        if rdfxml { "RDF/XML" } else { "Turtle" },
        opts.out.display()
    );
}

// --- loading -----------------------------------------------------------------

fn load(data: &Path) -> Community {
    let (taxonomy, catalog, extracted) = load_extracted(data);
    let (community, _) = semrec::web::crawler::assemble_community(&extracted, taxonomy, catalog);
    community
}

fn load_extracted(
    data: &Path,
) -> (semrec::taxonomy::Taxonomy, semrec::taxonomy::Catalog, Vec<semrec::web::extract::ExtractedAgent>)
{
    let read = |name: &str| -> String {
        std::fs::read_to_string(data.join(name))
            .unwrap_or_else(|e| fail(&format!("{}/{name}: {e}", data.display())))
    };
    let taxonomy_graph = semrec::rdf::turtle::parse(&read("taxonomy.ttl"))
        .unwrap_or_else(|e| fail(&format!("taxonomy.ttl: {e}")));
    let taxonomy = globals::extract_taxonomy(&taxonomy_graph, TAXONOMY_BASE)
        .unwrap_or_else(|e| fail(&format!("taxonomy.ttl: {e}")));
    let catalog_graph = semrec::rdf::turtle::parse(&read("catalog.ttl"))
        .unwrap_or_else(|e| fail(&format!("catalog.ttl: {e}")));
    let (catalog, skipped) = globals::extract_catalog(&catalog_graph, &taxonomy, TAXONOMY_BASE);
    if skipped > 0 {
        eprintln!("warning: {skipped} catalog entries skipped");
    }

    let agents_dir = data.join("agents");
    let mut extracted = Vec::new();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&agents_dir)
        .unwrap_or_else(|e| fail(&format!("{}: {e}", agents_dir.display())))
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "ttl" || ext == "rdf"))
        .collect();
    entries.sort();
    let mut parse_errors = 0usize;
    for path in entries {
        let body = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
        let parsed = if path.extension().is_some_and(|ext| ext == "rdf") {
            semrec::rdf::rdfxml::parse(&body)
        } else {
            semrec::rdf::turtle::parse(&body)
        };
        match parsed {
            Ok(graph) => extracted.extend(extract_agents(&graph)),
            Err(_) => parse_errors += 1,
        }
    }
    if parse_errors > 0 {
        eprintln!("warning: {parse_errors} homepages failed to parse");
    }
    (taxonomy, catalog, extracted)
}

fn resolve_agent(community: &Community, opts: &Options) -> semrec::AgentId {
    let Some(uri) = &opts.agent else { usage("--agent is required") };
    community
        .agent_by_uri(uri)
        .unwrap_or_else(|| fail(&format!("unknown agent `{uri}`")))
}

// --- commands ----------------------------------------------------------------

fn inspect(opts: &Options) {
    let community = load(&opts.data);
    let shape = semrec::taxonomy::stats(&community.taxonomy);
    let mut table = Table::new(["statistic", "value"]);
    table.row(["agents".to_string(), community.agent_count().to_string()]);
    table.row(["products".to_string(), community.catalog.len().to_string()]);
    table.row(["topics".to_string(), shape.topics.to_string()]);
    table.row(["taxonomy max depth".to_string(), shape.max_depth.to_string()]);
    table.row(["trust statements".to_string(), community.trust.edge_count().to_string()]);
    table.row(["ratings".to_string(), community.rating_count().to_string()]);
    table.row([
        "mean ratings / agent".to_string(),
        format!("{:.2}", community.mean_ratings_per_agent()),
    ]);
    table.row([
        "mean trust out-degree".to_string(),
        format!("{:.2}", community.trust.mean_out_degree()),
    ]);
    println!("{}", table.render());
}

fn trust(opts: &Options) {
    let community = load(&opts.data);
    let agent = resolve_agent(&community, opts);
    let result = appleseed(&community.trust, agent, &AppleseedParams::default())
        .unwrap_or_else(|e| fail(&e.to_string()));
    println!(
        "Appleseed from {}: {} nodes discovered, {} iterations\n",
        opts.agent.as_deref().unwrap_or(""),
        result.nodes_discovered,
        result.iterations
    );
    let mut table = Table::new(["rank", "agent", "trust"]);
    for (i, &(peer, rank)) in result.top(opts.top).iter().enumerate() {
        table.row([
            (i + 1).to_string(),
            community.agent(peer).map(|a| a.uri.clone()).unwrap_or_default(),
            format!("{rank:.4}"),
        ]);
    }
    println!("{}", table.render());
}

fn recommend(opts: &Options) {
    let community = load(&opts.data);
    let agent = resolve_agent(&community, opts);
    let engine = Recommender::new(community, RecommenderConfig::default());
    let mut recommendations = engine
        .recommend(agent, opts.top.max(20))
        .unwrap_or_else(|e| fail(&e.to_string()));
    if let Some(theta) = opts.diversify {
        recommendations = semrec::core::diversify::diversify(
            &engine.community().taxonomy,
            &engine.community().catalog,
            &recommendations,
            opts.top,
            theta,
        );
    }
    recommendations.truncate(opts.top);

    if recommendations.is_empty() {
        println!("No recommendations — the agent's trust neighborhood is empty.");
        return;
    }
    let mut table = Table::new(["#", "product", "title", "score", "voters"]);
    for (i, rec) in recommendations.iter().enumerate() {
        let product = engine.community().catalog.product(rec.product);
        table.row([
            (i + 1).to_string(),
            product.identifier.clone(),
            product.title.clone(),
            format!("{:.3}", rec.score),
            rec.voters.to_string(),
        ]);
    }
    println!("{}", table.render());
}

fn serve_bench(opts: &Options) {
    let config = match opts.scale.as_str() {
        "small" => CommunityGenConfig::small(opts.seed),
        "medium" => CommunityGenConfig::medium(opts.seed),
        "paper" => CommunityGenConfig::paper_scale(opts.seed),
        other => usage(&format!("unknown scale `{other}`")),
    };
    if let Some(process) = &opts.open_loop {
        return serve_bench_open_loop(opts, &config, process);
    }
    println!(
        "Generating {} community (seed {}) and serving it with {} worker(s)…",
        opts.scale, opts.seed, opts.workers
    );
    let community = generate_community(&config).community;
    let panel: Vec<semrec::AgentId> = community.agents().take(64).collect();
    let engine = Recommender::new(community, RecommenderConfig::default());

    let server = Server::start(
        engine,
        ServeConfig {
            workers: opts.workers,
            queue_capacity: opts.queue,
            cache_capacity: opts.cache,
            ..ServeConfig::default()
        },
    );
    let report = run_load(
        &server,
        &panel,
        &LoadGenConfig {
            clients: opts.clients,
            requests_per_client: opts.requests,
            top_n: opts.top,
            seed: opts.seed,
            ..LoadGenConfig::default()
        },
    );

    let mut table = Table::new(["measure", "value"]);
    table.row(["requests attempted".to_string(), report.attempts.to_string()]);
    table.row(["served".to_string(), report.served.to_string()]);
    table.row(["shed (admission)".to_string(), report.shed_admission.to_string()]);
    table.row(["shed (deadline)".to_string(), report.shed_deadline.to_string()]);
    table.row(["failed".to_string(), report.failed.to_string()]);
    table.row(["throughput (req/s)".to_string(), format!("{:.0}", report.throughput())]);
    table.row(["latency p50 (ms)".to_string(), format!("{:.3}", report.latency.p50 * 1e3)]);
    table.row(["latency p95 (ms)".to_string(), format!("{:.3}", report.latency.p95 * 1e3)]);
    table.row(["latency p99 (ms)".to_string(), format!("{:.3}", report.latency.p99 * 1e3)]);
    table.row(["cache hit rate".to_string(), format!("{:.3}", report.cache_hit_rate())]);
    table.row(["snapshot epoch".to_string(), server.epoch().to_string()]);
    println!("{}", table.render());
}

/// Open-loop serve-bench: drive the lockstep server with an arrival
/// process on the virtual tick axis and report goodput-under-SLO by
/// priority class. Deterministic for a given seed.
fn serve_bench_open_loop(opts: &Options, config: &CommunityGenConfig, process: &str) {
    use semrec::serve::{
        run_open_loop, ArrivalProcess, OpenLoopConfig, Priority, ScalerConfig, SloConfig,
    };

    let process = match process {
        "poisson" => ArrivalProcess::Poisson { rate: opts.rate },
        "diurnal" => ArrivalProcess::Diurnal { base: 1.0, peak: opts.rate },
        "flash" => ArrivalProcess::FlashCrowd {
            base: opts.rate / 4.0,
            spike: opts.rate * 4.0,
            start: opts.ticks / 4,
            len: opts.ticks * 3 / 8,
            hot_agents: 6,
            hot_fraction: 0.7,
        },
        other => usage(&format!("unknown arrival process `{other}`")),
    };
    println!(
        "Generating {} community (seed {}); open-loop {} trace over {} ticks\n\
         (SLO {}, p99 target {} ticks, workers {}–{})…",
        opts.scale,
        opts.seed,
        opts.open_loop.as_deref().unwrap_or("?"),
        opts.ticks,
        if opts.no_slo { "OFF" } else { "on" },
        opts.slo_p99,
        opts.min_workers,
        opts.max_workers,
    );
    let community = generate_community(config).community;
    let panel: Vec<semrec::AgentId> = community.agents().take(64).collect();
    let engine = Recommender::new(community, RecommenderConfig::default());
    let server = Server::start(
        engine,
        ServeConfig {
            workers: 0,
            queue_capacity: opts.queue,
            cache_capacity: opts.cache,
            ..ServeConfig::default()
        },
    );
    let report = run_open_loop(
        &server,
        &panel,
        &OpenLoopConfig {
            ticks: opts.ticks,
            process,
            top_n: opts.top,
            seed: opts.seed,
            slo: SloConfig {
                target_p99_wait_ticks: opts.slo_p99,
                ..SloConfig::default()
            },
            enforce_slo: !opts.no_slo,
            scaler: ScalerConfig {
                min_workers: opts.min_workers.max(1),
                max_workers: opts.max_workers.max(opts.min_workers.max(1)),
                ..ScalerConfig::default()
            },
            ..OpenLoopConfig::default()
        },
    );

    let mut table = Table::new([
        "class", "offered", "admitted", "served", "goodput", "good %", "shed adm", "displ",
        "shed dl", "wait p50", "wait p95", "wait p99",
    ]);
    for class in Priority::ALL {
        let c = report.class.get(class);
        table.row([
            class.label().to_string(),
            c.offered.to_string(),
            c.admitted.to_string(),
            c.served.to_string(),
            c.goodput.to_string(),
            format!("{:.3}", c.goodput_rate()),
            c.shed_admission.to_string(),
            c.displaced.to_string(),
            c.shed_deadline.to_string(),
            c.wait_p50.to_string(),
            c.wait_p95.to_string(),
            c.wait_p99.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "{} offered, {} served, {} goodput-under-SLO; {} scale events (peak {}\n\
         workers), {} ticks run, {} lost.",
        report.offered(),
        report.served(),
        report.goodput(),
        report.scale_events,
        report.peak_workers,
        report.ticks_run,
        report.lost,
    );
    server.shutdown();
}

fn refresh_bench(opts: &Options) {
    use semrec::web::crawler::{crawl, refresh, CommunityBuilder, CrawlConfig};
    use semrec::web::publish::{homepage_turtle, homepage_uri, publish_community};
    use semrec::web::store::DocumentWeb;

    let mut config = match opts.scale.as_str() {
        "small" => CommunityGenConfig::small(opts.seed),
        "medium" => CommunityGenConfig::medium(opts.seed),
        "paper" => CommunityGenConfig::paper_scale(opts.seed),
        other => usage(&format!("unknown scale `{other}`")),
    };
    // Sparse graph + tight horizon: the regime where a small delta's
    // reverse-trust closure stays a small fraction of the community, so the
    // swap can carry cache entries instead of invalidating wholesale.
    config.mean_trust_edges = 2.5;
    let engine_config = RecommenderConfig {
        neighborhood: semrec::trust::neighborhood::NeighborhoodParams {
            appleseed: AppleseedParams { max_range: Some(2), ..Default::default() },
            ..Default::default()
        },
        ..Default::default()
    };
    let horizon = engine_config.neighborhood.appleseed.max_range;

    println!(
        "Generating {} community (seed {}), then {} refresh rounds at churn {:.2}…",
        opts.scale, opts.seed, opts.rounds, opts.churn
    );
    let mut source = generate_community(&config).community;
    let agents = source.agent_count();
    let products: Vec<_> = source.catalog.iter().collect();
    let seeds: Vec<String> =
        source.agents().map(|a| source.agent(a).map(|i| i.uri.clone()).unwrap()).collect();

    let web = DocumentWeb::new();
    publish_community(&source, &web);
    let crawl_config = CrawlConfig::default();
    let mut previous = crawl(&web, &seeds, &crawl_config);
    let mut builder = CommunityBuilder::new(&previous.agents);
    let (community, _) = builder.build(source.taxonomy.clone(), source.catalog.clone());
    let mut engine = Recommender::new(community, engine_config);
    let panel: Vec<semrec::AgentId> = engine.community().agents().take(64).collect();

    let server = Server::start(
        engine.clone(),
        ServeConfig { workers: opts.workers, ..ServeConfig::default() },
    );
    for &agent in &panel {
        let _ = server.submit(agent, opts.top).unwrap_or_else(|e| fail(&e.to_string())).wait();
    }

    let mut table = Table::new([
        "round", "touched", "reused", "recomp", "inc ms", "full ms", "dirty", "swap", "carried",
        "hit rate",
    ]);
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x5eed);
    for round in 1..=opts.rounds {
        let republishers = ((agents as f64 * opts.churn) as usize).max(1);
        for _ in 0..republishers {
            let agent = semrec::AgentId::from_index(rng.random_range(0..agents));
            let product = products[rng.random_range(0..products.len())];
            let rating = -1.0 + 2.0 * rng.random::<f64>();
            source.set_rating(agent, product, rating).unwrap_or_else(|e| fail(&e.to_string()));
            let uri = source.agent(agent).map(|i| i.uri.clone()).unwrap();
            web.publish(homepage_uri(&uri), homepage_turtle(&source, agent), "text/turtle");
        }

        let result = refresh(&web, &seeds, &crawl_config, &previous);
        let delta = result.delta.clone().expect("refresh always diffs");
        let model_delta = delta.model_delta();
        let health = result.health();

        let started = std::time::Instant::now();
        builder.apply_delta(&delta);
        let (next_community, _) = builder.build(source.taxonomy.clone(), source.catalog.clone());
        let (next_engine, stats) = engine.advance(next_community, &model_delta, health);
        let incremental_ms = started.elapsed().as_secs_f64() * 1e3;

        let started = std::time::Instant::now();
        std::hint::black_box(SharedModel::new(next_engine.community().clone(), engine_config));
        let full_ms = started.elapsed().as_secs_f64() * 1e3;

        let plan = SwapPlan::compute(
            engine.community(),
            next_engine.community(),
            &model_delta,
            horizon,
            SwapPlan::DEFAULT_MAX_DIRTY_FRACTION,
        );
        let report = server.publish_delta(next_engine.clone(), &plan);

        let mut hits = 0usize;
        for &agent in &panel {
            let response = server
                .submit(agent, opts.top)
                .unwrap_or_else(|e| fail(&e.to_string()))
                .wait()
                .unwrap_or_else(|e| fail(&e.to_string()));
            if response.cache_hit {
                hits += 1;
            }
        }

        table.row([
            round.to_string(),
            delta.touched().to_string(),
            stats.reused.to_string(),
            stats.recomputed.to_string(),
            format!("{incremental_ms:.2}"),
            format!("{full_ms:.2}"),
            plan.dirty_count().to_string(),
            if report.wholesale { "whole".to_string() } else { "carry".to_string() },
            report.carried.to_string(),
            format!("{:.3}", hits as f64 / panel.len() as f64),
        ]);

        engine = next_engine;
        previous = result;
    }
    println!("{}", table.render());
    let cache = server.cache_stats();
    println!(
        "cache: {} hits, {} misses, {} carried, {} invalidated",
        cache.hits, cache.misses, cache.carried, cache.invalidated
    );
}

fn checkpoint(opts: &Options) {
    use semrec::store::Store;
    use semrec::web::crawler::CommunityBuilder;

    let (taxonomy, catalog, extracted) = load_extracted(&opts.data);
    let builder = CommunityBuilder::new(&extracted);
    let (community, _) = builder.build(taxonomy, catalog);
    let engine = Recommender::new(community, RecommenderConfig::default());

    let store = Store::open(&opts.store).unwrap_or_else(|e| fail(&e.to_string()));
    let report = store
        .checkpoint(&engine, builder.agents(), 1)
        .unwrap_or_else(|e| fail(&e.to_string()));
    println!(
        "Checkpointed {} agents as snapshot {} ({} bytes) in {}",
        engine.community().agent_count(),
        report.seq,
        report.snapshot_bytes,
        opts.store.display()
    );
}

fn recover(opts: &Options) {
    use semrec::store::Store;

    let store = Store::open(&opts.store).unwrap_or_else(|e| fail(&e.to_string()));
    let recovery = store.recover().unwrap_or_else(|e| fail(&e.to_string()));

    let mut table = Table::new(["measure", "value"]);
    table.row(["snapshot seq".to_string(), recovery.snapshot_seq.to_string()]);
    table.row(["snapshot epoch".to_string(), recovery.snapshot_epoch.to_string()]);
    table.row(["wal records replayed".to_string(), recovery.replayed.to_string()]);
    table.row(["resume epoch".to_string(), recovery.epoch.to_string()]);
    table.row(["agents".to_string(), recovery.engine.community().agent_count().to_string()]);
    table.row([
        "snapshots skipped (corrupt)".to_string(),
        recovery.skipped.len().to_string(),
    ]);
    table.row([
        "wal status".to_string(),
        match &recovery.wal_error {
            None => "clean".to_string(),
            Some(e) => format!("degraded: {e}"),
        },
    ]);
    println!("{}", table.render());
    for (seq, error) in &recovery.skipped {
        eprintln!("warning: snapshot {seq} skipped: {error}");
    }

    if opts.agent.is_some() {
        let agent = resolve_agent(recovery.engine.community(), opts);
        let recommendations =
            recovery.engine.recommend(agent, opts.top).unwrap_or_else(|e| fail(&e.to_string()));
        let mut table = Table::new(["#", "product", "score"]);
        for (i, rec) in recommendations.iter().enumerate() {
            let product = recovery.engine.community().catalog.product(rec.product);
            table.row([
                (i + 1).to_string(),
                product.identifier.clone(),
                format!("{:.3}", rec.score),
            ]);
        }
        println!("{}", table.render());
    }
}

fn store_bench(opts: &Options) {
    use semrec::store::Store;
    use semrec::web::crawler::{crawl, refresh, CommunityBuilder, CrawlConfig};
    use semrec::web::publish::{homepage_uri, publish_community};
    use semrec::web::store::DocumentWeb;

    let config = match opts.scale.as_str() {
        "small" => CommunityGenConfig::small(opts.seed),
        "medium" => CommunityGenConfig::medium(opts.seed),
        "paper" => CommunityGenConfig::paper_scale(opts.seed),
        other => usage(&format!("unknown scale `{other}`")),
    };
    println!(
        "Generating {} community (seed {}), checkpointing, then {} WAL rounds at churn {:.2}…",
        opts.scale, opts.seed, opts.rounds, opts.churn
    );
    let mut source = generate_community(&config).community;
    let agents = source.agent_count();
    let products: Vec<_> = source.catalog.iter().collect();
    let seeds: Vec<String> =
        source.agents().map(|a| source.agent(a).map(|i| i.uri.clone()).unwrap()).collect();

    let web = DocumentWeb::new();
    publish_community(&source, &web);
    let crawl_config = CrawlConfig::default();
    let mut previous = crawl(&web, &seeds, &crawl_config);
    let mut builder = CommunityBuilder::new(&previous.agents);
    let (community, _) = builder.build(source.taxonomy.clone(), source.catalog.clone());
    let mut engine = Recommender::new(community, RecommenderConfig::default());

    let store = Store::open(&opts.store).unwrap_or_else(|e| fail(&e.to_string()));
    let report = store
        .checkpoint(&engine, builder.agents(), 1)
        .unwrap_or_else(|e| fail(&e.to_string()));

    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x5704e);
    for _ in 0..opts.rounds {
        let republishers = ((agents as f64 * opts.churn) as usize).max(1);
        for _ in 0..republishers {
            let agent = semrec::AgentId::from_index(rng.random_range(0..agents));
            let product = products[rng.random_range(0..products.len())];
            let rating = -1.0 + 2.0 * rng.random::<f64>();
            source.set_rating(agent, product, rating).unwrap_or_else(|e| fail(&e.to_string()));
            let uri = source.agent(agent).map(|i| i.uri.clone()).unwrap();
            web.publish(homepage_uri(&uri), homepage_turtle(&source, agent), "text/turtle");
        }
        let result = refresh(&web, &seeds, &crawl_config, &previous);
        let delta = result.delta.clone().expect("refresh always diffs");
        let health = result.health();
        store.append_delta(&delta, &health).unwrap_or_else(|e| fail(&e.to_string()));

        builder.apply_delta(&delta);
        let (next, _) = builder.build(source.taxonomy.clone(), source.catalog.clone());
        let (advanced, _) = engine.advance(next, &delta.model_delta(), health);
        engine = advanced;
        previous = result;
    }

    // Cold rebuild: re-derive the whole model from the standing view.
    let started = std::time::Instant::now();
    let rebuilt = CommunityBuilder::new(builder.agents());
    let (cold, _) = rebuilt.build(source.taxonomy.clone(), source.catalog.clone());
    std::hint::black_box(Recommender::new(cold, RecommenderConfig::default()));
    let cold_ms = started.elapsed().as_secs_f64() * 1e3;

    // Warm recovery: snapshot + WAL replay.
    let started = std::time::Instant::now();
    let recovery = store.recover().unwrap_or_else(|e| fail(&e.to_string()));
    let recover_ms = started.elapsed().as_secs_f64() * 1e3;

    let identical = {
        let live: Vec<_> = engine
            .community()
            .agents()
            .flat_map(|a| engine.recommend(a, 5).unwrap_or_default())
            .map(|r| (r.product, r.score.to_bits()))
            .collect();
        let recovered: Vec<_> = recovery
            .engine
            .community()
            .agents()
            .flat_map(|a| recovery.engine.recommend(a, 5).unwrap_or_default())
            .map(|r| (r.product, r.score.to_bits()))
            .collect();
        live == recovered
    };

    let mut table = Table::new(["measure", "value"]);
    table.row(["agents".to_string(), agents.to_string()]);
    table.row(["snapshot bytes".to_string(), report.snapshot_bytes.to_string()]);
    table.row([
        "wal bytes".to_string(),
        store.wal_bytes().unwrap_or_else(|e| fail(&e.to_string())).to_string(),
    ]);
    table.row(["wal records replayed".to_string(), recovery.replayed.to_string()]);
    table.row(["cold rebuild (ms)".to_string(), format!("{cold_ms:.2}")]);
    table.row(["snapshot+wal recovery (ms)".to_string(), format!("{recover_ms:.2}")]);
    table.row([
        "recovered ≡ live (bit-for-bit)".to_string(),
        if identical { "yes".to_string() } else { "NO".to_string() },
    ]);
    println!("{}", table.render());
    if !identical {
        fail("recovered model diverged from the live model");
    }
}

fn rank_bench(opts: &Options) {
    use semrec::core::{BlendWeights, SpreadingActivationRanker, SpreadingParams};
    use std::sync::Arc;

    let config = match opts.scale.as_str() {
        "small" => CommunityGenConfig::small(opts.seed),
        "medium" => CommunityGenConfig::medium(opts.seed),
        "paper" => CommunityGenConfig::paper_scale(opts.seed),
        other => usage(&format!("unknown scale `{other}`")),
    };
    let blend = match &opts.blend {
        None => BlendWeights::default(),
        Some(spec) => {
            let parts: Vec<f64> =
                spec.split(',').map(|p| p.trim().parse().unwrap_or_else(|_| usage("bad blend"))).collect();
            let [similarity, activation, centrality] = parts[..] else {
                usage("--blend wants three comma-separated weights, e.g. 0.5,0.3,0.2")
            };
            BlendWeights { similarity, activation, centrality }
        }
    };
    println!(
        "Generating {} community (seed {}), ranking every agent with both rankers…",
        opts.scale, opts.seed
    );
    let community = generate_community(&config).community;
    let panel: Vec<semrec::AgentId> = community.agents().take(256).collect();

    let baseline = Recommender::new(community.clone(), RecommenderConfig::default());
    let spreading = Recommender::with_ranker(
        community,
        RecommenderConfig::default(),
        Arc::new(SpreadingActivationRanker::new(SpreadingParams {
            blend,
            ..SpreadingParams::default()
        })),
    );

    // (label, engine) × panel → latency + top-N overlap against baseline.
    let time_engine = |engine: &Recommender| -> (f64, Vec<Vec<semrec::ProductId>>) {
        let started = std::time::Instant::now();
        let tops: Vec<Vec<semrec::ProductId>> = panel
            .iter()
            .map(|&agent| {
                engine
                    .recommend(agent, opts.top)
                    .map(|r| r.into_iter().map(|x| x.product).collect())
                    .unwrap_or_default()
            })
            .collect();
        (started.elapsed().as_secs_f64() * 1e6 / panel.len() as f64, tops)
    };
    let (base_us, base_tops) = time_engine(&baseline);
    let (spread_us, spread_tops) = time_engine(&spreading);

    let mut overlap_sum = 0.0;
    let mut compared = 0usize;
    for (b, s) in base_tops.iter().zip(&spread_tops) {
        if b.is_empty() {
            continue;
        }
        let hits = s.iter().filter(|p| b.contains(p)).count();
        overlap_sum += hits as f64 / b.len() as f64;
        compared += 1;
    }
    let norm = blend.normalized();

    let mut table = Table::new(["measure", "similarity", "spreading-activation"]);
    table.row(["ranker".to_string(), baseline.ranker().name().to_string(), spreading.ranker().name().to_string()]);
    table.row([
        "blend (sim/act/cent)".to_string(),
        "1.00/0.00/0.00".to_string(),
        format!("{:.2}/{:.2}/{:.2}", norm.similarity, norm.activation, norm.centrality),
    ]);
    table.row([
        "mean latency (µs/agent)".to_string(),
        format!("{base_us:.1}"),
        format!("{spread_us:.1}"),
    ]);
    table.row([
        format!("overlap@{} vs similarity", opts.top),
        "1.000".to_string(),
        format!("{:.3}", if compared > 0 { overlap_sum / compared as f64 } else { 0.0 }),
    ]);
    table.row([
        "recommendations".to_string(),
        base_tops.iter().map(Vec::len).sum::<usize>().to_string(),
        spread_tops.iter().map(Vec::len).sum::<usize>().to_string(),
    ]);
    println!("{}", table.render());
}

fn p2p_bench(opts: &Options) {
    use semrec::p2p::{centralized_baseline, GossipConfig, P2pSimulation};
    use semrec::web::fault::FaultPlan;
    use semrec::web::publish::publish_community;
    use semrec::web::store::DocumentWeb;

    let config = match opts.scale.as_str() {
        "small" => CommunityGenConfig::small(opts.seed),
        "medium" => CommunityGenConfig::medium(opts.seed),
        "paper" => CommunityGenConfig::paper_scale(opts.seed),
        other => usage(&format!("unknown scale `{other}`")),
    };
    println!(
        "Generating {} community (seed {}); one peer node per agent, crawl range {},\n\
         then {} gossip rounds at fan-out {} (cap {} records, TTL {},\n\
         {:.0}% transient faults, {:.0}% dead peers)…",
        opts.scale,
        opts.seed,
        opts.range,
        opts.rounds,
        opts.fanout,
        opts.cap,
        opts.ttl_hops,
        opts.fault * 100.0,
        opts.dead * 100.0,
    );
    let community = generate_community(&config).community;
    let web = DocumentWeb::new();
    publish_community(&community, &web);

    let mut uris: Vec<String> =
        community.agents().map(|a| community.agent(a).unwrap().uri.clone()).collect();
    uris.sort();
    let panel: Vec<String> =
        uris.iter().step_by((uris.len() / 64).max(1)).cloned().collect();

    let gossip = GossipConfig {
        seed: opts.seed,
        fanout: opts.fanout,
        max_records: opts.cap.max(1),
        ttl: opts.ttl_hops,
        crawl_range: opts.range,
        threads: opts.workers.max(1),
        ..GossipConfig::default()
    };
    let baseline = centralized_baseline(&community, &gossip.neighborhood, &panel, opts.top);
    let plan = FaultPlan {
        transient_rate: opts.fault,
        dead_rate: opts.dead,
        seed: opts.seed,
        ..FaultPlan::none()
    };

    let mut sim = P2pSimulation::bootstrap(&web, &uris, plan, gossip);
    let mut table = Table::new([
        "round",
        &format!("overlap@{}", opts.top),
        "rank corr",
        "known/peer",
        "messages",
        "kB sent",
    ]);
    for round in 0..=opts.rounds as u32 {
        if round > 0 {
            sim.step();
        }
        let c = sim.convergence(&baseline);
        let stats = sim.stats();
        table.row([
            round.to_string(),
            format!("{:.3}", c.mean_overlap),
            format!("{:.3}", c.mean_rho),
            format!("{:.1}", c.mean_known),
            stats.messages_sent.to_string(),
            (stats.bytes_sent / 1024).to_string(),
        ]);
    }
    println!("{}", table.render());

    let stats = sim.stats();
    let dead = sim.peers().iter().filter(|p| p.is_dead()).count();
    println!(
        "{} peers ({} dead); {} exchanges failed, {} suppressed by open breakers,\n\
         {} gossip-phase breaker opens; {} records merged, {} duplicate deliveries.",
        sim.peers().len(),
        dead,
        stats.messages_failed,
        stats.messages_suppressed,
        stats.breaker_opens,
        stats.records_merged,
        stats.records_duplicate,
    );
}

fn shard_bench(opts: &Options) {
    use semrec::core::ModelDelta;
    use semrec::shard::{cut_edges, CommunityShardFn, GlobalId, HashShardFn, ShardFn, ShardedModel};
    use std::sync::Arc;

    let config = match opts.scale.as_str() {
        "small" => CommunityGenConfig::small(opts.seed),
        "medium" => CommunityGenConfig::medium(opts.seed),
        "paper" => CommunityGenConfig::paper_scale(opts.seed),
        other => usage(&format!("unknown scale `{other}`")),
    };
    let shard_fn: Arc<dyn ShardFn> = match opts.partitioner.as_str() {
        "hash" => Arc::new(HashShardFn),
        "community" => Arc::new(CommunityShardFn::default()),
        other => usage(&format!("unknown partitioner `{other}`")),
    };
    let max_shards = opts.shards.max(1);
    println!(
        "Generating {} community (seed {}); sweeping 1..={} shards ({} partitioner)…",
        opts.scale, opts.seed, max_shards, shard_fn.name()
    );
    let community = generate_community(&config).community;
    let agents = community.agent_count();

    // Powers of two up to --shards, always ending on --shards itself.
    let mut sweep = vec![1usize];
    while *sweep.last().unwrap() * 2 < max_shards {
        sweep.push(sweep.last().unwrap() * 2);
    }
    if max_shards > 1 {
        sweep.push(max_shards);
    }

    let panel: Vec<GlobalId> = {
        let queries = opts.requests.min(agents).max(1);
        (0..queries).map(|i| GlobalId((i * (agents / queries)) as u32)).collect()
    };
    let churned = ((agents as f64 * opts.churn) as usize).clamp(1, agents);

    let mut table = Table::new([
        "shards", "cut %", "build cp ms", "build eff", "refresh cp ms", "refresh eff",
        "recomp", "reused", "serve µs/q", "xch rounds/q",
    ]);
    let mut base_build = 0.0f64;
    let mut base_refresh = 0.0f64;
    for &n in &sweep {
        let assignment = shard_fn.partition(&community, n);
        let (cut, total) = cut_edges(&community, &assignment);
        let (model, build) =
            ShardedModel::partition(&community, RecommenderConfig::default(), shard_fn.clone(), n, opts.workers);
        let build_cp = build.critical_path().as_secs_f64();
        if n == 1 {
            base_build = build_cp;
        }

        // Strided churn across the whole universe, then a sharded advance.
        let mut next = community.clone();
        let mut uris = Vec::with_capacity(churned);
        let products: Vec<semrec::ProductId> = next.catalog.iter().collect();
        for k in 0..churned {
            let agent = semrec::AgentId::from_index(k * (agents / churned));
            next.set_rating(agent, products[k % products.len()], 0.5)
                .unwrap_or_else(|e| fail(&e.to_string()));
            uris.push(next.agent(agent).map(|i| i.uri.clone()).unwrap());
        }
        let (_, refresh) = model.advance(
            &next,
            &ModelDelta { ratings_changed: uris, trust_changed: Vec::new() },
        );
        let refresh_cp = refresh.critical_path().as_secs_f64();
        if n == 1 {
            base_refresh = refresh_cp;
        }

        let counter = |name: &str| -> u64 {
            semrec::obs::global().snapshot().counters.get(name).copied().unwrap_or(0)
        };
        let rounds_before = counter("shard.exchange.rounds");
        let started = std::time::Instant::now();
        let batch = model.recommend_batch(&panel, opts.top);
        let serve_us = started.elapsed().as_secs_f64() * 1e6 / panel.len() as f64;
        for result in &batch {
            result.as_ref().unwrap_or_else(|e| fail(&e.to_string()));
        }
        let rounds = counter("shard.exchange.rounds") - rounds_before;

        table.row([
            n.to_string(),
            format!("{:.1}", 100.0 * cut as f64 / total.max(1) as f64),
            format!("{:.1}", build_cp * 1e3),
            format!("{:.3}", base_build / (n as f64 * build_cp).max(f64::MIN_POSITIVE)),
            format!("{:.1}", refresh_cp * 1e3),
            format!("{:.3}", base_refresh / (n as f64 * refresh_cp).max(f64::MIN_POSITIVE)),
            refresh.profiles_recomputed.to_string(),
            refresh.profiles_reused.to_string(),
            format!("{serve_us:.1}"),
            format!("{:.2}", rounds as f64 / panel.len() as f64),
        ]);
    }
    println!("{}", table.render());
    println!(
        "{} agents; efficiency is the modeled critical path T(1)/(N·max_i T_i) —\n\
         the wall-clock a one-node-per-shard deployment would see.",
        agents
    );
}
