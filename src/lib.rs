//! # semrec — Semantic Web Recommender Systems
//!
//! A complete Rust implementation of the decentralized recommender framework
//! of Ziegler, *"Semantic Web Recommender Systems"* (EDBT 2004 PhD
//! workshop): trust-network neighborhood formation (Appleseed) combined
//! with taxonomy-driven interest profiles over an RDF document web.
//!
//! This facade crate re-exports every subsystem:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`rdf`] | `semrec-rdf` | RDF model, Turtle/N-Triples, FOAF + trust vocabularies |
//! | [`taxonomy`] | `semrec-taxonomy` | taxonomy `C`, products `B`, descriptors `f` |
//! | [`trust`] | `semrec-trust` | trust graph `T`, Appleseed, Advogato, baselines |
//! | [`profiles`] | `semrec-profiles` | Eq. 3 profile generation, Pearson/cosine |
//! | [`core`] | `semrec-core` | the unified recommendation pipeline |
//! | [`web`] | `semrec-web` | simulated document web, homepages, crawler |
//! | [`datagen`] | `semrec-datagen` | §4.1-scale synthetic communities |
//! | [`eval`] | `semrec-eval` | splits, metrics, baselines, tables |
//! | [`obs`] | `semrec-obs` | metrics registry, stage spans, event observers |
//! | [`serve`] | `semrec-serve` | concurrent serving: snapshot swap, admission control, batching |
//! | [`store`] | `semrec-store` | durable checkpoints, delta WAL, crash-recoverable warm starts |
//! | [`shard`] | `semrec-shard` | partitioned universe, cross-shard Appleseed, per-shard persistence |
//! | [`p2p`] | `semrec-p2p` | peer-to-peer deployment: per-peer crawls, gossip neighborhood formation |
//!
//! See `examples/quickstart.rs` for the five-minute tour, and DESIGN.md /
//! EXPERIMENTS.md for the paper-reproduction map.

#![forbid(unsafe_code)]

pub use semrec_core as core;
pub use semrec_datagen as datagen;
pub use semrec_eval as eval;
pub use semrec_obs as obs;
pub use semrec_p2p as p2p;
pub use semrec_profiles as profiles;
pub use semrec_rdf as rdf;
pub use semrec_serve as serve;
pub use semrec_shard as shard;
pub use semrec_store as store;
pub use semrec_taxonomy as taxonomy;
pub use semrec_trust as trust;
pub use semrec_web as web;

pub use semrec_core::{
    AgentId, Community, ProductId, Recommendation, Recommender, RecommenderConfig, TopicId,
};
